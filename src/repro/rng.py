"""Deterministic random number helpers.

Every stochastic component (workload generator, size distributions,
metadata traffic) takes an explicit seed so experiments are exactly
reproducible and benches are stable run to run.  Components never share
a generator: each derives an independent stream from a root seed with
:func:`substream`, so adding randomness to one component does not perturb
another component's draws.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["make_rng", "substream"]


def make_rng(seed: int | None) -> random.Random:
    """Create a private :class:`random.Random` from an integer seed.

    ``None`` yields a nondeterministic generator (accepted for interactive
    play, never used by the benches).
    """
    return random.Random(seed)


def substream(seed: int, label: str) -> random.Random:
    """Derive an independent named generator from a root seed.

    The label is hashed together with the seed, so ``substream(7, "sizes")``
    and ``substream(7, "ops")`` are decorrelated but both fully determined
    by the root seed.

    >>> substream(7, "sizes").random() == substream(7, "sizes").random()
    True
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
