"""Byte-size units, parsing, and formatting.

The paper quotes sizes in KB/MB/GB with binary semantics (256 KB objects,
64 KB write requests, 8 KB pages, 40/400 GB volumes).  Everything in this
library is an integer number of bytes; these constants and helpers keep
call sites readable.
"""

from __future__ import annotations

import re

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB
TB: int = 1024 * GB

#: SQL Server style page and extent sizes (8 KB pages, 8 pages per extent).
PAGE_SIZE: int = 8 * KB
PAGES_PER_EXTENT: int = 8
EXTENT_SIZE: int = PAGE_SIZE * PAGES_PER_EXTENT  # 64 KB

#: NTFS default cluster size used throughout the experiments.
CLUSTER_SIZE: int = 4 * KB

#: The paper's application write request size (Section 5.3).
DEFAULT_WRITE_REQUEST: int = 64 * KB

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>[KMGT]?i?B?)\s*$", re.IGNORECASE
)

_UNIT_FACTORS = {
    "": 1,
    "B": 1,
    "K": KB,
    "KB": KB,
    "KIB": KB,
    "M": MB,
    "MB": MB,
    "MIB": MB,
    "G": GB,
    "GB": GB,
    "GIB": GB,
    "T": TB,
    "TB": TB,
    "TIB": TB,
}


def parse_size(text: str | int) -> int:
    """Parse a human-readable size such as ``"256K"`` or ``"10MB"`` to bytes.

    Integers pass through unchanged, so call sites can accept either form.

    >>> parse_size("256K")
    262144
    >>> parse_size("1.5MB")
    1572864
    >>> parse_size(4096)
    4096
    """
    if isinstance(text, int):
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable size: {text!r}")
    unit = match.group("unit").upper()
    if unit not in _UNIT_FACTORS:
        raise ValueError(f"unknown size unit in {text!r}")
    value = float(match.group("num")) * _UNIT_FACTORS[unit]
    result = int(round(value))
    if result < 0:
        raise ValueError(f"negative size: {text!r}")
    return result


def fmt_size(nbytes: int | float) -> str:
    """Format a byte count the way the paper labels its axes.

    Sizes that are exact multiples of a unit render without a decimal
    point (``256K``, ``10M``); others keep one decimal (``1.5M``).

    >>> fmt_size(262144)
    '256K'
    >>> fmt_size(10 * MB)
    '10M'
    """
    nbytes = float(nbytes)
    sign = "-" if nbytes < 0 else ""
    nbytes = abs(nbytes)
    for factor, suffix in ((TB, "T"), (GB, "G"), (MB, "M"), (KB, "K")):
        if nbytes >= factor:
            value = nbytes / factor
            if abs(value - round(value)) < 1e-9:
                return f"{sign}{int(round(value))}{suffix}"
            return f"{sign}{value:.1f}{suffix}"
    if abs(nbytes - round(nbytes)) < 1e-9:
        return f"{sign}{int(round(nbytes))}B"
    return f"{sign}{nbytes:.1f}B"


def fmt_rate(bytes_per_second: float) -> str:
    """Format a throughput in MB/s with two significant decimals.

    >>> fmt_rate(17_700_000 * 1.048576 / 1.048576)  # doctest: +SKIP
    """
    return f"{bytes_per_second / MB:.2f} MB/s"


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division for sizing extents/pages.

    >>> ceil_div(10, 4)
    3
    """
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    return -(-numerator // denominator)


def round_up(value: int, multiple: int) -> int:
    """Round ``value`` up to the next multiple of ``multiple``.

    >>> round_up(100, 64)
    128
    """
    return ceil_div(value, multiple) * multiple
