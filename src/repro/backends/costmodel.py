"""Host-side CPU costs of the two access paths.

The disk model covers seeks and media transfer; what remains of the
paper's folklore (Section 3.1) is CPU:

* *"Database queries are faster than file opens"* — a parameterized
  query against a cached metadata page costs well under a millisecond;
  the Win32 CreateFile path (name parsing, security descriptor checks,
  handle creation) costs on the order of a millisecond of CPU, plus the
  MFT record read the filesystem layer charges.
* *"Database client interfaces are not designed for large objects"* —
  BLOB bytes cross the server's page assembly and the client protocol
  stack, adding a per-page and a per-byte cost that files streamed
  straight from the cache manager do not pay.

Defaults are order-of-magnitude figures for the paper's 1.8 GHz Opteron
era, chosen so the *clean-system* curves reproduce Figure 1's shape
(database ahead below ~1 MB, filesystem ahead at 10 MB).  EXPERIMENTS.md
records the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.disk.iostats import IoStats
from repro.units import MB, PAGE_SIZE


@dataclass(frozen=True)
class CostModel:
    """CPU-time parameters, all in seconds."""

    #: Parse/plan/execute a parameterized single-row metadata query.
    db_query_cpu_s: float = 0.0003
    #: Open a file handle (CreateFile path), excluding the MFT read.
    file_open_cpu_s: float = 0.0012
    #: Close a file handle.
    file_close_cpu_s: float = 0.0003
    #: Per-page BLOB processing (latching, assembly, TDS framing).
    db_per_page_cpu_s: float = 0.00002
    #: Per-byte BLOB client-interface cost (memory copies, marshalling).
    db_per_byte_cpu_s: float = 4.3e-9
    #: Per-byte cost of the file read/write path (cache manager copy).
    file_per_byte_cpu_s: float = 0.6e-9

    # ------------------------------------------------------------------
    # Charging helpers: accumulate into the device's IoStats so CPU time
    # lands in the same measurement windows as the I/O it accompanies.
    # ------------------------------------------------------------------
    def charge_db_query(self, stats: IoStats) -> None:
        stats.record_cpu(self.db_query_cpu_s)

    def charge_db_stream(self, stats: IoStats, nbytes: int) -> None:
        """BLOB bytes moving through server + client interface."""
        pages = -(-nbytes // PAGE_SIZE)
        stats.record_cpu(pages * self.db_per_page_cpu_s
                         + nbytes * self.db_per_byte_cpu_s)

    def charge_file_open(self, stats: IoStats) -> None:
        stats.record_cpu(self.file_open_cpu_s)

    def charge_file_close(self, stats: IoStats) -> None:
        stats.record_cpu(self.file_close_cpu_s)

    def charge_file_stream(self, stats: IoStats, nbytes: int) -> None:
        stats.record_cpu(nbytes * self.file_per_byte_cpu_s)

    def describe(self) -> str:
        """One line per parameter, for bench headers."""
        lines = [
            f"  db query          {self.db_query_cpu_s * 1e3:.2f} ms",
            f"  file open/close   {self.file_open_cpu_s * 1e3:.2f}"
            f"/{self.file_close_cpu_s * 1e3:.2f} ms",
            f"  db stream         {self.db_per_page_cpu_s * 1e6:.0f} us/page"
            f" + {self.db_per_byte_cpu_s * MB * 1e3:.2f} ms/MB",
            f"  file stream       {self.file_per_byte_cpu_s * MB * 1e3:.2f}"
            " ms/MB",
        ]
        return "\n".join(lines)
