"""The paper's database configuration: everything in SQL Server.

Section 4.2: BLOBs and metadata share a filegroup, BLOB data out of row,
bulk-logged mode, analogous schema to the filesystem configuration.  One
data device (the page file) plus one dedicated log device.
"""

from __future__ import annotations

from repro.alloc.extent import Extent
from repro.backends.base import ObjectMeta, StoreStats
from repro.backends.costmodel import CostModel
from repro.backends.registry import object_option, register_backend
from repro.backends.spec import StoreSpec
from repro.db.database import DbConfig, SimDatabase
from repro.disk.device import BlockDevice, IoRequest
from repro.errors import ObjectNotFoundError


class BlobBackend:
    """Out-of-row BLOBs + metadata rows in one simulated database."""

    def __init__(self, device: BlockDevice, *,
                 db_config: DbConfig | None = None,
                 log_device: BlockDevice | None = None,
                 cost_model: CostModel | None = None) -> None:
        self.name = "database"
        self.device = device
        self.db = SimDatabase(device, log_device, db_config)
        self.cost = cost_model or CostModel()
        self.meta_table = self.db.create_table("objects")
        self._versions: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _meta_lookup(self, key: str) -> dict:
        self.cost.charge_db_query(self.device.stats)
        try:
            return self.meta_table.get(key)
        except KeyError:
            raise ObjectNotFoundError(f"no object {key!r}") from None

    # ------------------------------------------------------------------
    # ObjectStore interface
    # ------------------------------------------------------------------
    def put(self, key: str, *, size: int | None = None,
            data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        self.cost.charge_db_query(self.device.stats)
        self.cost.charge_db_stream(self.device.stats, total)
        blob_id = self.db.put_blob(size=size, data=data, commit=False)
        self.meta_table.insert(key, {"blob_id": blob_id, "size": total})
        self.db.commit()
        self._versions[key] = 1

    def get(self, key: str, offset: int = 0,
            length: int | None = None) -> bytes | None:
        row = self._meta_lookup(key)
        nbytes = length if length is not None else row["size"] - offset
        result = self.db.get_blob(row["blob_id"], offset, length)
        self.cost.charge_db_stream(self.device.stats, nbytes)
        return result

    def overwrite(self, key: str, *, size: int | None = None,
                  data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        row = self._meta_lookup(key)
        self.cost.charge_db_stream(self.device.stats, total)
        new_id = self.db.replace_blob(row["blob_id"], size=size, data=data,
                                      commit=False)
        self.meta_table.update(key, {"blob_id": new_id, "size": total})
        self.db.commit()
        self._versions[key] = self._versions.get(key, 0) + 1

    def delete(self, key: str) -> None:
        row = self._meta_lookup(key)
        self.db.delete_blob(row["blob_id"], commit=False)
        self.meta_table.delete(key)
        self.db.commit()
        self._versions.pop(key, None)

    def exists(self, key: str) -> bool:
        return self.meta_table.contains(key)

    def meta(self, key: str) -> ObjectMeta:
        row = self._meta_lookup(key)
        return ObjectMeta(key=key, size=row["size"],
                          version=self._versions.get(key, 1))

    def keys(self) -> list[str]:
        return self.meta_table.keys()

    def read_many(self, keys: list[str]) -> list[bytes | None]:
        requests: list[IoRequest] = []
        sizes: list[int] = []
        for key in keys:
            row = self._meta_lookup(key)
            self.cost.charge_db_stream(self.device.stats, row["size"])
            requests.append(
                IoRequest(False, self.db.blobs.blob_extents(row["blob_id"]))
            )
            sizes.append(row["size"])
        results = self.device.submit_policy(requests)
        return [r if r is None else r[:size]
                for r, size in zip(results, sizes)]

    def object_extents(self, key: str) -> list[Extent]:
        row = self.meta_table.get(key)
        return self.db.blobs.blob_extents(row["blob_id"])

    def devices(self) -> list[BlockDevice]:
        return [self.device, self.db.log_device]

    def free_bytes(self) -> int:
        return self.db.free_bytes

    def store_stats(self) -> StoreStats:
        live = sum(self.meta_table.get(k)["size"] for k in self.keys())
        return StoreStats(
            objects=len(self.meta_table),
            live_bytes=live,
            free_bytes=self.db.free_bytes,
            capacity=self.db.capacity,
        )


@register_backend(
    "database",
    description="SQL-Server-like: out-of-row BLOBs, bulk logged",
    options={"db_config": object_option(DbConfig)},
)
def _database_from_spec(spec: StoreSpec,
                        device: BlockDevice) -> BlobBackend:
    db_config = spec.option("db_config") or DbConfig(
        write_request=spec.write_request
    )
    return BlobBackend(device, db_config=db_config)
