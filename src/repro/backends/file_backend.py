"""The paper's filesystem configuration: database metadata + NTFS files.

Section 4.1: object names and metadata live in SQL Server tables; each
object is one file in a single directory on an otherwise empty NTFS
volume; updates are safe writes (temp file, force, atomic replace).  The
database "isolates the client from the physical location of data".

Devices: the object volume is its own device; the metadata database gets
a small dedicated device pair (data + log), mirroring the testbed where
SQL had dedicated drives.  Elapsed time for throughput sums across all
of them — the workload is synchronous.
"""

from __future__ import annotations

from dataclasses import replace

from repro.alloc.extent import Extent
from repro.alloc.freelist import INDEX_KINDS
from repro.backends.base import ObjectMeta, StoreStats
from repro.backends.costmodel import CostModel
from repro.backends.registry import (
    bool_option,
    choice_option,
    object_option,
    register_backend,
)
from repro.backends.spec import StoreSpec
from repro.db.database import DbConfig, SimDatabase
from repro.disk.device import BlockDevice, IoRequest
from repro.disk.geometry import scaled_disk
from repro.errors import ObjectNotFoundError
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.units import DEFAULT_WRITE_REQUEST, MB


class FileBackend:
    """One file per object + metadata rows in a database."""

    def __init__(self, device: BlockDevice, *,
                 fs_config: FsConfig | None = None,
                 metadata_db: SimDatabase | None = None,
                 cost_model: CostModel | None = None,
                 write_request: int = DEFAULT_WRITE_REQUEST,
                 size_hints: bool = False) -> None:
        self.name = "filesystem"
        self.fs = SimFilesystem(device, fs_config)
        self.device = device
        self.cost = cost_model or CostModel()
        self.write_request = write_request
        #: Use the paper's proposed create-with-size interface.
        self.size_hints = size_hints
        if metadata_db is None:
            meta_device = BlockDevice(scaled_disk(256 * MB))
            metadata_db = SimDatabase(meta_device, config=DbConfig())
        self.meta_db = metadata_db
        self.meta_table = self.meta_db.create_table("objects")
        self._versions: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Metadata helpers (one query per operation, like the test app)
    # ------------------------------------------------------------------
    def _file_name(self, key: str) -> str:
        return f"obj-{key}"

    def _meta_lookup(self, key: str) -> dict:
        self.cost.charge_db_query(self.device.stats)
        try:
            return self.meta_table.get(key)
        except KeyError:
            raise ObjectNotFoundError(f"no object {key!r}") from None

    # ------------------------------------------------------------------
    # ObjectStore interface
    # ------------------------------------------------------------------
    def put(self, key: str, *, size: int | None = None,
            data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        fname = self._file_name(key)
        self.cost.charge_file_open(self.device.stats)
        self.fs.create(fname)
        if self.size_hints:
            self.fs.preallocate(fname, total)
        cursor = 0
        while cursor < total:
            chunk = min(self.write_request, total - cursor)
            if data is not None:
                self.fs.append(fname, data=data[cursor: cursor + chunk])
            else:
                self.fs.append(fname, nbytes=chunk)
            cursor += chunk
        self.cost.charge_file_stream(self.device.stats, total)
        self.fs.fsync(fname)
        self.cost.charge_file_close(self.device.stats)
        self.cost.charge_db_query(self.device.stats)
        self.meta_table.insert(key, {"path": fname, "size": total})
        self.meta_db.commit()
        self._versions[key] = 1

    def get(self, key: str, offset: int = 0,
            length: int | None = None) -> bytes | None:
        row = self._meta_lookup(key)
        fname = row["path"]
        self.cost.charge_file_open(self.device.stats)
        self.fs.read_record(fname)
        result = self.fs.read(fname, offset, length)
        nbytes = length if length is not None else row["size"] - offset
        self.cost.charge_file_stream(self.device.stats, nbytes)
        self.cost.charge_file_close(self.device.stats)
        return result

    def overwrite(self, key: str, *, size: int | None = None,
                  data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        row = self._meta_lookup(key)
        fname = row["path"]
        self.cost.charge_file_open(self.device.stats)
        self.fs.safe_write(
            fname,
            size=size,
            data=data,
            write_request=self.write_request,
            size_hint=self.size_hints,
        )
        self.cost.charge_file_stream(self.device.stats, total)
        self.cost.charge_file_close(self.device.stats)
        self.cost.charge_db_query(self.device.stats)
        self.meta_table.update(key, {"size": total})
        self.meta_db.commit()
        self._versions[key] = self._versions.get(key, 0) + 1

    def delete(self, key: str) -> None:
        row = self._meta_lookup(key)
        self.fs.delete(row["path"])
        self.cost.charge_db_query(self.device.stats)
        self.meta_table.delete(key)
        self.meta_db.commit()
        self._versions.pop(key, None)

    def exists(self, key: str) -> bool:
        return self.meta_table.contains(key)

    def meta(self, key: str) -> ObjectMeta:
        row = self._meta_lookup(key)
        return ObjectMeta(key=key, size=row["size"],
                          version=self._versions.get(key, 1))

    def keys(self) -> list[str]:
        return self.meta_table.keys()

    def read_many(self, keys: list[str]) -> list[bytes | None]:
        requests: list[IoRequest] = []
        sizes: list[int] = []
        for key in keys:
            row = self._meta_lookup(key)
            fname = row["path"]
            self.cost.charge_file_open(self.device.stats)
            self.fs.read_record(fname)
            requests.append(IoRequest(False, self.fs.extent_map(fname)))
            self.cost.charge_file_stream(self.device.stats, row["size"])
            self.cost.charge_file_close(self.device.stats)
            sizes.append(row["size"])
        results = self.device.submit_policy(requests)
        return [r if r is None else r[:size]
                for r, size in zip(results, sizes)]

    def object_extents(self, key: str) -> list[Extent]:
        row = self.meta_table.get(key)
        return self.fs.extent_map(row["path"])

    def devices(self) -> list[BlockDevice]:
        return [self.device, self.meta_db.data_device,
                self.meta_db.log_device]

    def free_bytes(self) -> int:
        return self.fs.free_bytes

    def store_stats(self) -> StoreStats:
        live = sum(self.meta_table.get(k)["size"] for k in self.keys())
        return StoreStats(
            objects=len(self.meta_table),
            live_bytes=live,
            free_bytes=self.fs.free_bytes,
            capacity=self.fs.data_capacity,
        )


@register_backend(
    "filesystem",
    description="NTFS-like: file per object + metadata database",
    options={
        "index_kind": choice_option(*INDEX_KINDS),
        "size_hints": bool_option,
        "fs_config": object_option(FsConfig),
    },
)
def _filesystem_from_spec(spec: StoreSpec,
                          device: BlockDevice) -> FileBackend:
    fs_config = spec.option("fs_config")
    index_kind = spec.option("index_kind")
    if index_kind is not None:
        fs_config = replace(fs_config or FsConfig(),
                            index_kind=index_kind)
    return FileBackend(
        device,
        fs_config=fs_config,
        write_request=spec.write_request,
        size_hints=bool(spec.option("size_hints", False)),
    )
