"""GFS-style chunked object store.

Section 3.4 of the paper: GFS sidesteps external fragmentation by using
fixed 64 MB chunks and a record-append discipline — records may not span
chunks, a record that does not fit pads the current chunk with zeros and
opens a new one, and records are kept under ¼ of the chunk size so the
padding stays bounded.  The price is *internal* fragmentation (padding
plus dead records), which GFS reclaims only by whole-chunk garbage
collection.

This backend lets the extension bench (A5) measure that trade against
the paper's two systems: external fragmentation stays at exactly one
fragment per object forever, while capacity efficiency degrades until
the compactor runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.extent import Extent
from repro.backends.base import ObjectMeta, StoreStats
from repro.backends.costmodel import CostModel
from repro.backends.registry import (
    float_option,
    register_backend,
    size_option,
)
from repro.backends.spec import StoreSpec
from repro.disk.device import BlockDevice, IoRequest
from repro.errors import ConfigError, ObjectNotFoundError, StorageFullError
from repro.units import DEFAULT_WRITE_REQUEST, MB


@dataclass
class _Record:
    key: str
    chunk_id: int
    offset_in_chunk: int
    size: int
    version: int


@dataclass
class _Chunk:
    chunk_id: int
    base: int            # device byte offset
    used: int = 0        # bytes appended (live + dead + padding)
    dead: int = 0        # bytes belonging to deleted/replaced records


class GfsChunkBackend:
    """Fixed-chunk record-append store with whole-chunk GC."""

    def __init__(self, device: BlockDevice, *,
                 chunk_size: int = 64 * MB,
                 cost_model: CostModel | None = None,
                 write_request: int = DEFAULT_WRITE_REQUEST,
                 gc_dead_fraction: float = 0.5) -> None:
        if chunk_size <= 0:
            raise ConfigError("chunk_size must be positive")
        if not 0.0 < gc_dead_fraction <= 1.0:
            raise ConfigError("gc_dead_fraction must be in (0, 1]")
        self.name = "gfs-chunks"
        self.device = device
        self.chunk_size = chunk_size
        self.cost = cost_model or CostModel()
        self.write_request = write_request
        self.gc_dead_fraction = gc_dead_fraction
        self.max_record = chunk_size // 4  # the GFS constraint
        nchunks = device.geometry.capacity // chunk_size
        if nchunks < 1:
            raise ConfigError("volume smaller than one chunk")
        self._free_chunks: list[int] = list(range(nchunks))
        self._chunks: dict[int, _Chunk] = {}
        self._active: _Chunk | None = None
        self._records: dict[str, _Record] = {}
        self.padding_bytes = 0
        self.gc_runs = 0
        self.gc_copied_bytes = 0
        self._collecting = False

    # ------------------------------------------------------------------
    # Chunk management
    # ------------------------------------------------------------------
    def _open_chunk(self) -> _Chunk:
        if not self._free_chunks:
            self._collect_garbage(force=True)
        if not self._free_chunks:
            raise StorageFullError("no free chunks")
        chunk_id = self._free_chunks.pop(0)
        chunk = _Chunk(chunk_id=chunk_id, base=chunk_id * self.chunk_size)
        self._chunks[chunk_id] = chunk
        return chunk

    def _append_record(self, key: str, size: int,
                       data: bytes | None, version: int) -> _Record:
        if size > self.max_record:
            raise ConfigError(
                f"record of {size} bytes exceeds ¼ chunk "
                f"({self.max_record}); split it at the application layer"
            )
        if self._active is None:
            self._active = self._open_chunk()
        chunk = self._active
        if chunk.used + size > self.chunk_size:
            # Zero-pad the remainder and roll to a new chunk.
            pad = self.chunk_size - chunk.used
            if pad:
                self.device.write(chunk.base + chunk.used, pad)
                chunk.used = self.chunk_size
                chunk.dead += pad
                self.padding_bytes += pad
            self._active = self._open_chunk()
            chunk = self._active
        record = _Record(key=key, chunk_id=chunk.chunk_id,
                         offset_in_chunk=chunk.used, size=size,
                         version=version)
        # Bulk path: one scatter/gather submission per record instead of
        # one stats record per write_request chunk; the device policy
        # caps the batch size and picks the order.
        batch: list[IoRequest] = []
        cursor = 0
        while cursor < size:
            step = min(self.write_request, size - cursor)
            payload = data[cursor: cursor + step] if data is not None else None
            batch.append(
                IoRequest(True,
                          [Extent(chunk.base + chunk.used + cursor, step)],
                          payload)
            )
            cursor += step
        self.device.submit_policy(batch)
        chunk.used += size
        return record

    def _kill_record(self, record: _Record) -> None:
        chunk = self._chunks[record.chunk_id]
        chunk.dead += record.size
        self._maybe_gc(chunk)

    def _maybe_gc(self, chunk: _Chunk) -> None:
        if self._collecting or chunk is self._active:
            return
        if chunk.used < self.chunk_size:
            return  # only sealed chunks are collected
        if chunk.dead / self.chunk_size >= self.gc_dead_fraction:
            self._collecting = True
            try:
                self._gc_chunk(chunk)
            finally:
                self._collecting = False

    def _collect_garbage(self, *, force: bool = False) -> None:
        if self._collecting:
            return  # GC's own copies must not re-enter GC
        self._collecting = True
        try:
            sealed = [
                c for c in list(self._chunks.values())
                if c is not self._active and c.dead > 0
            ]
            sealed.sort(key=lambda c: c.dead, reverse=True)
            for chunk in sealed:
                live = self.chunk_size - chunk.dead
                movable = bool(self._free_chunks) or live == 0 or (
                    self._active is not None
                    and self.chunk_size - self._active.used >= live
                )
                if not movable:
                    continue
                if force or                         chunk.dead / self.chunk_size >= self.gc_dead_fraction:
                    self._gc_chunk(chunk)
                    if force and self._free_chunks:
                        return
        finally:
            self._collecting = False

    def _gc_chunk(self, chunk: _Chunk) -> None:
        """Copy live records out, then free the chunk."""
        live = [r for r in self._records.values()
                if r.chunk_id == chunk.chunk_id]
        self.gc_runs += 1
        for record in sorted(live, key=lambda r: r.offset_in_chunk):
            payload = None
            if self.device.stores_data:
                payload = self.device.peek(
                    chunk.base + record.offset_in_chunk, record.size
                )
            self.device.read(chunk.base + record.offset_in_chunk, record.size)
            moved = self._append_record(record.key, record.size, payload,
                                        record.version)
            self._records[record.key] = moved
            self.gc_copied_bytes += record.size
        del self._chunks[chunk.chunk_id]
        self._free_chunks.append(chunk.chunk_id)
        self._free_chunks.sort()

    # ------------------------------------------------------------------
    # ObjectStore interface
    # ------------------------------------------------------------------
    def put(self, key: str, *, size: int | None = None,
            data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        if key in self._records:
            raise ConfigError(f"object {key!r} exists")
        self.cost.charge_db_query(self.device.stats)  # master metadata op
        self._records[key] = self._append_record(key, total, data, version=1)
        self.device.flush()

    def get(self, key: str, offset: int = 0,
            length: int | None = None) -> bytes | None:
        record = self._lookup(key)
        if length is None:
            length = record.size - offset
        if offset < 0 or offset + length > record.size:
            raise ConfigError("range outside object")
        self.cost.charge_db_query(self.device.stats)
        chunk = self._chunks[record.chunk_id]
        return self.device.read(
            chunk.base + record.offset_in_chunk + offset, length
        )

    def overwrite(self, key: str, *, size: int | None = None,
                  data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        old = self._lookup(key)
        self.cost.charge_db_query(self.device.stats)
        new = self._append_record(key, total, data, version=old.version + 1)
        self._records[key] = new
        self.device.flush()
        self._kill_record(old)

    def delete(self, key: str) -> None:
        record = self._lookup(key)
        self.cost.charge_db_query(self.device.stats)
        del self._records[key]
        self._kill_record(record)

    def exists(self, key: str) -> bool:
        return key in self._records

    def meta(self, key: str) -> ObjectMeta:
        record = self._lookup(key)
        return ObjectMeta(key=key, size=record.size, version=record.version)

    def keys(self) -> list[str]:
        return list(self._records)

    def read_many(self, keys: list[str]) -> list[bytes | None]:
        requests: list[IoRequest] = []
        for key in keys:
            record = self._lookup(key)
            self.cost.charge_db_query(self.device.stats)
            chunk = self._chunks[record.chunk_id]
            requests.append(IoRequest(False, [
                Extent(chunk.base + record.offset_in_chunk, record.size)
            ]))
        return self.device.submit_policy(requests)

    def object_extents(self, key: str) -> list[Extent]:
        record = self._lookup(key)
        chunk = self._chunks[record.chunk_id]
        return [Extent(chunk.base + record.offset_in_chunk, record.size)]

    def devices(self) -> list[BlockDevice]:
        return [self.device]

    def free_bytes(self) -> int:
        used_chunks = len(self._chunks) * self.chunk_size
        free = self.device.geometry.capacity - used_chunks
        if self._active is not None:
            free += self.chunk_size - self._active.used
        return free

    def store_stats(self) -> StoreStats:
        live = sum(self._records[k].size for k in sorted(self._records))
        used_chunks = len(self._chunks) * self.chunk_size
        return StoreStats(
            objects=len(self._records),
            live_bytes=live,
            free_bytes=self.device.geometry.capacity - used_chunks,
            capacity=self.device.geometry.capacity,
        )

    def internal_fragmentation(self) -> float:
        """Dead + padding bytes as a fraction of chunk-held capacity."""
        used = len(self._chunks) * self.chunk_size
        if used == 0:
            return 0.0
        # Chunk-id order: accounting reductions state their order.
        dead = sum(self._chunks[cid].dead for cid in sorted(self._chunks))
        slack = sum(
            self.chunk_size - self._chunks[cid].used
            for cid in sorted(self._chunks)
            if self._chunks[cid] is not self._active
        )
        return (dead + slack) / used

    def _lookup(self, key: str) -> _Record:
        try:
            return self._records[key]
        except KeyError:
            raise ObjectNotFoundError(f"no object {key!r}") from None


@register_backend(
    "gfs",
    description="GFS-style fixed chunks with record append",
    options={
        "chunk_size": size_option,
        "gc_dead_fraction": float_option,
    },
)
def _gfs_from_spec(spec: StoreSpec, device: BlockDevice) -> GfsChunkBackend:
    return GfsChunkBackend(
        device,
        chunk_size=spec.option("chunk_size", 64 * MB),
        write_request=spec.write_request,
        gc_dead_fraction=spec.option("gc_dead_fraction", 0.5),
    )
