"""Object store backends: the two systems the paper compares, plus
extension backends from its related-work section and a multi-volume
composite.

* :class:`FileBackend` — metadata rows in a database, one file per
  object on the simulated filesystem, safe-write updates (the paper's
  NTFS configuration, Section 4.1).
* :class:`BlobBackend` — metadata and out-of-row BLOBs in the simulated
  database (the SQL Server configuration, Section 4.2).
* :class:`GfsChunkBackend` — GFS-style fixed 64 MB chunks with record
  append and padding (Section 3.4's related work, built to measure the
  internal-fragmentation trade).
* :class:`LfsBackend` — log-structured layout with a segment cleaner
  (Section 3.4), the write-optimized extreme.
* :class:`ShardedStore` — composite striping keys over N inner stores
  (multi-volume scaling; see ``sharded.py``).

All satisfy the :class:`ObjectStore` protocol, so the workload driver,
fragmentation analyzer, and benches treat them interchangeably.

Construction goes through the registry: describe a store as a
:class:`StoreSpec` (backend name, volume, typed options, a
:class:`~repro.disk.policy.DevicePolicy`, optional shard layout) and
:func:`build_store` instantiates it — no backend imports needed above
this package.  Each backend registers itself with
:func:`register_backend`; ``registered`` names derive from that, not
from a hand-maintained tuple.
"""

from repro.backends.base import ObjectStore, ObjectMeta, StoreStats
from repro.backends.costmodel import CostModel
from repro.backends.registry import (
    backend_descriptions,
    backend_names,
    build_store,
    register_backend,
    resolve_spec,
)
from repro.backends.spec import PLACEMENTS, StoreSpec
from repro.backends.file_backend import FileBackend
from repro.backends.blob_backend import BlobBackend
from repro.backends.gfs_backend import GfsChunkBackend
from repro.backends.lfs_backend import LfsBackend
from repro.backends.sharded import ShardedStore

__all__ = [
    "ObjectStore",
    "ObjectMeta",
    "StoreStats",
    "CostModel",
    "StoreSpec",
    "PLACEMENTS",
    "backend_descriptions",
    "backend_names",
    "build_store",
    "register_backend",
    "resolve_spec",
    "FileBackend",
    "BlobBackend",
    "GfsChunkBackend",
    "LfsBackend",
    "ShardedStore",
]
