"""Object store backends: the two systems the paper compares, plus
extension backends from its related-work section.

* :class:`FileBackend` — metadata rows in a database, one file per
  object on the simulated filesystem, safe-write updates (the paper's
  NTFS configuration, Section 4.1).
* :class:`BlobBackend` — metadata and out-of-row BLOBs in the simulated
  database (the SQL Server configuration, Section 4.2).
* :class:`GfsChunkBackend` — GFS-style fixed 64 MB chunks with record
  append and padding (Section 3.4's related work, built to measure the
  internal-fragmentation trade).
* :class:`LfsBackend` — log-structured layout with a segment cleaner
  (Section 3.4), the write-optimized extreme.

All satisfy the :class:`ObjectStore` protocol, so the workload driver,
fragmentation analyzer, and benches treat them interchangeably.
"""

from repro.backends.base import ObjectStore, ObjectMeta, StoreStats
from repro.backends.costmodel import CostModel
from repro.backends.file_backend import FileBackend
from repro.backends.blob_backend import BlobBackend
from repro.backends.gfs_backend import GfsChunkBackend
from repro.backends.lfs_backend import LfsBackend

__all__ = [
    "ObjectStore",
    "ObjectMeta",
    "StoreStats",
    "CostModel",
    "FileBackend",
    "BlobBackend",
    "GfsChunkBackend",
    "LfsBackend",
]
