"""The get/put object store interface both systems implement.

The paper's applications "make use of simple get/put storage
primitives" (Section 4): allocate an object, read it, atomically replace
it (safe write), delete it.  :class:`ObjectStore` is that contract; the
experiment driver and all analysis tools are written against it, so a
new backend only has to implement these methods to join every bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.alloc.extent import Extent
from repro.disk.device import BlockDevice
from repro.disk.iostats import WindowStats


@dataclass(frozen=True)
class ObjectMeta:
    """What a store knows about one object."""

    key: str
    size: int
    version: int


@dataclass
class StoreStats:
    """Aggregate layout statistics for a whole store."""

    objects: int
    live_bytes: int
    free_bytes: int
    capacity: int
    #: Objects/bytes moved between shards by rebalancing so far; always
    #: zero for single-volume stores.  Migration I/O also lands in the
    #: devices' IoStats through the ordinary submit path — these fields
    #: attribute how much of it was migration.
    migrated_objects: int = 0
    migrated_bytes: int = 0
    #: Fault-tolerance counters, maintained by the sharded composite
    #: (always zero for single-volume stores).  ``degraded_reads`` counts
    #: reads ultimately served by a non-primary replica; ``retries``
    #: counts transient-error re-issues; ``failovers`` counts every time
    #: a read abandoned one holder (dead shard, or retries exhausted)
    #: and moved on to the next.
    degraded_reads: int = 0
    retries: int = 0
    failovers: int = 0
    #: Objects/bytes re-replicated by ``rebuild()`` so far.  Like
    #: migration, rebuild I/O also lands in the devices' IoStats — these
    #: fields attribute how much of it was re-replication.
    rebuilt_objects: int = 0
    rebuilt_bytes: int = 0

    @property
    def occupancy(self) -> float:
        used = self.capacity - self.free_bytes
        return used / self.capacity if self.capacity else 0.0


@runtime_checkable
class ObjectStore(Protocol):
    """Get/put storage of large immutable-ish objects.

    Data parameters: every write method accepts either ``size``
    (timing-only simulation) or ``data`` (byte-exact, needed by the
    marker analyzer and atomicity tests) — exactly one of the two.
    """

    name: str

    def put(self, key: str, *, size: int | None = None,
            data: bytes | None = None) -> None:
        """Create a new object (bulk-load path)."""
        ...

    def get(self, key: str, offset: int = 0,
            length: int | None = None) -> bytes | None:
        """Read (a range of) an object; returns bytes when stored."""
        ...

    def overwrite(self, key: str, *, size: int | None = None,
                  data: bytes | None = None) -> None:
        """Atomically replace an object's contents (safe write)."""
        ...

    def delete(self, key: str) -> None:
        """Remove an object and free its space (subject to deferral)."""
        ...

    def exists(self, key: str) -> bool: ...

    def meta(self, key: str) -> ObjectMeta: ...

    def keys(self) -> list[str]:
        """Live keys in deterministic **insertion order**.

        Contract: the order of first live ``put``; ``overwrite`` keeps a
        key's position; ``delete`` followed by a fresh ``put`` moves it
        to the end.  The workload driver, fragmentation reports, and the
        sharded composite all rely on this being reproducible, and the
        parity suite asserts it across every backend.
        """
        ...

    def read_many(self, keys: list[str]) -> list[bytes | None]:
        """Bulk whole-object read sweep through the device policy.

        One scatter/gather request per object, submitted via
        :meth:`BlockDevice.submit_policy` so the store's
        :class:`~repro.disk.policy.DevicePolicy` (batch size, elevator
        reordering) governs scheduling — the measurement path for the
        request-scheduling study.  Returns one entry per key, aligned
        with ``keys``: the object's bytes when the device stores
        content, else ``None``.  Metadata costs are charged per object,
        like :meth:`get`.

        Error contract: ``None`` never means "the read failed" — an
        unknown key raises :class:`~repro.errors.ObjectNotFoundError`,
        and a key whose every replica is gone raises
        :class:`~repro.errors.ShardUnavailableError`.  ``None`` only
        ever means the device does not store content.
        """
        ...

    def object_extents(self, key: str) -> list[Extent]:
        """Physical layout of the object's data, logical order."""
        ...

    def devices(self) -> list[BlockDevice]:
        """Every device whose time contributes to elapsed time."""
        ...

    def free_bytes(self) -> int:
        """Allocatable bytes right now (cheap; no per-object work)."""
        ...

    def store_stats(self) -> StoreStats: ...


class MeasurementWindows:
    """Open one named window per device and aggregate them on close.

    When the store runs an overlap scheduler (a ``scheduler``
    attribute, see :mod:`repro.disk.schedule`), a scheduler window is
    opened alongside and the combined window's ``wall_time_s`` carries
    the phase's overlapped wall time (device makespan plus serial host
    CPU); without one, ``wall_time_s`` stays ``None`` and wall time
    equals the summed total.

    Usage::

        win = MeasurementWindows.open(store, "bulk-load")
        ... workload ...
        stats = win.close()       # combined WindowStats
    """

    def __init__(self, store: ObjectStore, name: str) -> None:
        self.name = name
        self._pairs = [
            (dev, dev.stats.start_window(name)) for dev in store.devices()
        ]
        self._scheduler = getattr(store, "scheduler", None)
        self._sched_window = (
            self._scheduler.start_window(name)
            if self._scheduler is not None else None
        )

    @classmethod
    def open(cls, store: ObjectStore, name: str) -> "MeasurementWindows":
        return cls(store, name)

    def close(self) -> WindowStats:
        combined = WindowStats(name=self.name)
        for dev, win in self._pairs:
            dev.stats.end_window(win)
            combined.read_bytes += win.read_bytes
            combined.write_bytes += win.write_bytes
            combined.read_time_s += win.read_time_s
            combined.write_time_s += win.write_time_s
            combined.cpu_time_s += win.cpu_time_s
            combined.seeks += win.seeks
            combined.requests += win.requests
        if self._sched_window is not None:
            self._scheduler.end_window(self._sched_window)
            # Device lanes overlap; host CPU time stays serial.
            combined.wall_time_s = (self._sched_window.wall_time_s
                                    + combined.cpu_time_s)
            # An event scheduler's windows also carry a per-request
            # sojourn histogram (see repro.disk.events).
            latency = getattr(self._sched_window, "latency", None)
            if latency is not None and latency.count:
                combined.lat_count = latency.count
                combined.lat_mean_s = latency.mean_s
                combined.lat_p50_s = latency.percentile(50.0)
                combined.lat_p95_s = latency.percentile(95.0)
                combined.lat_p99_s = latency.percentile(99.0)
                combined.lat_max_s = latency.max_s
            # Tenant-tagged requests (scenario runs) additionally split
            # the foreground histogram per tenant.
            tenants = getattr(self._sched_window, "tenant_latency", None)
            if tenants:
                combined.tenant_lat = {
                    tag: hist.summary()
                    for tag, hist in sorted(tenants.items())
                }
        return combined
