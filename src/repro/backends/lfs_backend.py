"""LFS-style log-structured object store with a segment cleaner.

Section 3.4 of the paper: LFS organizes the disk as a log, writing
sequentially and relying on a cleaner that "simultaneously defragments
the disk and reclaims deleted file space".  For the paper's safe-write
workload the log is a natural fit — every replacement writes the whole
object contiguously at the log head — so external fragmentation stays
near one extent per object, at the cost of cleaner write amplification
that grows with occupancy.  The extension bench (A5) quantifies both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.extent import Extent
from repro.backends.base import ObjectMeta, StoreStats
from repro.backends.costmodel import CostModel
from repro.backends.registry import (
    float_option,
    register_backend,
    size_option,
)
from repro.backends.spec import StoreSpec
from repro.disk.device import BlockDevice, IoRequest
from repro.errors import ConfigError, ObjectNotFoundError, StorageFullError
from repro.units import DEFAULT_WRITE_REQUEST, MB


@dataclass
class _Segment:
    seg_id: int
    base: int
    used: int = 0
    live: int = 0  # bytes still referenced

    def dead(self) -> int:
        return self.used - self.live


@dataclass
class _ObjectLoc:
    key: str
    size: int
    version: int
    #: (segment id, offset in segment, length) pieces in logical order.
    pieces: list[tuple[int, int, int]] = field(default_factory=list)


class LfsBackend:
    """Append-only segmented log with greedy cleaning."""

    def __init__(self, device: BlockDevice, *,
                 segment_size: int = 4 * MB,
                 cost_model: CostModel | None = None,
                 write_request: int = DEFAULT_WRITE_REQUEST,
                 clean_threshold: float = 0.75) -> None:
        if segment_size <= 0:
            raise ConfigError("segment_size must be positive")
        if not 0.0 < clean_threshold <= 1.0:
            raise ConfigError("clean_threshold must be in (0, 1]")
        self.name = "lfs"
        self.device = device
        self.segment_size = segment_size
        self.cost = cost_model or CostModel()
        self.write_request = write_request
        #: Start cleaning when fewer than this fraction of segments free.
        self.clean_threshold = clean_threshold
        self.nsegments = device.geometry.capacity // segment_size
        if self.nsegments < 4:
            raise ConfigError("volume smaller than four segments")
        self._free_segments: list[int] = list(range(self.nsegments))
        self._segments: dict[int, _Segment] = {}
        self._head: _Segment | None = None
        self._objects: dict[str, _ObjectLoc] = {}
        self.cleaner_runs = 0
        self.cleaner_copied_bytes = 0
        self._cleaning = False

    # ------------------------------------------------------------------
    # Log mechanics
    # ------------------------------------------------------------------
    def _free_count(self) -> int:
        return len(self._free_segments)

    def _next_segment(self) -> _Segment:
        if not self._free_segments:
            self._clean(target_free=1)
        if not self._free_segments:
            raise StorageFullError("log full even after cleaning")
        seg_id = self._free_segments.pop(0)
        seg = _Segment(seg_id=seg_id, base=seg_id * self.segment_size)
        self._segments[seg_id] = seg
        return seg

    def _append(self, key: str, size: int, data: bytes | None,
                version: int) -> _ObjectLoc:
        loc = _ObjectLoc(key=key, size=size, version=version)
        remaining = size
        cursor = 0
        while remaining > 0:
            if self._head is None or self._head.used >= self.segment_size:
                self._head = self._next_segment()
            seg = self._head
            take = min(remaining, self.segment_size - seg.used)
            payload = None
            if data is not None:
                payload = data[cursor: cursor + take]
            offset = seg.base + seg.used
            # Bulk path: one scatter/gather submission per log piece
            # instead of one stats record per write_request chunk; the
            # device policy caps the batch size and picks the order.
            batch: list[IoRequest] = []
            step = 0
            while step < take:
                req = min(self.write_request, take - step)
                chunk = payload[step: step + req] if payload is not None else None
                batch.append(
                    IoRequest(True, [Extent(offset + step, req)], chunk)
                )
                step += req
            self.device.submit_policy(batch)
            loc.pieces.append((seg.seg_id, seg.used, take))
            seg.used += take
            seg.live += take
            cursor += take
            remaining -= take
        return loc

    def _release_pieces(self, loc: _ObjectLoc) -> None:
        for seg_id, _, length in loc.pieces:
            seg = self._segments.get(seg_id)
            if seg is None:
                continue
            seg.live -= length
            if seg.live == 0 and seg is not self._head:
                del self._segments[seg_id]
                self._free_segments.append(seg_id)
                self._free_segments.sort()

    def _release(self, loc: _ObjectLoc) -> None:
        self._release_pieces(loc)
        self._maybe_clean()

    def _maybe_clean(self) -> None:
        low_water = max(1, int(self.nsegments * (1 - self.clean_threshold)))
        if self._free_count() < low_water:
            self._clean(target_free=low_water)

    def _clean(self, *, target_free: int) -> None:
        """Greedy cleaner: rewrite the deadest sealed segments."""
        if self._cleaning:
            return  # cleaning writes must not recursively clean
        self._cleaning = True
        try:
            while self._free_count() < target_free:
                candidates = [
                    s for s in self._segments.values()
                    if s is not self._head and s.dead() > 0
                ]
                if not candidates:
                    return
                victim = max(candidates, key=lambda s: s.dead())
                self._clean_segment(victim)
                self.cleaner_runs += 1
        finally:
            self._cleaning = False

    def _clean_segment(self, victim: _Segment) -> None:
        movers = [
            loc for loc in self._objects.values()
            if any(seg_id == victim.seg_id for seg_id, _, _ in loc.pieces)
        ]
        for loc in movers:
            payload = self._peek_object(loc)
            self._read_pieces(loc)
            new_loc = self._append(loc.key, loc.size, payload, loc.version)
            self._objects[loc.key] = new_loc
            self._release_pieces(loc)
            self.cleaner_copied_bytes += loc.size
        # The victim should now be fully dead.
        if victim.live <= 0 and victim.seg_id in self._segments:
            del self._segments[victim.seg_id]
            self._free_segments.append(victim.seg_id)
            self._free_segments.sort()

    def _peek_object(self, loc: _ObjectLoc) -> bytes | None:
        if not self.device.stores_data:
            return None
        parts = []
        for seg_id, off, length in loc.pieces:
            base = seg_id * self.segment_size
            parts.append(self.device.peek(base + off, length))
        return b"".join(parts)

    def _read_pieces(self, loc: _ObjectLoc) -> None:
        extents = self._extents_of(loc)
        self.device.read_extents(extents)

    def _extents_of(self, loc: _ObjectLoc) -> list[Extent]:
        out = []
        for seg_id, off, length in loc.pieces:
            out.append(Extent(seg_id * self.segment_size + off, length))
        return out

    # ------------------------------------------------------------------
    # ObjectStore interface
    # ------------------------------------------------------------------
    def put(self, key: str, *, size: int | None = None,
            data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        if key in self._objects:
            raise ConfigError(f"object {key!r} exists")
        self.cost.charge_db_query(self.device.stats)
        self._objects[key] = self._append(key, total, data, version=1)
        self.device.flush()
        self._maybe_clean()

    def get(self, key: str, offset: int = 0,
            length: int | None = None) -> bytes | None:
        loc = self._lookup(key)
        if length is None:
            length = loc.size - offset
        if offset < 0 or offset + length > loc.size:
            raise ConfigError("range outside object")
        self.cost.charge_db_query(self.device.stats)
        # Map the byte range onto the pieces.
        extents: list[Extent] = []
        logical = 0
        remaining = length
        for seg_id, off, plen in loc.pieces:
            lo = logical
            logical += plen
            if logical <= offset:
                continue
            start_in = max(0, offset - lo)
            take = min(plen - start_in, remaining)
            extents.append(
                Extent(seg_id * self.segment_size + off + start_in, take)
            )
            remaining -= take
            if remaining == 0:
                break
        return self.device.read_extents(extents)

    def overwrite(self, key: str, *, size: int | None = None,
                  data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        old = self._lookup(key)
        self.cost.charge_db_query(self.device.stats)
        new = self._append(key, total, data, version=old.version + 1)
        self._objects[key] = new
        self.device.flush()
        self._release(old)

    def delete(self, key: str) -> None:
        loc = self._lookup(key)
        self.cost.charge_db_query(self.device.stats)
        del self._objects[key]
        self._release(loc)

    def exists(self, key: str) -> bool:
        return key in self._objects

    def meta(self, key: str) -> ObjectMeta:
        loc = self._lookup(key)
        return ObjectMeta(key=key, size=loc.size, version=loc.version)

    def keys(self) -> list[str]:
        return list(self._objects)

    def read_many(self, keys: list[str]) -> list[bytes | None]:
        requests: list[IoRequest] = []
        for key in keys:
            loc = self._lookup(key)
            self.cost.charge_db_query(self.device.stats)
            requests.append(IoRequest(False, self._extents_of(loc)))
        return self.device.submit_policy(requests)

    def object_extents(self, key: str) -> list[Extent]:
        return self._extents_of(self._lookup(key))

    def devices(self) -> list[BlockDevice]:
        return [self.device]

    def free_bytes(self) -> int:
        free = self._free_count() * self.segment_size
        if self._head is not None:
            free += self.segment_size - self._head.used
        return free

    def store_stats(self) -> StoreStats:
        live = sum(self._objects[k].size for k in sorted(self._objects))
        free = self._free_count() * self.segment_size
        if self._head is not None:
            free += self.segment_size - self._head.used
        return StoreStats(
            objects=len(self._objects),
            live_bytes=live,
            free_bytes=free,
            capacity=self.nsegments * self.segment_size,
        )

    def write_amplification(self) -> float:
        """Cleaner bytes per logical byte written (0 when never cleaned)."""
        logical = sum(self._objects[k].size for k in sorted(self._objects))
        if self.cleaner_copied_bytes == 0 or logical == 0:
            return 0.0
        return self.cleaner_copied_bytes / max(1, logical)

    def _lookup(self, key: str) -> _ObjectLoc:
        try:
            return self._objects[key]
        except KeyError:
            raise ObjectNotFoundError(f"no object {key!r}") from None


@register_backend(
    "lfs",
    description="log-structured segments with a cleaner",
    options={
        "segment_size": size_option,
        "clean_threshold": float_option,
    },
)
def _lfs_from_spec(spec: StoreSpec, device: BlockDevice) -> LfsBackend:
    return LfsBackend(
        device,
        segment_size=spec.option("segment_size", 4 * MB),
        write_request=spec.write_request,
        clean_threshold=spec.option("clean_threshold", 0.75),
    )
