"""Backend registry: from a :class:`StoreSpec` to a live object store.

Each backend module registers a ``from_spec`` constructor with
:func:`register_backend`, declaring its name, a one-line description
(surfaced by ``python -m repro --list-backends``) and the options it
accepts (name → converter).  Everything that used to be hand-maintained
— the ``BACKENDS`` tuple, config validation, the ``make_store`` if/elif
chain — now derives from the registry, so adding a backend is one file
plus one decorator (see docs/architecture.md, "add a backend in one
file").

:func:`build_store` is the single construction path:

* ``spec.shards > 1`` (or ``backend="sharded"``) builds a
  :class:`~repro.backends.sharded.ShardedStore` striping over per-shard
  sub-specs;
* otherwise the named backend's factory gets a fresh
  :class:`~repro.disk.device.BlockDevice` carrying the spec's
  :class:`~repro.disk.policy.DevicePolicy` plus the spec with its
  options validated and type-converted (:func:`resolve_spec`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping

from repro.backends.base import ObjectStore
from repro.backends.spec import StoreSpec, _parse_bool, _parse_bytes
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError

# ----------------------------------------------------------------------
# Option converters (shared vocabulary for backend declarations)
# ----------------------------------------------------------------------
size_option = _parse_bytes
bool_option = _parse_bool


def float_option(value: Any) -> float:
    return float(value)


def int_option(value: Any) -> int:
    return int(value)


def choice_option(*choices: str) -> Callable[[Any], str]:
    def convert(value: Any) -> str:
        text = str(value)
        if text not in choices:
            raise ConfigError(
                f"bad value {text!r}; choose from {choices}"
            )
        return text
    return convert


def object_option(kind: type) -> Callable[[Any], Any]:
    """An option holding a config object (programmatic specs only)."""
    def convert(value: Any) -> Any:
        if not isinstance(value, kind):
            raise ConfigError(
                f"expected a {kind.__name__}, got {type(value).__name__}"
            )
        return value
    return convert


@dataclass(frozen=True)
class BackendInfo:
    """One registry entry."""

    name: str
    factory: Callable[[StoreSpec, BlockDevice], ObjectStore]
    description: str
    options: Mapping[str, Callable[[Any], Any]]
    #: Composite backends are desugared by build_store, never called.
    composite: bool = False


_REGISTRY: dict[str, BackendInfo] = {}


def register_backend(name: str, *, description: str = "",
                     options: Mapping[str, Callable[[Any], Any]]
                     | None = None,
                     composite: bool = False):
    """Class/function decorator registering a ``from_spec`` factory.

    The factory is called as ``factory(spec, device)`` with the spec's
    options already converted; it returns an :class:`ObjectStore`.
    """
    def deco(factory):
        if name in _REGISTRY:
            raise ConfigError(f"backend {name!r} registered twice")
        _REGISTRY[name] = BackendInfo(
            name=name, factory=factory,
            description=description or (factory.__doc__ or "").strip(),
            options=dict(options or {}), composite=composite,
        )
        return factory
    return deco


def _ensure_loaded() -> None:
    """Import the backend modules so their decorators have run.

    Imports are lazy (inside this function) because the backend modules
    themselves import :func:`register_backend` from here.
    """
    import repro.backends.blob_backend    # noqa: F401
    import repro.backends.file_backend    # noqa: F401
    import repro.backends.gfs_backend     # noqa: F401
    import repro.backends.lfs_backend     # noqa: F401
    import repro.backends.sharded         # noqa: F401


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, in registration order."""
    _ensure_loaded()
    return tuple(_REGISTRY)


def backend_info(name: str) -> BackendInfo:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown backend {name!r}; choose from {tuple(_REGISTRY)}"
        ) from None


def backend_descriptions() -> dict[str, str]:
    _ensure_loaded()
    return {name: info.description for name, info in _REGISTRY.items()}


# ----------------------------------------------------------------------
# Spec resolution and construction
# ----------------------------------------------------------------------
def resolve_spec(spec: StoreSpec) -> StoreSpec:
    """Validate and normalize a spec against the registry.

    Desugars the ``sharded`` pseudo-backend onto its inner backend,
    then validates and type-converts every option against the target
    backend's declaration.  The result is what run records serialize:
    fully resolved, so ablations are attributable from the JSON alone.
    """
    info = backend_info(spec.backend)
    if info.composite:
        options = spec.options_dict()
        inner = options.pop("inner", "filesystem")
        inner_info = backend_info(str(inner))
        if inner_info.composite:
            raise ConfigError("sharded stores do not nest")
        spec = replace(spec, backend=inner_info.name,
                       options=tuple(sorted(options.items())),
                       shards=spec.shards if spec.shards > 1 else 2)
        info = inner_info
    if spec.overlap and spec.shards <= 1:
        raise ConfigError(
            "overlap=true needs shards > 1 (the overlap model schedules "
            "per-shard device lanes; a single volume has one lane)"
        )
    if spec.queue == "event" and not spec.overlap:
        raise ConfigError(
            "queue=event needs overlap=true (the event queue simulates "
            "per-shard lanes of the overlap scheduler; without overlap "
            "there is no scheduler to layer it under)"
        )
    if spec.arrival != "closed":
        if spec.queue != "event":
            raise ConfigError(
                "arrival=... needs queue=event (the round model has no "
                "arrival process; every request in a round finishes "
                "together)"
            )
        from repro.disk.events import ArrivalSpec

        ArrivalSpec.parse(spec.arrival)
    if spec.replicas > spec.shards:
        raise ConfigError(
            f"replicas={spec.replicas} needs at least that many shards "
            f"(spec has {spec.shards})"
        )
    if spec.faults:
        from repro.disk.faults import FaultProfile

        profile = FaultProfile.parse(spec.faults)
        scoped = profile.max_shard()
        if spec.shards <= 1 and (profile.losses or scoped is not None):
            raise ConfigError(
                "loss and shard-scoped fault clauses need shards > 1 "
                "(a single volume has no shard to kill or target)"
            )
        if scoped is not None and scoped >= spec.shards:
            raise ConfigError(
                f"fault clause targets shard {scoped}, but the spec "
                f"has only {spec.shards} shards"
            )
    converted = {}
    for name, value in spec.options:
        converter = info.options.get(name)
        if converter is None:
            raise ConfigError(
                f"backend {info.name!r} does not accept option "
                f"{name!r}; accepted: {tuple(info.options)}"
            )
        try:
            converted[name] = converter(value)
        except ConfigError:
            raise
        except (TypeError, ValueError) as exc:
            raise ConfigError(
                f"bad value for {info.name} option {name}: {exc}"
            ) from None
    return replace(spec, options=tuple(sorted(converted.items())))


def build_store(spec: StoreSpec) -> ObjectStore:
    """Construct the store a spec describes (the only build path)."""
    spec = resolve_spec(spec)
    if spec.shards > 1:
        from repro.backends.sharded import ShardedStore
        from repro.disk.faults import FaultProfile

        profile = FaultProfile.parse(spec.faults) if spec.faults else None
        shards = [build_store(sub) for sub in spec.shard_specs()]
        return ShardedStore(shards, placement=spec.placement,
                            band_bytes=spec.band_bytes,
                            overlap=spec.overlap,
                            parallelism=spec.parallelism,
                            dispatch_overhead_s=spec.dispatch_overhead_s,
                            replicas=spec.replicas,
                            faults=profile,
                            rebuild_rate=spec.rebuild_rate,
                            rebalance_rate=spec.rebalance_rate,
                            checkpoint_rate=spec.checkpoint_rate,
                            queue=spec.queue,
                            queue_depth=spec.queue_depth,
                            arrival=spec.arrival)
    info = backend_info(spec.backend)
    device_faults = None
    if spec.faults:
        from repro.disk.faults import FaultProfile

        device_faults = FaultProfile.parse(spec.faults).device_faults()
    if device_faults is not None:
        from repro.disk.faults import FaultyBlockDevice

        device: BlockDevice = FaultyBlockDevice(
            scaled_disk(spec.volume_bytes), store_data=spec.store_data,
            policy=spec.policy, faults=device_faults)
    else:
        device = BlockDevice(scaled_disk(spec.volume_bytes),
                             store_data=spec.store_data, policy=spec.policy)
    return info.factory(spec, device)
