"""Multi-volume composite: :class:`ShardedStore`.

The ROADMAP's north star asks for aggregate multi-device throughput;
related work (SEARS, arXiv:1508.01182) gets there by spreading objects
across many small stores instead of scaling one.  ``ShardedStore`` is
that composite for this codebase: an :class:`ObjectStore` that stripes
keys over N inner stores (each with its own device, free-space index,
and cleaner), so every driver written against the protocol — the
experiment runner, :class:`LargeObjectRepository`, the fragmentation
analyzers — runs unchanged over a multi-volume layout.

Placement policies (``spec.placement``):

* ``hash`` — stable CRC32 of the key; spreads any key population
  uniformly and needs no state to route reads.
* ``round_robin`` — strict rotation in put order; the best spread for
  bulk loads of same-sized objects.
* ``size_banded`` — shard index by size band (geometric bands doubling
  from ``band_bytes``), segregating small from large objects the way
  mixed-workload deployments do to keep small-object churn from
  fragmenting large-object volumes.

Placement is **sticky**: an object stays on the shard that first stored
it; ``overwrite`` never migrates (a safe write that hopped shards would
charge cross-volume copies the paper's workload does not contain).
``delete`` followed by a fresh ``put`` re-places, and moves the key to
the end of :meth:`keys` — exactly the protocol's insertion-order
contract.

Stats aggregate across shards: :meth:`store_stats` sums the per-shard
:class:`StoreStats` fields, :meth:`devices` concatenates every shard's
devices (so measurement windows span all volumes), and
:meth:`object_extents` reports the owning shard's extents (offsets are
per-shard device addresses; fragment counts coalesce within one object
and therefore within one shard, so reports stay exact).

Overlapping device time
-----------------------
With ``overlap=True`` the composite runs a
:class:`~repro.disk.schedule.ShardScheduler`: every store operation is
one *dispatch round* whose per-shard device-time deltas are lanes that
overlap (fan-out calls like :meth:`read_many` put every touched shard
in one round; single-shard ops are one-lane rounds).  The scheduler's
accumulated makespan is the store's overlapped wall time, reported by
measurement windows alongside the historical summed device time — the
concurrency model that makes ``--shards 4`` an actual speedup instead
of four summed seek streams.

Rebalancing
-----------
:meth:`rebalance` migrates objects between shards — ``mode="even"``
greedily moves objects from the fullest to the emptiest shard until no
move narrows the spread (the occupancy-skew fix for unlucky hash
placement), ``mode="placement"`` re-applies the placement policy to
every key (healing drift from delete/re-put under ``round_robin`` or
resized bands).  Migration copies before it deletes, so every object
stays readable mid-migration; all migration I/O is charged through the
shards' normal get/put paths and surfaces in
:attr:`StoreStats.migrated_objects` / ``migrated_bytes``.  The key →
shard map only has values updated, never reinserted, so the
:meth:`keys` insertion-order contract survives any rebalance.
"""

from __future__ import annotations

import contextlib
import zlib
from collections.abc import Sequence
from dataclasses import dataclass

from repro.alloc.extent import Extent
from repro.backends.base import ObjectMeta, ObjectStore, StoreStats
from repro.backends.registry import register_backend
from repro.backends.spec import PLACEMENTS, StoreSpec
from repro.disk.device import BlockDevice
from repro.disk.schedule import ShardScheduler
from repro.errors import ConfigError, ObjectNotFoundError
from repro.units import MB

#: Supported :meth:`ShardedStore.rebalance` modes.
REBALANCE_MODES = ("even", "placement")


@dataclass(frozen=True)
class RebalanceReport:
    """What one :meth:`ShardedStore.rebalance` call did."""

    mode: str
    moved_objects: int
    moved_bytes: int
    #: max/min per-shard occupancy before and after the migration.
    skew_before: float
    skew_after: float


class ShardedStore:
    """Stripe keys over N inner object stores."""

    def __init__(self, shards: Sequence[ObjectStore], *,
                 placement: str = "hash",
                 band_bytes: int = 1 * MB,
                 overlap: bool = False,
                 parallelism: int = 0,
                 dispatch_overhead_s: float = 0.0) -> None:
        if len(shards) < 2:
            raise ConfigError("a sharded store needs at least two shards")
        if placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {placement!r}; choose from {PLACEMENTS}"
            )
        if band_bytes <= 0:
            raise ConfigError("band_bytes must be positive")
        self.shards = list(shards)
        self.placement = placement
        self.band_bytes = band_bytes
        inner = {s.name for s in self.shards}
        inner_name = inner.pop() if len(inner) == 1 else "mixed"
        self.name = f"sharded[{len(self.shards)}x{inner_name}]"
        #: key -> shard index; insertion order IS the composite key order.
        self._shard_of: dict[str, int] = {}
        self._rr_next = 0
        #: Overlap scheduler (None = historical summed-time model).
        self.scheduler = ShardScheduler(
            parallelism=parallelism,
            dispatch_overhead_s=dispatch_overhead_s,
        ) if overlap else None
        #: Per-shard device lists, cached: lane time deltas are read on
        #: every dispatch round and the lists never change.
        self._lane_devices = [list(s.devices()) for s in self.shards]
        self.migrated_objects = 0
        self.migrated_bytes = 0

    # ------------------------------------------------------------------
    # Dispatch rounds (overlap model)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _dispatch(self, indices: Sequence[int]):
        """One scheduler round over the given shard lanes.

        Captures each involved shard's device-clock delta across the
        wrapped operation and records the round's makespan; a no-op
        when the overlap model is off.
        """
        sched = self.scheduler
        if sched is None:
            yield
            return
        lanes = [self._lane_devices[i] for i in indices]
        before = [sum(d.clock_s for d in devs) for devs in lanes]
        try:
            yield
        finally:
            sched.record_round([
                sum(d.clock_s for d in devs) - b
                for devs, b in zip(lanes, before)
            ])

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, key: str, size: int) -> int:
        n = len(self.shards)
        if self.placement == "hash":
            return zlib.crc32(key.encode("utf-8")) % n
        if self.placement == "round_robin":
            index = self._rr_next % n
            self._rr_next += 1
            return index
        # size_banded: bands double from band_bytes; the last shard
        # takes everything beyond the top band.
        band = 0
        threshold = self.band_bytes
        while size > threshold and band < n - 1:
            band += 1
            threshold *= 2
        return band

    def shard_for(self, key: str) -> int:
        """Index of the shard holding ``key`` (raises when absent)."""
        try:
            return self._shard_of[key]
        except KeyError:
            raise ObjectNotFoundError(f"no object {key!r}") from None

    # ------------------------------------------------------------------
    # ObjectStore interface
    # ------------------------------------------------------------------
    def put(self, key: str, *, size: int | None = None,
            data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        # A duplicate put must fail with the inner backend's error, so
        # route it to the owning shard rather than re-placing.
        index = self._shard_of.get(key)
        if index is None:
            index = self._place(key, total)
        with self._dispatch((index,)):
            if data is not None:
                self.shards[index].put(key, data=data)
            else:
                self.shards[index].put(key, size=total)
        self._shard_of[key] = index

    def get(self, key: str, offset: int = 0,
            length: int | None = None) -> bytes | None:
        index = self.shard_for(key)
        with self._dispatch((index,)):
            return self.shards[index].get(key, offset, length)

    def overwrite(self, key: str, *, size: int | None = None,
                  data: bytes | None = None) -> None:
        index = self.shard_for(key)
        shard = self.shards[index]
        with self._dispatch((index,)):
            if data is not None:
                shard.overwrite(key, data=data)
            else:
                shard.overwrite(key, size=size)

    def delete(self, key: str) -> None:
        index = self.shard_for(key)
        with self._dispatch((index,)):
            self.shards[index].delete(key)
        del self._shard_of[key]

    def exists(self, key: str) -> bool:
        return key in self._shard_of

    def meta(self, key: str) -> ObjectMeta:
        return self.shards[self.shard_for(key)].meta(key)

    def keys(self) -> list[str]:
        return list(self._shard_of)

    def read_many(self, keys: list[str]) -> list[bytes | None]:
        by_shard: dict[int, list[tuple[int, str]]] = {}
        for pos, key in enumerate(keys):
            by_shard.setdefault(self.shard_for(key), []).append((pos, key))
        results: list[bytes | None] = [None] * len(keys)
        # One fan-out = one dispatch round: every touched shard serves
        # its sub-sweep on its own devices, so the lanes overlap.
        with self._dispatch(tuple(by_shard)):
            for index, members in by_shard.items():
                shard_results = self.shards[index].read_many(
                    [key for _, key in members]
                )
                for (pos, _), value in zip(members, shard_results):
                    results[pos] = value
        return results

    def object_extents(self, key: str) -> list[Extent]:
        return self.shards[self.shard_for(key)].object_extents(key)

    def devices(self) -> list[BlockDevice]:
        out: list[BlockDevice] = []
        for shard in self.shards:
            out.extend(shard.devices())
        return out

    def free_bytes(self) -> int:
        return sum(shard.free_bytes() for shard in self.shards)

    def store_stats(self) -> StoreStats:
        totals = StoreStats(objects=0, live_bytes=0, free_bytes=0,
                            capacity=0,
                            migrated_objects=self.migrated_objects,
                            migrated_bytes=self.migrated_bytes)
        for stats in self.shard_stats():
            totals.objects += stats.objects
            totals.live_bytes += stats.live_bytes
            totals.free_bytes += stats.free_bytes
            totals.capacity += stats.capacity
        return totals

    # ------------------------------------------------------------------
    # Rebalancing / migration
    # ------------------------------------------------------------------
    def occupancy_skew(self) -> float:
        """max/min per-shard occupancy (``inf`` when a shard is empty
        while another holds data; 1.0 for a perfectly even or idle
        store)."""
        occupancies = [stats.occupancy for stats in self.shard_stats()]
        hi, lo = max(occupancies), min(occupancies)
        if lo <= 0.0:
            return float("inf") if hi > 0.0 else 1.0
        return hi / lo

    def rebalance(self, *, mode: str = "even",
                  on_move=None) -> RebalanceReport:
        """Migrate objects between shards; returns what moved.

        ``mode="even"`` greedily narrows the live-byte spread: move the
        object from the fullest shard whose size best splits the gap to
        the emptiest shard, until no single move improves the spread.
        ``mode="placement"`` re-applies the placement policy to every
        key in composite key order and moves whatever landed elsewhere
        (``round_robin`` redeals the rotation from shard 0).

        Every migration copies to the target shard *before* deleting
        from the source and only then updates the routing map, so
        concurrent readers — including an ``on_move(key, src, dst)``
        callback fired mid-migration — always find the object.  All
        migration I/O goes through the shards' ordinary ``get``/``put``
        paths (and, under the overlap model, one two-lane dispatch
        round per object).
        """
        if mode not in REBALANCE_MODES:
            raise ConfigError(
                f"unknown rebalance mode {mode!r}; "
                f"choose from {REBALANCE_MODES}"
            )
        skew_before = self.occupancy_skew()
        sizes = {key: self.shards[index].meta(key).size
                 for key, index in self._shard_of.items()}
        if mode == "placement":
            moves = self._plan_placement(sizes)
        else:
            moves = self._plan_even(sizes)
        moved_bytes = 0
        for key, src, dst in moves:
            moved_bytes += self._migrate(key, sizes[key], src, dst,
                                         on_move)
        return RebalanceReport(
            mode=mode,
            moved_objects=len(moves),
            moved_bytes=moved_bytes,
            skew_before=skew_before,
            skew_after=self.occupancy_skew(),
        )

    def _plan_placement(self, sizes: dict[str, int]) -> list:
        """Moves that restore the placement policy's shard choice."""
        moves = []
        rr = 0
        for key, current in self._shard_of.items():
            if self.placement == "round_robin":
                desired = rr % len(self.shards)
                rr += 1
            else:
                desired = self._place(key, sizes[key])
            if desired != current:
                moves.append((key, current, desired))
        if self.placement == "round_robin":
            self._rr_next = rr
        return moves

    def _plan_even(self, sizes: dict[str, int]) -> list:
        """Greedy spread-narrowing moves over live bytes.

        Each step moves one object from the fullest to the emptiest
        shard, picking the size closest to half their gap (the move
        that most evens the pair); a move is only taken when it
        strictly narrows the gap, so the plan terminates and never
        oscillates.
        """
        live = [0] * len(self.shards)
        members: list[dict[str, int]] = [{} for _ in self.shards]
        for key, index in self._shard_of.items():
            live[index] += sizes[key]
            members[index][key] = sizes[key]
        moves = []
        for _ in range(2 * len(sizes) + len(self.shards)):
            src = max(range(len(live)), key=live.__getitem__)
            dst = min(range(len(live)), key=live.__getitem__)
            gap = live[src] - live[dst]
            if gap <= 0:
                break
            best = min(
                (key for key, size in members[src].items()
                 if 0 < size < gap),
                key=lambda key: abs(gap - 2 * members[src][key]),
                default=None,
            )
            if best is None:
                break
            size = members[src].pop(best)
            members[dst][best] = size
            live[src] -= size
            live[dst] += size
            moves.append((best, src, dst))
        return moves

    def _migrate(self, key: str, size: int, src_index: int,
                 dst_index: int, on_move) -> int:
        """Copy ``key`` to its new shard, re-route, then delete."""
        src = self.shards[src_index]
        dst = self.shards[dst_index]
        with self._dispatch((src_index, dst_index)):
            data = src.get(key)
            if data is not None:
                dst.put(key, data=data)
            else:
                dst.put(key, size=size)
            # Routing flips only once the copy is complete; a dict
            # value update keeps the key's position, preserving the
            # keys() insertion-order contract.
            self._shard_of[key] = dst_index
            if on_move is not None:
                on_move(key, src_index, dst_index)
            src.delete(key)
        self.migrated_objects += 1
        self.migrated_bytes += size
        return size

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_stats(self) -> list[StoreStats]:
        """Per-shard :class:`StoreStats`, for balance reporting."""
        return [shard.store_stats() for shard in self.shards]


@register_backend(
    "sharded",
    description="composite: stripes keys over N shards of an inner "
                "backend (inner=<name>, default filesystem)",
    options={"inner": str},
    composite=True,
)
def _sharded_from_spec(spec: StoreSpec, device: BlockDevice) -> ObjectStore:
    raise ConfigError(
        "composite specs are desugared by build_store; this factory "
        "is registered for listing and option declaration only"
    )
