"""Multi-volume composite: :class:`ShardedStore`.

The ROADMAP's north star asks for aggregate multi-device throughput;
related work (SEARS, arXiv:1508.01182) gets there by spreading objects
across many small stores instead of scaling one.  ``ShardedStore`` is
that composite for this codebase: an :class:`ObjectStore` that stripes
keys over N inner stores (each with its own device, free-space index,
and cleaner), so every driver written against the protocol — the
experiment runner, :class:`LargeObjectRepository`, the fragmentation
analyzers — runs unchanged over a multi-volume layout.

Placement policies (``spec.placement``):

* ``hash`` — stable CRC32 of the key; spreads any key population
  uniformly and needs no state to route reads.
* ``round_robin`` — strict rotation in put order; the best spread for
  bulk loads of same-sized objects.
* ``size_banded`` — shard index by size band (geometric bands doubling
  from ``band_bytes``), segregating small from large objects the way
  mixed-workload deployments do to keep small-object churn from
  fragmenting large-object volumes.

Placement is **sticky**: an object stays on the shard that first stored
it; ``overwrite`` never migrates (a safe write that hopped shards would
charge cross-volume copies the paper's workload does not contain).
``delete`` followed by a fresh ``put`` re-places, and moves the key to
the end of :meth:`keys` — exactly the protocol's insertion-order
contract.

Stats aggregate across shards: :meth:`store_stats` sums the per-shard
:class:`StoreStats` fields, :meth:`devices` concatenates every shard's
devices (so measurement windows span all volumes), and
:meth:`object_extents` reports the owning shard's extents (offsets are
per-shard device addresses; fragment counts coalesce within one object
and therefore within one shard, so reports stay exact).

Overlapping device time
-----------------------
With ``overlap=True`` the composite runs a
:class:`~repro.disk.schedule.ShardScheduler`: every store operation is
one *dispatch round* whose per-shard device-time deltas are lanes that
overlap (fan-out calls like :meth:`read_many` put every touched shard
in one round; single-shard ops are one-lane rounds).  The scheduler's
accumulated makespan is the store's overlapped wall time, reported by
measurement windows alongside the historical summed device time — the
concurrency model that makes ``--shards 4`` an actual speedup instead
of four summed seek streams.

``queue="event"`` layers the event-driven simulator
(:class:`~repro.disk.events.EventScheduler`) under the same dispatch
rounds: each lane becomes a request in its shard's bounded FIFO with
enqueue/dispatch/complete timestamps, so measurement windows also
report p50/p95/p99 sojourn latency.  Under closed arrivals the event
model reduces to the round makespan exactly; ``arrival=
"poisson:rate=..."`` re-times requests onto an open-loop timeline so
saturation shows up as a latency tail.  Backoff and rebuild-throttle
stalls flow through :meth:`_charge_stall` into the same queue
timeline, so background pauses contend with foreground traffic.

Rebalancing
-----------
:meth:`rebalance` migrates objects between shards — ``mode="even"``
greedily moves objects from the fullest to the emptiest shard until no
move narrows the spread (the occupancy-skew fix for unlucky hash
placement), ``mode="placement"`` re-applies the placement policy to
every key (healing drift from delete/re-put under ``round_robin`` or
resized bands).  Migration copies before it deletes, so every object
stays readable mid-migration; all migration I/O is charged through the
shards' normal get/put paths and surfaces in
:attr:`StoreStats.migrated_objects` / ``migrated_bytes``.  The key →
shard map only has values updated, never reinserted, so the
:meth:`keys` insertion-order contract survives any rebalance.

Like rebuild, rebalancing is throttled as a duty cycle:
``rebalance_rate=R`` (spec key of the same name; per-call ``rate=``
override) stalls ``copy_time * (1-R)/R`` after each migrated object, so
a gentler rebalance takes proportionally longer while leaving the
devices free for foreground requests between copies.  The report's
``copy_device_s`` / ``stall_s`` split the cost the same way rebuild's
does.

Charged background writes
-------------------------
:meth:`background_write` charges a byte volume of non-addressable
background write traffic — checkpoint write-back is the driver's use —
through the normal dispatch machinery: the bytes split evenly over the
live shards, each lane charging a sequential streaming write
(:meth:`~repro.disk.device.BlockDevice.charge_sequential_write`) inside
one multi-lane dispatch round, followed by the ``rate`` duty-cycle
stall.  Under ``queue=event`` the round enters the same per-shard FIFOs
as foreground requests, so an in-flight checkpoint visibly fattens the
foreground latency tail; the spec's ``checkpoint_rate`` (default 0 =
uncharged) sets the default duty cycle.

Replication & degraded operation
--------------------------------
With ``replicas=k`` every object lands on its placement-chosen
*primary* shard plus the next ``k-1`` healthy shards in ring order —
always distinct shards, so any single-shard loss leaves at least
``k-1`` copies.  A write fans out to every holder inside **one**
multi-lane dispatch round (replica lanes overlap under the scheduler,
so ``replicas=2`` costs roughly one write of wall time, two of device
time).  The primary stays the routing entry in the key map, preserving
the :meth:`keys` order contract; replica holders live in a side map.

Reads degrade instead of failing.  A :class:`~repro.errors.
TransientIoError` is retried against the same shard up to
:attr:`~ShardedStore.MAX_READ_RETRIES` times with a capped exponential
backoff charged as modelled time (a scheduler stall under the overlap
model, device CPU time otherwise); a dead shard — marked by
:meth:`fail_shard`, an ``at_age`` loss clause firing, or the device
raising :class:`~repro.errors.ShardLostError` — fails the read over to
the next surviving holder.  Every skip/abandonment counts as a
``failover``, every re-issue as a ``retry``, and every read served by a
non-primary holder as a ``degraded_read`` (surfaced through
:class:`~repro.backends.base.StoreStats`).  Only when *no* holder of a
key survives does the composite raise
:class:`~repro.errors.ShardUnavailableError` — degradation is per-key:
keys with surviving replicas stay readable and writable (writes simply
skip dead holders, leaving the key under-replicated until rebuild).

:meth:`rebuild` restores redundancy: it walks the key map, re-copies
every under-replicated object from its first surviving holder onto the
next healthy shards (ring order, never a shard that already holds a
copy), and re-routes dead holders out of the maps.  Copies ride the
normal two-lane dispatch rounds — rebuild traffic contends with
foreground I/O on the same devices — and a ``rebuild_rate=R`` throttle
models a background task running at duty cycle ``R``: after each copy
the pass stalls ``copy_time * (1-R)/R`` of wall time, so a gentler
rebuild takes proportionally longer without occupying the devices.
Rebuild is crash-safe and idempotent: routing is only updated after a
copy completes, a leftover copy from a crashed pass is deleted and
re-copied (never adopted — it may be torn), and a second pass over a
healthy store does nothing.
"""

from __future__ import annotations

import contextlib
import zlib
from collections.abc import Sequence
from dataclasses import dataclass

from repro.alloc.extent import Extent
from repro.backends.base import ObjectMeta, ObjectStore, StoreStats
from repro.backends.registry import register_backend
from repro.backends.spec import PLACEMENTS, QUEUE_KINDS, StoreSpec
from repro.disk.device import BlockDevice
from repro.disk.faults import FaultProfile
from repro.disk.schedule import ShardScheduler
from repro.errors import (ConfigError, ObjectNotFoundError, ShardLostError,
                          ShardUnavailableError, TransientIoError)
from repro.units import MB

#: Supported :meth:`ShardedStore.rebalance` modes.
REBALANCE_MODES = ("even", "placement")


@dataclass(frozen=True)
class RebalanceReport:
    """What one :meth:`ShardedStore.rebalance` call did."""

    mode: str
    moved_objects: int
    moved_bytes: int
    #: max/min per-shard occupancy before and after the migration.
    skew_before: float
    skew_after: float
    #: Device seconds spent copying, and throttle stall wall seconds.
    copy_device_s: float = 0.0
    stall_s: float = 0.0


@dataclass(frozen=True)
class RebuildReport:
    """What one :meth:`ShardedStore.rebuild` pass did."""

    #: Keys walked / re-replicated / re-replicated bytes.
    examined: int
    rebuilt_objects: int
    rebuilt_bytes: int
    #: Keys whose every holder is dead — data gone, nothing to copy.
    unreachable: int
    #: Keys still short of full redundancy after the pass (only nonzero
    #: when ``max_objects`` stopped it early or shards ran out).
    under_replicated_after: int
    #: Device seconds spent copying, and throttle stall wall seconds.
    copy_device_s: float
    stall_s: float


class ShardedStore:
    """Stripe keys over N inner object stores."""

    #: Bounded retry for transient read faults (re-issues per holder).
    MAX_READ_RETRIES = 3
    #: Capped exponential backoff charged per retry as modelled time.
    BACKOFF_BASE_S = 0.002
    BACKOFF_CAP_S = 0.016

    def __init__(self, shards: Sequence[ObjectStore], *,
                 placement: str = "hash",
                 band_bytes: int = 1 * MB,
                 overlap: bool = False,
                 parallelism: int = 0,
                 dispatch_overhead_s: float = 0.0,
                 replicas: int = 1,
                 faults: FaultProfile | None = None,
                 rebuild_rate: float = 1.0,
                 rebalance_rate: float = 1.0,
                 checkpoint_rate: float = 0.0,
                 queue: str = "round",
                 queue_depth: int = 64,
                 arrival: str = "closed") -> None:
        if len(shards) < 2:
            raise ConfigError("a sharded store needs at least two shards")
        if placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {placement!r}; choose from {PLACEMENTS}"
            )
        if band_bytes <= 0:
            raise ConfigError("band_bytes must be positive")
        if not 1 <= replicas <= len(shards):
            raise ConfigError(
                f"replicas must be in [1, {len(shards)}], got {replicas}"
            )
        if not 0.0 < rebuild_rate <= 1.0:
            raise ConfigError(
                f"rebuild_rate must be in (0, 1], got {rebuild_rate}"
            )
        if not 0.0 < rebalance_rate <= 1.0:
            raise ConfigError(
                f"rebalance_rate must be in (0, 1], got {rebalance_rate}"
            )
        if not 0.0 <= checkpoint_rate <= 1.0:
            raise ConfigError(
                f"checkpoint_rate must be in [0, 1], got {checkpoint_rate}"
            )
        self.shards = list(shards)
        self.placement = placement
        self.band_bytes = band_bytes
        self.replicas = replicas
        self.fault_profile = faults
        self.rebuild_rate = rebuild_rate
        self.rebalance_rate = rebalance_rate
        self.checkpoint_rate = checkpoint_rate
        inner = {s.name for s in self.shards}
        inner_name = inner.pop() if len(inner) == 1 else "mixed"
        self.name = f"sharded[{len(self.shards)}x{inner_name}]"
        #: key -> primary shard index; insertion order IS the composite
        #: key order.
        self._shard_of: dict[str, int] = {}
        #: key -> non-primary holder indices (absent when replicas == 1).
        self._replica_of: dict[str, tuple[int, ...]] = {}
        #: Permanently lost shard indices.
        self._dead_shards: set[int] = set()
        self._rr_next = 0
        if queue not in QUEUE_KINDS:
            raise ConfigError(
                f"unknown queue model {queue!r}; choose from {QUEUE_KINDS}"
            )
        if queue == "event" and not overlap:
            raise ConfigError(
                "queue=event needs overlap=true (the event queue "
                "simulates the overlap scheduler's per-shard lanes)"
            )
        #: Overlap scheduler (None = historical summed-time model).
        #: ``queue=event`` swaps in the event-driven simulator, which
        #: adds per-request latency on top of the same interface.
        if not overlap:
            self.scheduler = None
        elif queue == "event":
            from repro.disk.events import EventScheduler

            self.scheduler = EventScheduler(
                len(self.shards),
                parallelism=parallelism,
                dispatch_overhead_s=dispatch_overhead_s,
                depth=queue_depth,
                arrival=arrival,
            )
        else:
            self.scheduler = ShardScheduler(
                parallelism=parallelism,
                dispatch_overhead_s=dispatch_overhead_s,
            )
        #: Per-shard device lists, cached: lane time deltas are read on
        #: every dispatch round and the lists never change.
        self._lane_devices = [list(s.devices()) for s in self.shards]
        self.migrated_objects = 0
        self.migrated_bytes = 0
        self.degraded_reads = 0
        self.retries = 0
        self.failovers = 0
        self.rebuilt_objects = 0
        self.rebuilt_bytes = 0
        # Loss clauses without an age trigger fire at construction.
        self.apply_age_faults(None)

    # ------------------------------------------------------------------
    # Dispatch rounds (overlap model)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _dispatch(self, indices: Sequence[int], *,
                  background: bool = False):
        """One scheduler round over the given shard lanes.

        Captures each involved shard's device-clock delta across the
        wrapped operation and records the round's makespan; a no-op
        when the overlap model is off.  ``background`` routes the
        round down the scheduler's background lane (maintenance I/O:
        migration copies, checkpoint write-back) so it shares the
        devices without impersonating foreground arrivals.
        """
        sched = self.scheduler
        if sched is None:
            yield
            return
        lanes = [self._lane_devices[i] for i in indices]
        before = [sum(d.clock_s for d in devs) for devs in lanes]
        try:
            yield
        finally:
            sched.record_round([
                sum(d.clock_s for d in devs) - b
                for devs, b in zip(lanes, before)
            ], indices=tuple(indices), background=background)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, key: str, size: int) -> int:
        n = len(self.shards)
        if self.placement == "hash":
            return zlib.crc32(key.encode("utf-8")) % n
        if self.placement == "round_robin":
            index = self._rr_next % n
            self._rr_next += 1
            return index
        # size_banded: bands double from band_bytes; the last shard
        # takes everything beyond the top band.
        band = 0
        threshold = self.band_bytes
        while size > threshold and band < n - 1:
            band += 1
            threshold *= 2
        return band

    def shard_for(self, key: str) -> int:
        """Index of the primary shard of ``key`` (raises when absent)."""
        try:
            return self._shard_of[key]
        except KeyError:
            raise ObjectNotFoundError(f"no object {key!r}") from None

    def holders_of(self, key: str) -> tuple[int, ...]:
        """Every shard holding a copy of ``key``, primary first."""
        return (self.shard_for(key), *self._replica_of.get(key, ()))

    @property
    def dead_shards(self) -> tuple[int, ...]:
        """Permanently lost shard indices, ascending."""
        return tuple(sorted(self._dead_shards))

    def _place_live(self, key: str, size: int) -> int:
        """Placement-chosen shard, advanced in ring order past the dead."""
        index = self._place(key, size)
        if not self._dead_shards:
            return index
        n = len(self.shards)
        for j in range(n):
            candidate = (index + j) % n
            if candidate not in self._dead_shards:
                return candidate
        raise ShardUnavailableError("no healthy shard to place on")

    def _replica_targets(self, primary: int) -> list[int]:
        """Next ``replicas - 1`` healthy shards after the primary.

        Ring order keeps the holder set deterministic; when fewer
        healthy shards remain, the object starts under-replicated and
        :meth:`rebuild` cannot improve on it until shards are added.
        """
        targets: list[int] = []
        if self.replicas <= 1:
            return targets
        n = len(self.shards)
        for j in range(1, n):
            candidate = (primary + j) % n
            if candidate in self._dead_shards:
                continue
            targets.append(candidate)
            if len(targets) == self.replicas - 1:
                break
        return targets

    def _charge_stall(self, index: int, seconds: float) -> None:
        """Charge host-side waiting (backoff, throttle) as modelled time.

        Under the overlap model the devices are genuinely idle while we
        wait, so the stall is pure wall time on the scheduler; without
        one, it lands as CPU time on the shard's device stats so the
        summed model sees it too.
        """
        if seconds <= 0.0:
            return
        if self.scheduler is not None:
            self.scheduler.record_stall(seconds)
        else:
            devs = self._lane_devices[index]
            if devs:
                devs[0].stats.record_cpu(seconds)

    # ------------------------------------------------------------------
    # ObjectStore interface
    # ------------------------------------------------------------------
    def put(self, key: str, *, size: int | None = None,
            data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        # A duplicate put must fail with the inner backend's error, so
        # route it to the owning shard rather than re-placing.
        index = self._shard_of.get(key)
        if index is not None:
            targets = [index]
        else:
            primary = self._place_live(key, total)
            targets = [primary, *self._replica_targets(primary)]
        # The write fans out to every holder inside one dispatch round,
        # so replica lanes overlap under the scheduler.
        with self._dispatch(tuple(targets)):
            for i in targets:
                if data is not None:
                    self.shards[i].put(key, data=data)
                else:
                    self.shards[i].put(key, size=total)
        if index is None:
            self._shard_of[key] = targets[0]
            if len(targets) > 1:
                self._replica_of[key] = tuple(targets[1:])

    def get(self, key: str, offset: int = 0,
            length: int | None = None) -> bytes | None:
        holders = self.holders_of(key)
        primary = holders[0]
        for index in holders:
            if index in self._dead_shards:
                self.failovers += 1
                continue
            attempt = 0
            while True:
                try:
                    with self._dispatch((index,)):
                        value = self.shards[index].get(key, offset, length)
                except TransientIoError:
                    attempt += 1
                    if attempt > self.MAX_READ_RETRIES:
                        self.failovers += 1
                        break  # give this holder up, try the next
                    self.retries += 1
                    self._charge_stall(index, min(
                        self.BACKOFF_CAP_S,
                        self.BACKOFF_BASE_S * (2 ** (attempt - 1))))
                    continue
                except ShardLostError:
                    # The device knows before we do; remember it.
                    self._dead_shards.add(index)
                    self.failovers += 1
                    break
                if index != primary:
                    self.degraded_reads += 1
                return value
        raise ShardUnavailableError(f"no surviving replica of {key!r}")

    def overwrite(self, key: str, *, size: int | None = None,
                  data: bytes | None = None) -> None:
        holders = self.holders_of(key)
        live = [i for i in holders if i not in self._dead_shards]
        if not live:
            raise ShardUnavailableError(f"no surviving replica of {key!r}")
        # Dead holders are skipped, not retried: the key runs
        # under-replicated (and its dead copy stale) until rebuild().
        with self._dispatch(tuple(live)):
            for i in live:
                if data is not None:
                    self.shards[i].overwrite(key, data=data)
                else:
                    self.shards[i].overwrite(key, size=size)

    def delete(self, key: str) -> None:
        holders = self.holders_of(key)
        live = [i for i in holders if i not in self._dead_shards]
        with self._dispatch(tuple(live)):
            for i in live:
                self.shards[i].delete(key)
        # Copies on dead shards died with their devices; dropping the
        # catalog entry is all that is left to do.
        del self._shard_of[key]
        self._replica_of.pop(key, None)

    def exists(self, key: str) -> bool:
        return key in self._shard_of

    def meta(self, key: str) -> ObjectMeta:
        for index in self.holders_of(key):
            if index not in self._dead_shards:
                return self.shards[index].meta(key)
        raise ShardUnavailableError(f"no surviving replica of {key!r}")

    def keys(self) -> list[str]:
        return list(self._shard_of)

    def read_many(self, keys: list[str]) -> list[bytes | None]:
        by_shard: dict[int, list[tuple[int, str]]] = {}
        degraded: list[int] = []
        results: list[bytes | None] = [None] * len(keys)
        for pos, key in enumerate(keys):
            index = self.shard_for(key)
            if index in self._dead_shards:
                # Failover requests are not batched: each degraded key
                # takes the per-key retry/failover path below.
                degraded.append(pos)
            else:
                by_shard.setdefault(index, []).append((pos, key))
        deferred: list[int] = []
        # One fan-out = one dispatch round: every touched shard serves
        # its sub-sweep on its own devices, so the lanes overlap.
        with self._dispatch(tuple(by_shard)):
            for index, members in by_shard.items():
                try:
                    shard_results = self.shards[index].read_many(
                        [key for _, key in members]
                    )
                except TransientIoError:
                    # The whole sub-sweep failed; re-issue its keys
                    # through the per-key path (one counted retry).
                    self.retries += 1
                    deferred.extend(pos for pos, _ in members)
                    continue
                except ShardLostError:
                    self._dead_shards.add(index)
                    deferred.extend(pos for pos, _ in members)
                    continue
                for (pos, _), value in zip(members, shard_results):
                    results[pos] = value
        for pos in degraded:
            results[pos] = self.get(keys[pos])
        for pos in deferred:
            results[pos] = self.get(keys[pos])
        return results

    def object_extents(self, key: str) -> list[Extent]:
        for index in self.holders_of(key):
            if index not in self._dead_shards:
                return self.shards[index].object_extents(key)
        raise ShardUnavailableError(f"no surviving replica of {key!r}")

    def devices(self) -> list[BlockDevice]:
        out: list[BlockDevice] = []
        for shard in self.shards:
            out.extend(shard.devices())
        return out

    def free_bytes(self) -> int:
        return sum(shard.free_bytes() for shard in self.shards)

    def store_stats(self) -> StoreStats:
        # ``objects`` counts *logical* objects (the catalog); byte and
        # capacity fields stay physical sums, so with replication
        # ``live_bytes`` is roughly ``replicas ×`` the logical volume.
        totals = StoreStats(objects=len(self._shard_of), live_bytes=0,
                            free_bytes=0, capacity=0,
                            migrated_objects=self.migrated_objects,
                            migrated_bytes=self.migrated_bytes,
                            degraded_reads=self.degraded_reads,
                            retries=self.retries,
                            failovers=self.failovers,
                            rebuilt_objects=self.rebuilt_objects,
                            rebuilt_bytes=self.rebuilt_bytes)
        for stats in self.shard_stats():
            totals.live_bytes += stats.live_bytes
            totals.free_bytes += stats.free_bytes
            totals.capacity += stats.capacity
        return totals

    # ------------------------------------------------------------------
    # Faults, failover bookkeeping, and rebuild
    # ------------------------------------------------------------------
    def fail_shard(self, index: int) -> None:
        """Permanently kill one shard (its devices raise from now on)."""
        if not 0 <= index < len(self.shards):
            raise ConfigError(
                f"shard index {index} out of range [0, {len(self.shards)})")
        if index in self._dead_shards:
            return
        self._dead_shards.add(index)
        for dev in self._lane_devices[index]:
            mark = getattr(dev, "mark_lost", None)
            if mark is not None:
                mark()

    def apply_age_faults(self, age: float | None) -> list[int]:
        """Fire the fault profile's due ``loss`` clauses; returns them.

        ``age=None`` fires only untimed clauses (construction-time
        losses); otherwise every not-yet-fired clause with
        ``at_age <= age`` kills its shard.  The experiment runner calls
        this once per sampled age.
        """
        if self.fault_profile is None:
            return []
        fired: list[int] = []
        for clause in self.fault_profile.losses:
            if clause.shard in self._dead_shards:
                continue
            due = (clause.at_age is None
                   or (age is not None and age >= clause.at_age))
            if due:
                self.fail_shard(clause.shard)
                fired.append(clause.shard)
        return fired

    def under_replicated(self) -> list[str]:
        """Keys with fewer live copies than the store can hold now."""
        healthy = len(self.shards) - len(self._dead_shards)
        want = min(self.replicas, healthy)
        dead = self._dead_shards
        out = []
        for key in self._shard_of:
            live = sum(1 for i in self.holders_of(key) if i not in dead)
            if live < want:
                out.append(key)
        return out

    def rebuild(self, *, rate: float | None = None,
                max_objects: int | None = None) -> RebuildReport:
        """Re-replicate under-replicated objects onto healthy shards.

        Walks the catalog in key order; every key short of
        ``min(replicas, healthy shards)`` live copies is copied from
        its first surviving holder onto the next healthy shards in ring
        order (never one that already holds it), then re-routed so dead
        holders drop out of the maps.  ``rate`` (default the store's
        ``rebuild_rate``) throttles the pass as a duty cycle — see the
        module docstring — and ``max_objects`` bounds one invocation so
        callers can interleave rebuild slices with foreground work.

        Safe to crash and re-run: routing updates only follow completed
        copies, and a leftover target copy is deleted and re-copied
        rather than adopted (it may be torn), so replicas are neither
        lost nor double-counted across a crash.
        """
        rate = self.rebuild_rate if rate is None else rate
        if not 0.0 < rate <= 1.0:
            raise ConfigError(f"rebuild rate must be in (0, 1], got {rate}")
        n = len(self.shards)
        dead = self._dead_shards
        healthy = n - len(dead)
        want = min(self.replicas, healthy)
        examined = rebuilt = rebuilt_bytes = unreachable = 0
        copy_s = stall_s = 0.0
        stopped = False
        for key in list(self._shard_of):
            if max_objects is not None and rebuilt >= max_objects:
                stopped = True
                break
            examined += 1
            holders = self.holders_of(key)
            live = [i for i in holders if i not in dead]
            if not live:
                unreachable += 1
                continue
            if len(live) == len(holders) and len(live) >= want:
                continue
            src = live[0]
            size = self.shards[src].meta(key).size
            copied = False
            for j in range(1, n):
                if len(live) >= want:
                    break
                dst = (src + j) % n
                if dst in dead or dst in live:
                    continue
                spent = self._rebuild_copy(key, size, src, dst)
                copy_s += spent
                if rate < 1.0:
                    pause = spent * (1.0 - rate) / rate
                    self._charge_stall(dst, pause)
                    stall_s += pause
                live.append(dst)
                copied = True
            # Re-route: promote the first live holder to primary (a
            # value update, preserving keys() order) and drop dead ones.
            self._shard_of[key] = live[0]
            if len(live) > 1:
                self._replica_of[key] = tuple(live[1:])
            else:
                self._replica_of.pop(key, None)
            if copied:
                rebuilt += 1
                rebuilt_bytes += size
        self.rebuilt_objects += rebuilt
        self.rebuilt_bytes += rebuilt_bytes
        return RebuildReport(
            examined=examined,
            rebuilt_objects=rebuilt,
            rebuilt_bytes=rebuilt_bytes,
            unreachable=unreachable,
            under_replicated_after=(
                len(self.under_replicated()) if stopped else 0),
            copy_device_s=copy_s,
            stall_s=stall_s,
        )

    def _rebuild_copy(self, key: str, size: int, src_index: int,
                      dst_index: int) -> float:
        """One re-replication copy; returns its device seconds."""
        src = self.shards[src_index]
        dst = self.shards[dst_index]
        lanes = self._lane_devices[src_index] + self._lane_devices[dst_index]
        before = sum(d.clock_s for d in lanes)
        with self._dispatch((src_index, dst_index), background=True):
            data = src.get(key)
            if dst.exists(key):
                # Leftover from a crashed pass: replace, never adopt.
                dst.delete(key)
            if data is not None:
                dst.put(key, data=data)
            else:
                dst.put(key, size=size)
        return sum(d.clock_s for d in lanes) - before

    # ------------------------------------------------------------------
    # Rebalancing / migration
    # ------------------------------------------------------------------
    def occupancy_skew(self) -> float:
        """max/min per-shard occupancy (``inf`` when a shard is empty
        while another holds data; 1.0 for a perfectly even or idle
        store)."""
        occupancies = [stats.occupancy for stats in self.shard_stats()]
        hi, lo = max(occupancies), min(occupancies)
        if lo <= 0.0:
            return float("inf") if hi > 0.0 else 1.0
        return hi / lo

    def rebalance(self, *, mode: str = "even", on_move=None,
                  rate: float | None = None) -> RebalanceReport:
        """Migrate objects between shards; returns what moved.

        ``mode="even"`` greedily narrows the live-byte spread: move the
        object from the fullest shard whose size best splits the gap to
        the emptiest shard, until no single move improves the spread.
        ``mode="placement"`` re-applies the placement policy to every
        key in composite key order and moves whatever landed elsewhere
        (``round_robin`` redeals the rotation from shard 0).

        Every migration copies to the target shard *before* deleting
        from the source and only then updates the routing map, so
        concurrent readers — including an ``on_move(key, src, dst)``
        callback fired mid-migration — always find the object.  All
        migration I/O goes through the shards' ordinary ``get``/``put``
        paths (and, under the overlap model, one two-lane dispatch
        round per object).  ``rate`` (default the store's
        ``rebalance_rate``) throttles the pass as a duty cycle: after
        each migrated object the pass stalls ``copy_time * (1-R)/R`` of
        wall time, leaving the devices idle for foreground traffic.
        """
        if mode not in REBALANCE_MODES:
            raise ConfigError(
                f"unknown rebalance mode {mode!r}; "
                f"choose from {REBALANCE_MODES}"
            )
        rate = self.rebalance_rate if rate is None else rate
        if not 0.0 < rate <= 1.0:
            raise ConfigError(
                f"rebalance rate must be in (0, 1], got {rate}"
            )
        if self._dead_shards:
            raise ConfigError(
                f"cannot rebalance with dead shards {self.dead_shards}; "
                "run rebuild() to restore redundancy first"
            )
        skew_before = self.occupancy_skew()
        sizes = {key: self.shards[index].meta(key).size
                 for key, index in self._shard_of.items()}
        if mode == "placement":
            moves = self._plan_placement(sizes)
        else:
            moves = self._plan_even(sizes)
        if self.replicas > 1:
            # Never migrate a primary onto a shard that already holds
            # one of its replicas (the put would collide); rebalancing
            # considers primary copies only.
            moves = [(key, src, dst) for key, src, dst in moves
                     if dst not in self._replica_of.get(key, ())]
        moved_bytes = 0
        copy_s = stall_s = 0.0
        for key, src, dst in moves:
            size, spent = self._migrate(key, sizes[key], src, dst,
                                        on_move)
            moved_bytes += size
            copy_s += spent
            if rate < 1.0:
                pause = spent * (1.0 - rate) / rate
                self._charge_stall(dst, pause)
                stall_s += pause
        return RebalanceReport(
            mode=mode,
            moved_objects=len(moves),
            moved_bytes=moved_bytes,
            skew_before=skew_before,
            skew_after=self.occupancy_skew(),
            copy_device_s=copy_s,
            stall_s=stall_s,
        )

    def _plan_placement(self, sizes: dict[str, int]) -> list:
        """Moves that restore the placement policy's shard choice."""
        moves = []
        rr = 0
        for key, current in self._shard_of.items():
            if self.placement == "round_robin":
                desired = rr % len(self.shards)
                rr += 1
            else:
                desired = self._place(key, sizes[key])
            if desired != current:
                moves.append((key, current, desired))
        if self.placement == "round_robin":
            self._rr_next = rr
        return moves

    def _plan_even(self, sizes: dict[str, int]) -> list:
        """Greedy spread-narrowing moves over live bytes.

        Each step moves one object from the fullest to the emptiest
        shard, picking the size closest to half their gap (the move
        that most evens the pair); a move is only taken when it
        strictly narrows the gap, so the plan terminates and never
        oscillates.
        """
        live = [0] * len(self.shards)
        members: list[dict[str, int]] = [{} for _ in self.shards]
        for key, index in self._shard_of.items():
            live[index] += sizes[key]
            members[index][key] = sizes[key]
        moves = []
        for _ in range(2 * len(sizes) + len(self.shards)):
            src = max(range(len(live)), key=live.__getitem__)
            dst = min(range(len(live)), key=live.__getitem__)
            gap = live[src] - live[dst]
            if gap <= 0:
                break
            best = min(
                (key for key, size in members[src].items()
                 if 0 < size < gap),
                key=lambda key: abs(gap - 2 * members[src][key]),
                default=None,
            )
            if best is None:
                break
            size = members[src].pop(best)
            members[dst][best] = size
            live[src] -= size
            live[dst] += size
            moves.append((best, src, dst))
        return moves

    def _migrate(self, key: str, size: int, src_index: int,
                 dst_index: int, on_move) -> tuple[int, float]:
        """Copy ``key`` to its new shard, re-route, then delete.

        Returns ``(bytes moved, device seconds spent)``; the latter
        feeds the duty-cycle throttle, measured the same way
        :meth:`_rebuild_copy` measures its copies.
        """
        src = self.shards[src_index]
        dst = self.shards[dst_index]
        lanes = self._lane_devices[src_index] + self._lane_devices[dst_index]
        before = sum(d.clock_s for d in lanes)
        with self._dispatch((src_index, dst_index), background=True):
            data = src.get(key)
            if data is not None:
                dst.put(key, data=data)
            else:
                dst.put(key, size=size)
            # Routing flips only once the copy is complete; a dict
            # value update keeps the key's position, preserving the
            # keys() insertion-order contract.
            self._shard_of[key] = dst_index
            if on_move is not None:
                on_move(key, src_index, dst_index)
            src.delete(key)
        self.migrated_objects += 1
        self.migrated_bytes += size
        return size, sum(d.clock_s for d in lanes) - before

    # ------------------------------------------------------------------
    # Charged background writes
    # ------------------------------------------------------------------
    def background_write(self, nbytes: int, *,
                         rate: float | None = None) -> float:
        """Charge background write traffic through the normal lanes.

        ``nbytes`` splits evenly over the live shards; each lane charges
        one sequential streaming write inside a single multi-lane
        dispatch round, so under the overlap model the traffic occupies
        the same queues as foreground requests.  ``rate`` (default the
        store's ``checkpoint_rate``) is the duty cycle: the measured
        device time is followed by a ``spent * (1-R)/R`` stall.  A rate
        of 0 (or nothing to write) charges nothing and returns 0.0;
        returns the device seconds spent otherwise.
        """
        rate = self.checkpoint_rate if rate is None else rate
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(
                f"background write rate must be in [0, 1], got {rate}"
            )
        if nbytes <= 0 or rate <= 0.0:
            return 0.0
        live = [i for i in range(len(self.shards))
                if i not in self._dead_shards]
        if not live:
            return 0.0
        share = nbytes // len(live)
        remainder = nbytes - share * len(live)
        lanes = [d for i in live for d in self._lane_devices[i]]
        before = sum(d.clock_s for d in lanes)
        with self._dispatch(tuple(live), background=True):
            for slot, index in enumerate(live):
                chunk = share + (1 if slot < remainder else 0)
                devs = self._lane_devices[index]
                if chunk > 0 and devs:
                    devs[0].charge_sequential_write(chunk)
        spent = sum(d.clock_s for d in lanes) - before
        if rate < 1.0:
            pause = spent * (1.0 - rate) / rate
            self._charge_stall(live[0], pause)
        return spent

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_stats(self) -> list[StoreStats]:
        """Per-shard :class:`StoreStats`, for balance reporting."""
        return [shard.store_stats() for shard in self.shards]


@register_backend(
    "sharded",
    description="composite: stripes keys over N shards of an inner "
                "backend (inner=<name>, default filesystem)",
    options={"inner": str},
    composite=True,
)
def _sharded_from_spec(spec: StoreSpec, device: BlockDevice) -> ObjectStore:
    raise ConfigError(
        "composite specs are desugared by build_store; this factory "
        "is registered for listing and option declaration only"
    )
