"""Multi-volume composite: :class:`ShardedStore`.

The ROADMAP's north star asks for aggregate multi-device throughput;
related work (SEARS, arXiv:1508.01182) gets there by spreading objects
across many small stores instead of scaling one.  ``ShardedStore`` is
that composite for this codebase: an :class:`ObjectStore` that stripes
keys over N inner stores (each with its own device, free-space index,
and cleaner), so every driver written against the protocol — the
experiment runner, :class:`LargeObjectRepository`, the fragmentation
analyzers — runs unchanged over a multi-volume layout.

Placement policies (``spec.placement``):

* ``hash`` — stable CRC32 of the key; spreads any key population
  uniformly and needs no state to route reads.
* ``round_robin`` — strict rotation in put order; the best spread for
  bulk loads of same-sized objects.
* ``size_banded`` — shard index by size band (geometric bands doubling
  from ``band_bytes``), segregating small from large objects the way
  mixed-workload deployments do to keep small-object churn from
  fragmenting large-object volumes.

Placement is **sticky**: an object stays on the shard that first stored
it; ``overwrite`` never migrates (a safe write that hopped shards would
charge cross-volume copies the paper's workload does not contain).
``delete`` followed by a fresh ``put`` re-places, and moves the key to
the end of :meth:`keys` — exactly the protocol's insertion-order
contract.

Stats aggregate across shards: :meth:`store_stats` sums the per-shard
:class:`StoreStats` fields, :meth:`devices` concatenates every shard's
devices (so measurement windows span all volumes), and
:meth:`object_extents` reports the owning shard's extents (offsets are
per-shard device addresses; fragment counts coalesce within one object
and therefore within one shard, so reports stay exact).
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence

from repro.alloc.extent import Extent
from repro.backends.base import ObjectMeta, ObjectStore, StoreStats
from repro.backends.registry import register_backend
from repro.backends.spec import PLACEMENTS, StoreSpec
from repro.disk.device import BlockDevice
from repro.errors import ConfigError, ObjectNotFoundError
from repro.units import MB


class ShardedStore:
    """Stripe keys over N inner object stores."""

    def __init__(self, shards: Sequence[ObjectStore], *,
                 placement: str = "hash",
                 band_bytes: int = 1 * MB) -> None:
        if len(shards) < 2:
            raise ConfigError("a sharded store needs at least two shards")
        if placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {placement!r}; choose from {PLACEMENTS}"
            )
        if band_bytes <= 0:
            raise ConfigError("band_bytes must be positive")
        self.shards = list(shards)
        self.placement = placement
        self.band_bytes = band_bytes
        inner = {s.name for s in self.shards}
        inner_name = inner.pop() if len(inner) == 1 else "mixed"
        self.name = f"sharded[{len(self.shards)}x{inner_name}]"
        #: key -> shard index; insertion order IS the composite key order.
        self._shard_of: dict[str, int] = {}
        self._rr_next = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _place(self, key: str, size: int) -> int:
        n = len(self.shards)
        if self.placement == "hash":
            return zlib.crc32(key.encode("utf-8")) % n
        if self.placement == "round_robin":
            index = self._rr_next % n
            self._rr_next += 1
            return index
        # size_banded: bands double from band_bytes; the last shard
        # takes everything beyond the top band.
        band = 0
        threshold = self.band_bytes
        while size > threshold and band < n - 1:
            band += 1
            threshold *= 2
        return band

    def shard_for(self, key: str) -> int:
        """Index of the shard holding ``key`` (raises when absent)."""
        try:
            return self._shard_of[key]
        except KeyError:
            raise ObjectNotFoundError(f"no object {key!r}") from None

    # ------------------------------------------------------------------
    # ObjectStore interface
    # ------------------------------------------------------------------
    def put(self, key: str, *, size: int | None = None,
            data: bytes | None = None) -> None:
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        # A duplicate put must fail with the inner backend's error, so
        # route it to the owning shard rather than re-placing.
        index = self._shard_of.get(key)
        if index is None:
            index = self._place(key, total)
        if data is not None:
            self.shards[index].put(key, data=data)
        else:
            self.shards[index].put(key, size=total)
        self._shard_of[key] = index

    def get(self, key: str, offset: int = 0,
            length: int | None = None) -> bytes | None:
        return self.shards[self.shard_for(key)].get(key, offset, length)

    def overwrite(self, key: str, *, size: int | None = None,
                  data: bytes | None = None) -> None:
        shard = self.shards[self.shard_for(key)]
        if data is not None:
            shard.overwrite(key, data=data)
        else:
            shard.overwrite(key, size=size)

    def delete(self, key: str) -> None:
        self.shards[self.shard_for(key)].delete(key)
        del self._shard_of[key]

    def exists(self, key: str) -> bool:
        return key in self._shard_of

    def meta(self, key: str) -> ObjectMeta:
        return self.shards[self.shard_for(key)].meta(key)

    def keys(self) -> list[str]:
        return list(self._shard_of)

    def read_many(self, keys: list[str]) -> list[bytes | None]:
        by_shard: dict[int, list[tuple[int, str]]] = {}
        for pos, key in enumerate(keys):
            by_shard.setdefault(self.shard_for(key), []).append((pos, key))
        results: list[bytes | None] = [None] * len(keys)
        for index, members in by_shard.items():
            shard_results = self.shards[index].read_many(
                [key for _, key in members]
            )
            for (pos, _), value in zip(members, shard_results):
                results[pos] = value
        return results

    def object_extents(self, key: str) -> list[Extent]:
        return self.shards[self.shard_for(key)].object_extents(key)

    def devices(self) -> list[BlockDevice]:
        out: list[BlockDevice] = []
        for shard in self.shards:
            out.extend(shard.devices())
        return out

    def free_bytes(self) -> int:
        return sum(shard.free_bytes() for shard in self.shards)

    def store_stats(self) -> StoreStats:
        totals = StoreStats(objects=0, live_bytes=0, free_bytes=0,
                            capacity=0)
        for stats in self.shard_stats():
            totals.objects += stats.objects
            totals.live_bytes += stats.live_bytes
            totals.free_bytes += stats.free_bytes
            totals.capacity += stats.capacity
        return totals

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_stats(self) -> list[StoreStats]:
        """Per-shard :class:`StoreStats`, for balance reporting."""
        return [shard.store_stats() for shard in self.shards]


@register_backend(
    "sharded",
    description="composite: stripes keys over N shards of an inner "
                "backend (inner=<name>, default filesystem)",
    options={"inner": str},
    composite=True,
)
def _sharded_from_spec(spec: StoreSpec, device: BlockDevice) -> ObjectStore:
    raise ConfigError(
        "composite specs are desugared by build_store; this factory "
        "is registered for listing and option declaration only"
    )
