"""Declarative store construction: :class:`StoreSpec`.

The experiment driver used to special-case every backend (a hard-coded
``BACKENDS`` tuple, an if/elif chain in ``make_store``, and one-off
per-backend fields leaking into ``ExperimentConfig``).  A ``StoreSpec``
replaces all of that with one value: backend name, volume geometry,
typed per-backend options, a shared :class:`~repro.disk.policy.
DevicePolicy`, and an optional shard layout.  The registry
(:mod:`repro.backends.registry`) turns a spec into a live store;
nothing above the backends layer needs to import a backend class.

Specs have a flag-friendly text form, used by ``--store``::

    lfs
    lfs:reorder=clook,batch=16
    filesystem:index_kind=naive,size_hints=true
    gfs:chunk_size=8M,volume=512M,shards=4,placement=hash
    sharded:overlap=true,parallelism=4
    lfs:shards=4,overlap=true,batch=16,reorder=clook
    lfs:shards=4,overlap=true,queue=event,depth=64,arrival=poisson:rate=2e3

The keys ``volume``, ``write_request``, ``store_data``, ``reorder``,
``batch``, ``shards``, ``placement``, ``band_bytes``, ``overlap``,
``parallelism``, ``dispatch_overhead``, ``replicas``, ``faults``,
``rebuild_rate``, ``rebalance_rate``, ``checkpoint_rate``, ``queue``,
``depth``, and ``arrival`` set spec-level fields; every other key is a backend option, validated against the
backend's declared option set at build time.  ``faults`` takes a
fault-profile text (see :mod:`repro.disk.faults`) and ``arrival`` an
arrival-process text (see :mod:`repro.disk.events`); written inside a
``--store`` spec, use colons between clause parameters —
``faults=transient:rate=1e-4``, ``arrival=poisson:rate=2e3`` — since
commas separate spec options.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields as dataclass_fields, replace
from typing import Any, Mapping

from repro.disk.policy import DEFAULT_POLICY, REORDER_KINDS, DevicePolicy
from repro.errors import ConfigError
from repro.units import DEFAULT_WRITE_REQUEST, GB, parse_size

#: Placement policies the sharded composite understands.
PLACEMENTS = ("hash", "round_robin", "size_banded")

#: Queue models the sharded composite understands: ``round`` is the
#: PR 5 dispatch-round makespan, ``event`` the event-driven per-shard
#: FIFO simulator with per-request latency (see
#: :mod:`repro.disk.events`).
QUEUE_KINDS = ("round", "event")


def _parse_bool(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    text = str(value).strip().lower()
    if text in ("1", "true", "yes", "on"):
        return True
    if text in ("0", "false", "no", "off"):
        return False
    raise ConfigError(f"bad boolean {value!r}")


def _parse_bytes(value: Any) -> int:
    if isinstance(value, bool):
        raise ConfigError(f"bad size {value!r}")
    if isinstance(value, int):
        return value
    return parse_size(str(value))


def _parse_int(value: Any, key: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ConfigError(f"bad integer for {key}: {value!r}") from None


@dataclass(frozen=True)
class StoreSpec:
    """Everything needed to build one object store.

    ``options`` holds per-backend knobs (validated and type-converted by
    the registry); ``policy`` is the device submission policy every
    backend threads into :meth:`BlockDevice.submit`; ``shards > 1``
    wraps the backend in a :class:`~repro.backends.sharded.ShardedStore`
    striping over ``shards`` equal sub-volumes.
    """

    backend: str
    volume_bytes: int = 2 * GB
    write_request: int = DEFAULT_WRITE_REQUEST
    #: Keep written bytes on the device (marker analysis; test scale).
    store_data: bool = False
    policy: DevicePolicy = DEFAULT_POLICY
    #: Per-backend options as a normalized (name, value) tuple; pass a
    #: mapping, it is canonicalized (sorted by name) on construction.
    options: tuple[tuple[str, Any], ...] = field(default=())
    shards: int = 1
    placement: str = "hash"
    #: First size band for ``size_banded`` placement (bands double).
    band_bytes: int = 1024 * 1024
    #: Overlap-aware time model: shard device times within one dispatch
    #: round overlap (see :mod:`repro.disk.schedule`) instead of
    #: summing.  Only meaningful with ``shards > 1``.
    overlap: bool = False
    #: Lanes served concurrently per dispatch round (0 = one worker per
    #: shard lane; 1 reproduces the summed model exactly).
    parallelism: int = 0
    #: Fixed per-round dispatch overhead charged by the scheduler.
    dispatch_overhead_s: float = 0.0
    #: Copies per object (1 = no replication).  Requires ``shards >=
    #: replicas``; placement puts the primary plus ``replicas - 1``
    #: ring-order neighbours on distinct shards.
    replicas: int = 1
    #: Fault profile text (see :mod:`repro.disk.faults`); empty = none.
    faults: str = ""
    #: Default duty cycle for :meth:`ShardedStore.rebuild` (1.0 = flat
    #: out, 0.25 = rebuild occupies a quarter of wall time).
    rebuild_rate: float = 1.0
    #: Default duty cycle for :meth:`ShardedStore.rebalance` migration
    #: I/O (1.0 = flat out, throttle pauses below that).
    rebalance_rate: float = 1.0
    #: Duty cycle for charged checkpoint write-back
    #: (:meth:`ShardedStore.background_write`); 0.0 (the default) keeps
    #: checkpoint I/O uncharged, preserving the historical timeline.
    checkpoint_rate: float = 0.0
    #: Queue model for the overlap scheduler: ``round`` (makespan, the
    #: PR 5 model) or ``event`` (per-shard FIFO queues with
    #: per-request p50/p95/p99 latency).  ``event`` requires
    #: ``overlap=true``.
    queue: str = "round"
    #: Per-shard FIFO depth under ``queue=event`` (0 = unbounded; a
    #: full queue blocks the submitter until completions free space).
    queue_depth: int = 64
    #: Arrival process under ``queue=event`` (see
    #: :class:`~repro.disk.events.ArrivalSpec`): ``closed`` replays
    #: dispatch rounds, ``poisson:rate=...`` re-times requests onto an
    #: open-loop Poisson timeline.
    arrival: str = "closed"

    def __post_init__(self) -> None:
        if not self.backend:
            raise ConfigError("StoreSpec needs a backend name")
        if self.volume_bytes <= 0:
            raise ConfigError("volume_bytes must be positive")
        if self.write_request <= 0:
            raise ConfigError("write_request must be positive")
        if self.shards < 1:
            raise ConfigError("shards must be >= 1")
        if self.placement not in PLACEMENTS:
            raise ConfigError(
                f"unknown placement {self.placement!r}; "
                f"choose from {PLACEMENTS}"
            )
        if self.band_bytes <= 0:
            raise ConfigError("band_bytes must be positive")
        if self.parallelism < 0:
            raise ConfigError("parallelism must be >= 0 (0 = unbounded)")
        if not (math.isfinite(self.dispatch_overhead_s)
                and self.dispatch_overhead_s >= 0):
            raise ConfigError(
                "dispatch_overhead_s must be a finite value >= 0"
            )
        if self.replicas < 1:
            raise ConfigError("replicas must be >= 1")
        if not 0.0 < self.rebuild_rate <= 1.0:
            raise ConfigError("rebuild_rate must be in (0, 1]")
        if not 0.0 < self.rebalance_rate <= 1.0:
            raise ConfigError("rebalance_rate must be in (0, 1]")
        if not 0.0 <= self.checkpoint_rate <= 1.0:
            raise ConfigError(
                "checkpoint_rate must be in [0, 1] (0 = uncharged)"
            )
        if self.queue not in QUEUE_KINDS:
            raise ConfigError(
                f"unknown queue model {self.queue!r}; "
                f"choose from {QUEUE_KINDS}"
            )
        if self.queue_depth < 0:
            raise ConfigError(
                "queue depth must be >= 0 (0 = unbounded)"
            )
        opts = self.options
        if isinstance(opts, Mapping):
            opts = tuple(sorted(opts.items()))
        else:
            opts = tuple(sorted((str(k), v) for k, v in opts))
        names = [name for name, _ in opts]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate option in {names}")
        object.__setattr__(self, "options", opts)

    # ------------------------------------------------------------------
    # Options
    # ------------------------------------------------------------------
    def options_dict(self) -> dict[str, Any]:
        return dict(self.options)

    def option(self, name: str, default: Any = None) -> Any:
        for key, value in self.options:
            if key == name:
                return value
        return default

    def with_options(self, **updates: Any) -> "StoreSpec":
        """A copy with options merged in (``None`` removes a key)."""
        merged = self.options_dict()
        for key, value in updates.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        return replace(self, options=tuple(sorted(merged.items())))

    # ------------------------------------------------------------------
    # Shard layout
    # ------------------------------------------------------------------
    def shard_specs(self) -> list["StoreSpec"]:
        """The sub-specs a sharded composite builds its shards from.

        The volume splits evenly: N shards of ``volume_bytes // N`` keep
        aggregate capacity (and therefore occupancy at a given workload)
        comparable to the unsharded spec, so sharded-vs-single benches
        are apples to apples.
        """
        if self.shards <= 1:
            return [self]
        per_shard = self.volume_bytes // self.shards
        if per_shard <= 0:
            raise ConfigError(
                f"volume of {self.volume_bytes} bytes cannot split "
                f"into {self.shards} shards"
            )
        # Each shard sees only the device-level fault clauses that apply
        # to it (shard scope stripped, transient streams re-seeded per
        # shard); loss clauses stay with the composite, which resolves
        # them by killing whole shards.
        faults_of = [""] * self.shards
        if self.faults:
            from repro.disk.faults import FaultProfile

            profile = FaultProfile.parse(self.faults)
            faults_of = [profile.for_shard(i).text()
                         for i in range(self.shards)]
        # Overlap, replication, and the event queue are properties of
        # the composite's dispatch loop, not of the individual shards —
        # sub-specs must not re-trigger them.
        return [replace(self, shards=1, volume_bytes=per_shard,
                        faults=faults_of[i], **_COMPOSITE_RESETS)
                for i in range(self.shards)]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly form, recorded verbatim in run results."""
        return {
            "backend": self.backend,
            "volume_bytes": self.volume_bytes,
            "write_request": self.write_request,
            "store_data": self.store_data,
            "policy": self.policy.to_dict(),
            "options": {k: _jsonable(v) for k, v in self.options},
            "shards": self.shards,
            "placement": self.placement,
            "band_bytes": self.band_bytes,
            "overlap": self.overlap,
            "parallelism": self.parallelism,
            "dispatch_overhead_s": self.dispatch_overhead_s,
            "replicas": self.replicas,
            "faults": self.faults,
            "rebuild_rate": self.rebuild_rate,
            "rebalance_rate": self.rebalance_rate,
            "checkpoint_rate": self.checkpoint_rate,
            "queue": self.queue,
            "queue_depth": self.queue_depth,
            "arrival": self.arrival,
        }

    # ------------------------------------------------------------------
    # Text form
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str, *, default_backend: str | None = None,
              **defaults: Any) -> "StoreSpec":
        """Parse ``backend:key=val,...`` (see the module docstring).

        An empty backend part (``":reorder=clook"``) falls back to
        ``default_backend``, so figure benches can apply one ``--store``
        override across curves of different backends.  Keyword
        ``defaults`` fill spec fields the text does not set — the text
        always wins, so ``volume=8G`` in a spec survives a caller that
        passes its own ``volume_bytes`` (e.g. the CLI's ``--volume``
        default).
        """
        text = text.strip()
        backend, _, tail = text.partition(":")
        backend = backend.strip() or (default_backend or "")
        if not backend:
            raise ConfigError(f"store spec {text!r} names no backend")
        fields: dict[str, Any] = {"backend": backend}
        options: dict[str, Any] = {}
        batch_size: int | None = None
        reorder: str | None = None
        for item in filter(None, (p.strip() for p in tail.split(","))):
            key, eq, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not eq or not value:
                raise ConfigError(
                    f"bad store option {item!r}; expected key=value"
                )
            if key == "volume":
                fields["volume_bytes"] = _parse_bytes(value)
            elif key == "write_request":
                fields["write_request"] = _parse_bytes(value)
            elif key == "store_data":
                fields["store_data"] = _parse_bool(value)
            elif key == "reorder":
                if value not in REORDER_KINDS:
                    raise ConfigError(
                        f"unknown reorder {value!r}; "
                        f"choose from {REORDER_KINDS}"
                    )
                reorder = value
            elif key == "batch":
                batch_size = _parse_int(value, key)
            elif key == "shards":
                fields["shards"] = _parse_int(value, key)
            elif key == "placement":
                fields["placement"] = value
            elif key == "band_bytes":
                fields["band_bytes"] = _parse_bytes(value)
            elif key == "overlap":
                fields["overlap"] = _parse_bool(value)
            elif key == "parallelism":
                fields["parallelism"] = _parse_int(value, key)
            elif key == "dispatch_overhead":
                try:
                    fields["dispatch_overhead_s"] = float(value)
                except ValueError:
                    raise ConfigError(
                        f"bad dispatch_overhead {value!r}; expected "
                        "seconds as a float"
                    ) from None
            elif key == "replicas":
                fields["replicas"] = _parse_int(value, key)
            elif key == "faults":
                fields["faults"] = value
            elif key == "rebuild_rate":
                try:
                    fields["rebuild_rate"] = float(value)
                except ValueError:
                    raise ConfigError(
                        f"bad rebuild_rate {value!r}; expected a float "
                        "in (0, 1]"
                    ) from None
            elif key == "rebalance_rate":
                try:
                    fields["rebalance_rate"] = float(value)
                except ValueError:
                    raise ConfigError(
                        f"bad rebalance_rate {value!r}; expected a float "
                        "in (0, 1]"
                    ) from None
            elif key == "checkpoint_rate":
                try:
                    fields["checkpoint_rate"] = float(value)
                except ValueError:
                    raise ConfigError(
                        f"bad checkpoint_rate {value!r}; expected a float "
                        "in [0, 1]"
                    ) from None
            elif key == "queue":
                fields["queue"] = value
            elif key == "depth":
                fields["queue_depth"] = _parse_int(value, key)
            elif key == "arrival":
                fields["arrival"] = value
            else:
                options[key] = value
        if batch_size is not None or reorder is not None:
            fields["policy"] = DevicePolicy(
                batch_size=batch_size if batch_size is not None else 0,
                reorder=reorder or "none",
            )
        fields["options"] = options
        for key, value in defaults.items():
            fields.setdefault(key, value)
        return cls(**fields)


#: Fields a shard sub-spec resets to their declared defaults: the
#: composite's dispatch loop owns overlap, replication, and the event
#: queue, so sub-specs must not re-trigger them.  Resolved from the
#: dataclass so a changed default cannot drift from this reset site.
_COMPOSITE_RESETS = {
    f.name: f.default for f in dataclass_fields(StoreSpec)
    if f.name in ("overlap", "replicas", "queue", "queue_depth",
                  "arrival")
}


def _jsonable(value: Any) -> Any:
    """Options may hold config objects; record something serializable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    for attr in ("to_dict", "_asdict"):
        method = getattr(value, attr, None)
        if callable(method):
            return method()
    if hasattr(value, "__dataclass_fields__"):
        return {f: _jsonable(getattr(value, f))
                for f in value.__dataclass_fields__}
    return repr(value)
