"""Declarative multi-tenant scenarios (see :mod:`repro.scenario.spec`).

The paper's workload is one tenant doing uniform safe-write churn; a
production-scale store serves many tenants with skewed popularity,
bursty arrival rates, mixed object sizes, and TTL-driven churn.  This
package turns a spec text like ``cdn_churn:tenants=8,skew=1.1`` into an
interleaved per-tenant op stream against a shared store, with
per-tenant latency accounting and checkpointable state.
"""

from repro.scenario.engine import (
    ScenarioState,
    TenantState,
    scenario_bulk_load,
    scenario_step,
    scenario_to_age,
)
from repro.scenario.spec import (
    SCENARIO_PRESETS,
    ScenarioSpec,
    TenantProfile,
    scenario_names,
)

__all__ = [
    "SCENARIO_PRESETS",
    "ScenarioSpec",
    "ScenarioState",
    "TenantProfile",
    "TenantState",
    "scenario_bulk_load",
    "scenario_names",
    "scenario_step",
    "scenario_to_age",
]
