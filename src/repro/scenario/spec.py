"""Scenario specs: declarative multi-tenant workload composition.

A :class:`ScenarioSpec` follows the :class:`~repro.backends.spec.
StoreSpec` convention — a registry of named presets plus a
flag-friendly text form used by ``--scenario``::

    cdn_churn
    cdn_churn:tenants=8,skew=1.1,seed=7
    photo_sharing:tenants=12
    log_ingest:ttl=400,amplitude=0.8,period=300
    video_dvr:tenants=2

The part before ``:`` names a preset (photo sharing, video DVR, log
ingestion, CDN cache churn); the ``key=value`` tail overrides preset
knobs.  Recognized keys:

``tenants``
    Number of tenants sharing the store (>= 1).
``skew``
    Zipf exponent for *object* popularity within each tenant (0 =
    uniform; the paper's workload).  Tenant-level hotness is fixed by
    the preset (tenant i's op share falls off as a gentle Zipf).
``seed``
    Scenario substream salt, folded with the run seed so two scenarios
    in one experiment draw independent streams.
``ttl``
    Lifetime, in scenario ops, of objects created during the run
    (0 = no TTL churn).  Applies to the preset's creating tenants.
``amplitude`` / ``period``
    Diurnal/bursty arrival-rate modulation: the open-loop Poisson rate
    of a ``queue=event`` store is rescaled to ``base * (1 + amplitude *
    sin(2*pi*op/period))`` as the op stream advances (see
    :meth:`~repro.disk.events.EventScheduler.set_arrival`).  The same
    wave also modulates each tenant's op share, so closed-loop stores
    see the burst structure too.

Unknown presets and unknown keys are rejected with a
:class:`~repro.errors.ConfigError` — specs must round-trip exactly
(``ScenarioSpec.parse(s.text()) == s``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.workload import ConstantSize, SizeDistribution, UniformSize
from repro.errors import ConfigError
from repro.units import KB, MB

#: Parameter keys the spec grammar accepts (every preset understands
#: all of them; presets only differ in their defaults).
PARAM_KEYS = ("tenants", "skew", "seed", "ttl", "amplitude", "period")


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's traffic shape inside a scenario.

    ``read/overwrite/create`` fractions partition the tenant's ops and
    must sum to 1.  Creates insert fresh objects that expire after
    ``ttl_ops`` scenario ops (TTL churn); a creating tenant therefore
    needs ``ttl_ops > 0`` or its population would grow without bound.
    """

    name: str
    sizes: SizeDistribution
    #: Relative share of the interleaved op stream.
    weight: float = 1.0
    #: Relative share of the bulk-load bytes.
    share: float = 1.0
    read_fraction: float = 0.7
    overwrite_fraction: float = 0.3
    create_fraction: float = 0.0
    #: Zipf exponent over the tenant's objects (0 = uniform).
    zipf: float = 0.0
    #: Lifetime of created objects, in scenario ops (0 = immortal).
    ttl_ops: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant needs a name")
        if self.weight <= 0 or self.share <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: weight and share must be > 0"
            )
        total = (self.read_fraction + self.overwrite_fraction
                 + self.create_fraction)
        if (min(self.read_fraction, self.overwrite_fraction,
                self.create_fraction) < 0 or abs(total - 1.0) > 1e-9):
            raise ConfigError(
                f"tenant {self.name!r}: op fractions must be >= 0 and "
                f"sum to 1 (got {total:g})"
            )
        if self.zipf < 0:
            raise ConfigError(f"tenant {self.name!r}: zipf must be >= 0")
        if self.ttl_ops < 0:
            raise ConfigError(f"tenant {self.name!r}: ttl_ops must be >= 0")
        if self.create_fraction > 0 and self.ttl_ops <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: create_fraction > 0 needs "
                "ttl_ops > 0, or the population grows without bound"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "sizes": str(self.sizes),
            "weight": self.weight,
            "share": self.share,
            "read_fraction": self.read_fraction,
            "overwrite_fraction": self.overwrite_fraction,
            "create_fraction": self.create_fraction,
            "zipf": self.zipf,
            "ttl_ops": self.ttl_ops,
        }


@dataclass(frozen=True)
class ScenarioSpec:
    """A named multi-tenant scenario, resolved from a preset.

    ``params`` keeps the explicitly-overridden preset knobs in
    canonical (sorted, normalized) form so :meth:`text` round-trips.
    """

    name: str
    tenants: tuple[TenantProfile, ...]
    seed: int = 0
    #: Arrival-rate wave: ``1 + amplitude * sin(2*pi*op/period)``.
    wave_amplitude: float = 0.0
    wave_period_ops: int = 0
    params: tuple[tuple[str, str], ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("ScenarioSpec needs a name")
        if not self.tenants:
            raise ConfigError("ScenarioSpec needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        if not 0.0 <= self.wave_amplitude < 1.0:
            raise ConfigError("wave_amplitude must be in [0, 1)")
        if self.wave_amplitude > 0 and self.wave_period_ops <= 0:
            raise ConfigError(
                "wave_amplitude > 0 needs wave_period_ops > 0"
            )
        if all(t.read_fraction >= 1.0 for t in self.tenants):
            raise ConfigError(
                "every tenant is read-only: the scenario could never "
                "advance storage age"
            )

    # ------------------------------------------------------------------
    # Text form
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "ScenarioSpec":
        """Parse ``preset:key=val,...`` (see the module docstring)."""
        text = text.strip()
        name, _, tail = text.partition(":")
        name = name.strip()
        preset = SCENARIO_PRESETS.get(name)
        if preset is None:
            raise ConfigError(
                f"unknown scenario {name!r}; "
                f"choose from {scenario_names()}"
            )
        raw: dict[str, str] = {}
        for item in filter(None, (p.strip() for p in tail.split(","))):
            key, eq, value = item.partition("=")
            key, value = key.strip(), value.strip()
            if not eq or not value:
                raise ConfigError(
                    f"bad scenario option {item!r}; expected key=value"
                )
            if key not in PARAM_KEYS:
                raise ConfigError(
                    f"unknown scenario option {key!r}; "
                    f"choose from {PARAM_KEYS}"
                )
            if key in raw:
                raise ConfigError(f"duplicate scenario option {key!r}")
            raw[key] = value
        tenants = _parse_int(raw.get("tenants", preset.tenants), "tenants")
        if not 1 <= tenants <= 64:
            raise ConfigError("tenants must be in 1..64")
        skew = _parse_float(raw.get("skew", preset.skew), "skew")
        if skew < 0:
            raise ConfigError("skew must be >= 0")
        seed = _parse_int(raw.get("seed", 0), "seed")
        ttl = _parse_int(raw.get("ttl", preset.ttl), "ttl")
        if ttl < 0:
            raise ConfigError("ttl must be >= 0")
        amplitude = _parse_float(raw.get("amplitude", preset.amplitude),
                                 "amplitude")
        period = _parse_int(raw.get("period", preset.period), "period")
        # Canonical params: only the explicitly-given keys, normalized
        # through their parsed values so the text form round-trips.
        parsed = {"tenants": tenants, "skew": skew, "seed": seed,
                  "ttl": ttl, "amplitude": amplitude, "period": period}
        params = tuple(sorted(
            (key, _fmt_value(parsed[key])) for key in raw
        ))
        return cls(
            name=name,
            tenants=preset.build(tenants, skew, ttl),
            seed=seed,
            wave_amplitude=amplitude,
            wave_period_ops=period,
            params=params,
        )

    def text(self) -> str:
        """Canonical spec text; ``parse(s.text()) == s``."""
        if not self.params:
            return self.name
        tail = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}:{tail}"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form, recorded in run results / config hash."""
        return {
            "name": self.name,
            "text": self.text(),
            "seed": self.seed,
            "wave_amplitude": self.wave_amplitude,
            "wave_period_ops": self.wave_period_ops,
            "tenants": [t.to_dict() for t in self.tenants],
        }

    # ------------------------------------------------------------------
    # Planning helpers
    # ------------------------------------------------------------------
    @property
    def mean_object_size(self) -> float:
        """Share-weighted mean object size (bulk-load planning)."""
        total_share = sum(t.share for t in self.tenants)
        return sum(t.sizes.mean * t.share for t in self.tenants) / total_share


# ----------------------------------------------------------------------
# Preset registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Preset:
    """Defaults plus a builder turning knobs into tenant profiles."""

    summary: str
    tenants: int
    skew: float
    ttl: int
    amplitude: float
    period: int
    build: Callable[[int, float, int], tuple[TenantProfile, ...]]


def _tenant_weights(n: int, skew: float = 0.8) -> list[float]:
    """Gentle Zipf over tenants: a few hot tenants, a long cool tail."""
    return [1.0 / (i + 1) ** skew for i in range(n)]


def _build_photo_sharing(n: int, skew: float,
                         ttl: int) -> tuple[TenantProfile, ...]:
    # Read-heavy immutable media: uploads (creates) with long retention,
    # very few edits.  Tenant size mix alternates thumbnail-heavy and
    # full-resolution libraries.
    weights = _tenant_weights(n)
    out = []
    for i in range(n):
        mean = (96, 192, 384)[i % 3] * KB
        out.append(TenantProfile(
            name=f"tenant-{i}",
            sizes=UniformSize.around_mean(mean, spread=0.5),
            weight=weights[i],
            share=1.0,
            read_fraction=0.75,
            overwrite_fraction=0.05,
            create_fraction=0.20,
            zipf=skew,
            ttl_ops=ttl,
        ))
    return tuple(out)


def _build_video_dvr(n: int, skew: float,
                     ttl: int) -> tuple[TenantProfile, ...]:
    # Ring-buffer recorders: large objects overwritten in place,
    # near-uniform popularity, no TTL (the ring never shrinks).
    del ttl  # DVR tenants re-record in place; nothing expires.
    weights = _tenant_weights(n, skew=0.4)
    out = []
    for i in range(n):
        size = (1, 2, 4)[i % 3] * MB
        out.append(TenantProfile(
            name=f"tenant-{i}",
            sizes=ConstantSize(size),
            weight=weights[i],
            share=2.0,
            read_fraction=0.3,
            overwrite_fraction=0.7,
            create_fraction=0.0,
            zipf=skew,
            ttl_ops=0,
        ))
    return tuple(out)


def _build_log_ingest(n: int, skew: float,
                      ttl: int) -> tuple[TenantProfile, ...]:
    # Append-mostly small objects with short retention: nearly every op
    # creates a fresh segment, expiry deletes keep the window bounded.
    weights = _tenant_weights(n, skew=0.6)
    out = []
    for i in range(n):
        out.append(TenantProfile(
            name=f"tenant-{i}",
            sizes=ConstantSize(64 * KB),
            weight=weights[i],
            share=0.5,
            read_fraction=0.1,
            overwrite_fraction=0.0,
            create_fraction=0.9,
            zipf=skew,
            ttl_ops=ttl,
        ))
    return tuple(out)


def _build_cdn_churn(n: int, skew: float,
                     ttl: int) -> tuple[TenantProfile, ...]:
    # Cache churn: hot-skewed reads, misses fill small hot objects with
    # short TTLs; cold tenants hold larger, longer-lived assets.
    weights = _tenant_weights(n)
    out = []
    for i in range(n):
        hot = i < max(1, n // 4)
        mean = 128 * KB if hot else 512 * KB
        out.append(TenantProfile(
            name=f"tenant-{i}",
            sizes=UniformSize.around_mean(mean, spread=0.6),
            weight=weights[i],
            share=0.5 if hot else 1.0,
            read_fraction=0.70,
            overwrite_fraction=0.05,
            create_fraction=0.25,
            zipf=skew,
            ttl_ops=ttl if hot else ttl * 4,
        ))
    return tuple(out)


#: Ship-with presets; ``ScenarioSpec.parse`` resolves names here.
SCENARIO_PRESETS: dict[str, _Preset] = {
    "photo_sharing": _Preset(
        summary="read-heavy immutable media uploads with long retention",
        tenants=6, skew=0.9, ttl=4000, amplitude=0.3, period=2000,
        build=_build_photo_sharing,
    ),
    "video_dvr": _Preset(
        summary="large ring-buffer recordings overwritten in place",
        tenants=3, skew=0.0, ttl=0, amplitude=0.2, period=4000,
        build=_build_video_dvr,
    ),
    "log_ingest": _Preset(
        summary="append-mostly small segments with short TTL retention",
        tenants=4, skew=0.6, ttl=800, amplitude=0.6, period=500,
        build=_build_log_ingest,
    ),
    "cdn_churn": _Preset(
        summary="hot-skewed cache fills with TTL eviction churn",
        tenants=8, skew=1.1, ttl=600, amplitude=0.4, period=1000,
        build=_build_cdn_churn,
    ),
}


def scenario_names() -> tuple[str, ...]:
    return tuple(sorted(SCENARIO_PRESETS))


# ----------------------------------------------------------------------
# Parse helpers
# ----------------------------------------------------------------------
def _parse_int(value: Any, key: str) -> int:
    if isinstance(value, int):
        return value
    try:
        return int(str(value))
    except ValueError:
        raise ConfigError(f"bad integer for {key}: {value!r}") from None


def _parse_float(value: Any, key: str) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value))
    except ValueError:
        raise ConfigError(f"bad float for {key}: {value!r}") from None


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
