"""Scenario engine: drive a multi-tenant op stream against one store.

:func:`scenario_bulk_load` fills the store with per-tenant key
populations (``tenant-<i>-object-<n>``), then :func:`scenario_step`
interleaves tenant ops — Zipf-popular reads, safe-write overwrites,
TTL-bounded creates, and expiry deletes — with :func:`scenario_to_age`
looping until the shared store reaches a target storage age, exactly
like the paper loop's ``churn_to_age``.

Determinism and resume
----------------------
Every random decision draws from a labelled :func:`repro.rng.substream`
captured inside :class:`ScenarioState` (one stream per tenant plus one
for tenant interleaving), and the whole state — tenant RNGs, key
ownership, the TTL heap, interval histograms — pickles inside the run
checkpoint.  A killed-and-resumed scenario run therefore replays the
identical op stream and reproduces the uninterrupted record exactly;
the resume suite pins this.

Per-tenant latency accounting
-----------------------------
Two paths, chosen per store:

* ``queue=event`` stores: each op runs inside
  :meth:`EventScheduler.tagged`, so sojourns land in per-tenant
  histograms on the scheduler window and surface through
  ``PhaseResult.tenant_lat`` (see
  :class:`~repro.backends.base.MeasurementWindows`).
* Every other store: the op's summed device-clock delta (a service-time
  proxy; there is no queueing model to defer completions) is recorded
  into the engine's own per-tenant interval histograms, drained by
  :meth:`ScenarioState.take_interval_summaries`.

Either way the global interval histogram and the per-tenant splits
count the same ops, so tenant counts sum-reconcile with the global
books.

Arrival-rate modulation
-----------------------
When the spec carries a wave (``amplitude``/``period``) the tenant mix
is modulated per-op with phase-shifted sine waves (bursts rotate across
tenants), and on a ``queue=event`` store with Poisson arrivals the
open-loop rate itself is re-anchored every eighth of a period via
:meth:`EventScheduler.set_arrival`, so the queueing tail breathes with
the diurnal cycle.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_left
from dataclasses import dataclass, field
from random import Random

from repro.backends.base import ObjectStore
from repro.core.workload import WorkloadSpec, WorkloadState
from repro.disk.events import EventScheduler, LatencyHistogram
from repro.errors import ConfigError
from repro.rng import substream
from repro.scenario.spec import ScenarioSpec, TenantProfile

#: Safety valve for :func:`scenario_to_age`: if this many ops cannot
#: advance the storage age to the target, the spec/volume combination
#: is degenerate and we fail loudly instead of spinning.
MAX_OPS_PER_CALL = 5_000_000

#: TTL expiry never shrinks a tenant below this fraction of its
#: bulk-loaded population (floored at 2 keys), so read/overwrite ops
#: always have a population to draw from.
TTL_FLOOR_FRACTION = 0.25


@dataclass
class TenantState:
    """One tenant's mutable half of the scenario."""

    profile: TenantProfile
    rng: Random
    keys: list[str] = field(default_factory=list)
    #: Population at bulk-load end (TTL floor anchor).
    bulk_count: int = 0
    #: Zipf prefix sums by rank; grown lazily, never rebuilt (the
    #: weight of rank r is fixed, keys shift ranks as others expire).
    _cumw: list[float] = field(default_factory=list)
    # Books.
    ops: int = 0
    reads: int = 0
    overwrites: int = 0
    creates: int = 0
    expired: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def pick_key(self) -> str:
        """Zipf-ranked draw from the tenant's live keys."""
        n = len(self.keys)
        if n == 0:
            raise ConfigError(
                f"tenant {self.profile.name!r} has no keys to draw from"
            )
        s = self.profile.zipf
        if s <= 0.0:
            return self.keys[self.rng.randrange(n)]
        while len(self._cumw) < n:
            rank = len(self._cumw)
            prev = self._cumw[-1] if self._cumw else 0.0
            self._cumw.append(prev + 1.0 / (rank + 1) ** s)
        x = self.rng.random() * self._cumw[n - 1]
        # x < cumw[n-1] always (random() < 1), so the result is < n.
        return self.keys[bisect_left(self._cumw, x, 0, n)]

    @property
    def ttl_floor(self) -> int:
        return max(2, int(self.bulk_count * TTL_FLOOR_FRACTION))


@dataclass
class ScenarioState:
    """Everything a scenario run needs to continue — pickled whole
    inside the run checkpoint (see ``repro.core.experiment``)."""

    spec: ScenarioSpec
    workload: WorkloadState
    tenants: list[TenantState]
    #: (expire_op, seq, tenant_index, key) min-heap of pending expiries.
    ttl_heap: list[tuple[int, int, int, str]] = field(default_factory=list)
    op_index: int = 0
    ttl_seq: int = 0
    #: Interleaving stream: which tenant issues the next op.
    pick_rng: Random = field(default_factory=lambda: substream(0, "unused"))
    #: Live-byte ceiling (bulk-loaded bytes + 5%): creates that would
    #: push occupancy past the bulk-load level degrade to overwrites,
    #: so TTL churn recycles the population instead of growing it.
    live_cap: int = 0
    #: Open-loop base rate captured at the first wave update.
    base_rate: float = 0.0
    #: Last wave window ``set_arrival`` was issued for.
    wave_window: int = -1
    #: Non-event-store latency path: per-op device-time deltas for the
    #: current sample interval, global and per tenant.
    interval_global: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    interval_tenant: dict[str, LatencyHistogram] = field(
        default_factory=dict)

    @property
    def bytes_written(self) -> int:
        """Logical bytes written so far (overwrites + creates)."""
        return sum(t.bytes_written for t in self.tenants)

    def take_interval_summaries(
        self,
    ) -> tuple[dict[str, float], dict[str, dict[str, float]]]:
        """Drain the interval histograms: (global summary, per-tenant).

        Used on the non-event path where the engine times ops itself;
        returns empty summaries on the event path (the scheduler window
        carries the histograms there).
        """
        if not self.interval_global.count:
            out: tuple[dict[str, float], dict[str, dict[str, float]]] = (
                {}, {})
        else:
            out = (
                self.interval_global.summary(),
                {name: hist.summary()
                 for name, hist in sorted(self.interval_tenant.items())},
            )
        self.interval_global = LatencyHistogram()
        self.interval_tenant = {}
        return out


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _event_scheduler(store: ObjectStore) -> EventScheduler | None:
    sched = getattr(store, "scheduler", None)
    if getattr(sched, "is_event", False):
        return sched
    return None


def _device_clock(store: ObjectStore) -> float:
    return sum(dev.clock_s for dev in store.devices())


def _wave_factor(spec: ScenarioSpec, op: int, phase: float = 0.0) -> float:
    if spec.wave_amplitude <= 0.0 or spec.wave_period_ops <= 0:
        return 1.0
    angle = 2.0 * math.pi * op / spec.wave_period_ops + phase
    return 1.0 + spec.wave_amplitude * math.sin(angle)


def _choose_tenant(state: ScenarioState) -> int:
    """Weighted draw over tenants, wave-modulated with per-tenant
    phase offsets so bursts rotate across the tenant set."""
    tenants = state.tenants
    if len(tenants) == 1:
        return 0
    n = len(tenants)
    weights = [
        t.profile.weight * _wave_factor(state.spec, state.op_index,
                                        2.0 * math.pi * i / n)
        for i, t in enumerate(tenants)
    ]
    x = state.pick_rng.random() * sum(weights)
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if x < acc:
            return i
    return n - 1


def _maybe_update_arrival(store: ObjectStore, state: ScenarioState) -> None:
    """Re-anchor the open-loop Poisson rate to the diurnal wave."""
    spec = state.spec
    if spec.wave_amplitude <= 0.0 or spec.wave_period_ops <= 0:
        return
    sched = _event_scheduler(store)
    if sched is None or sched.arrival.mode != "poisson":
        return
    if state.base_rate <= 0.0:
        state.base_rate = sched.arrival.rate
    window = state.op_index // max(1, spec.wave_period_ops // 8)
    if window == state.wave_window:
        return
    state.wave_window = window
    rate = state.base_rate * _wave_factor(spec, state.op_index)
    # A fresh seed per window keeps the inter-arrival stream from
    # replaying identically after every re-anchor.
    seed = sched.arrival.seed * 1000 + (window % 1000)
    sched.set_arrival(
        f"poisson:rate={rate:g}:seed={seed}"
        + (f":clients={sched.arrival.clients}"
           if sched.arrival.clients else "")
    )


def _record_op(state: ScenarioState, tenant: TenantState,
               delta_s: float) -> None:
    """Non-event path: record one op's device-time delta."""
    state.interval_global.record(delta_s)
    name = tenant.profile.name
    hist = state.interval_tenant.get(name)
    if hist is None:
        hist = state.interval_tenant[name] = LatencyHistogram()
    hist.record(delta_s)


def _remove_key(state: ScenarioState, tenant: TenantState,
                key: str) -> None:
    tenant.keys.remove(key)
    state.workload.keys.remove(key)
    state.workload.versions.pop(key, None)


def _expire_due(store: ObjectStore, state: ScenarioState,
                sched: EventScheduler | None) -> None:
    """Delete objects whose TTL has passed (respecting the floor)."""
    heap = state.ttl_heap
    while heap and heap[0][0] <= state.op_index:
        _, _, tidx, key = heapq.heappop(heap)
        tenant = state.tenants[tidx]
        if key not in tenant.keys:
            continue  # expired earlier (stale heap entry)
        if len(tenant.keys) <= tenant.ttl_floor:
            continue  # keep a working set; drop the expiry
        size = store.meta(key).size
        if sched is not None:
            with sched.tagged(tenant.profile.name):
                store.delete(key)
        else:
            t0 = _device_clock(store)
            store.delete(key)
            _record_op(state, tenant, _device_clock(store) - t0)
        state.workload.tracker.on_delete(size)
        _remove_key(state, tenant, key)
        tenant.expired += 1


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------
def scenario_bulk_load(store: ObjectStore, spec: WorkloadSpec,
                       scn: ScenarioSpec, seed: int) -> ScenarioState:
    """Fill a clean store with per-tenant populations (storage age 0).

    Bytes are split across tenants by their ``share`` weights; keys are
    named ``<tenant>-object-<n>`` with a store-wide object-id counter.
    Creating tenants get staggered expiries on their bulk keys so TTL
    churn starts immediately instead of after one full lifetime.
    """
    workload = WorkloadState(
        spec=spec, rng=substream(seed, f"scenario:{scn.seed}:workload"))
    tenants = [
        TenantState(
            profile=t,
            rng=substream(seed, f"scenario:{scn.seed}:tenant:{t.name}"),
        )
        for t in scn.tenants
    ]
    state = ScenarioState(
        spec=scn, workload=workload, tenants=tenants,
        pick_rng=substream(seed, f"scenario:{scn.seed}:pick"),
    )
    stats = store.store_stats()
    replicas = max(1, int(getattr(store, "replicas", 1)))
    target_bytes = int(stats.capacity * spec.target_occupancy) // replicas
    shares = [t.profile.share for t in tenants]
    total_share = sum(shares)
    cum = []
    acc = 0.0
    for s in shares:
        acc += s
        cum.append(acc)
    loaded = 0
    while True:
        x = workload.rng.random() * total_share
        tidx = bisect_left(cum, x)
        if tidx >= len(tenants):
            tidx = len(tenants) - 1
        tenant = tenants[tidx]
        size = tenant.profile.sizes.draw(tenant.rng)
        if loaded + size > target_bytes:
            break
        # Same free-space margin as the paper loop's bulk_load.
        if store.free_bytes() < size + size // 8 + (1 << 20):
            break
        key = f"{tenant.profile.name}-object-{workload.next_object_id}"
        workload.next_object_id += 1
        store.put(key, size=size)
        workload.tracker.on_put(size)
        workload.keys.append(key)
        tenant.keys.append(key)
        loaded += size
    if not workload.keys:
        raise ConfigError(
            "volume too small for even one object at this occupancy"
        )
    state.live_cap = loaded + loaded // 20
    for tidx, tenant in enumerate(tenants):
        if not tenant.keys:
            raise ConfigError(
                f"volume too small to seed tenant "
                f"{tenant.profile.name!r}; shrink tenants or object sizes"
            )
        tenant.bulk_count = len(tenant.keys)
        ttl = tenant.profile.ttl_ops
        if ttl > 0 and tenant.profile.create_fraction > 0:
            for key in tenant.keys:
                expire = 1 + tenant.rng.randrange(ttl)
                heapq.heappush(state.ttl_heap,
                               (expire, state.ttl_seq, tidx, key))
                state.ttl_seq += 1
    return state


def scenario_step(store: ObjectStore, state: ScenarioState) -> str:
    """One scenario op; returns the op kind (``read``/``overwrite``/
    ``create``).  Due TTL expiries are drained first and charged to the
    owning tenant."""
    sched = _event_scheduler(store)
    _expire_due(store, state, sched)
    tidx = _choose_tenant(state)
    tenant = state.tenants[tidx]
    prof = tenant.profile
    workload = state.workload
    r = tenant.rng.random()
    if r < prof.read_fraction and tenant.keys:
        kind = "read"
    elif r < prof.read_fraction + prof.overwrite_fraction and tenant.keys:
        kind = "overwrite"
    else:
        kind = "create"
    if kind == "create":
        size = prof.sizes.draw(tenant.rng)
        # Admission control: a create that would push live bytes past
        # the bulk-load occupancy (or into the store's free-space
        # margin) degrades to an overwrite of a popular key —
        # deterministic, and it keeps TTL churn recycling the
        # population instead of wedging the volume.
        if (workload.tracker.live_bytes + size > state.live_cap
                or store.free_bytes() < size + size // 8 + (1 << 20)
                or prof.ttl_ops <= 0):
            kind = "overwrite" if tenant.keys else "read"
    if kind == "read":
        key = tenant.pick_key()
        size = store.meta(key).size
        if sched is not None:
            with sched.tagged(prof.name):
                store.get(key)
        else:
            t0 = _device_clock(store)
            store.get(key)
            _record_op(state, tenant, _device_clock(store) - t0)
        tenant.reads += 1
        tenant.bytes_read += size
    elif kind == "overwrite":
        key = tenant.pick_key()
        old_size = store.meta(key).size
        new_size = prof.sizes.draw(tenant.rng)
        if sched is not None:
            with sched.tagged(prof.name):
                store.overwrite(key, size=new_size)
        else:
            t0 = _device_clock(store)
            store.overwrite(key, size=new_size)
            _record_op(state, tenant, _device_clock(store) - t0)
        workload.tracker.on_overwrite(old_size, new_size)
        workload.bytes_overwritten += new_size
        tenant.overwrites += 1
        tenant.bytes_written += new_size
    else:
        size = prof.sizes.draw(tenant.rng)
        key = f"{prof.name}-object-{workload.next_object_id}"
        workload.next_object_id += 1
        if sched is not None:
            with sched.tagged(prof.name):
                store.put(key, size=size)
        else:
            t0 = _device_clock(store)
            store.put(key, size=size)
            _record_op(state, tenant, _device_clock(store) - t0)
        workload.tracker.on_put(size)
        workload.keys.append(key)
        tenant.keys.append(key)
        heapq.heappush(
            state.ttl_heap,
            (state.op_index + prof.ttl_ops, state.ttl_seq, tidx, key))
        state.ttl_seq += 1
        tenant.creates += 1
        tenant.bytes_written += size
    tenant.ops += 1
    state.op_index += 1
    _maybe_update_arrival(store, state)
    return kind


def scenario_to_age(store: ObjectStore, state: ScenarioState,
                    target_age: float, *, on_step=None) -> int:
    """Run scenario ops until storage age reaches ``target_age``.

    Mirrors ``churn_to_age``: returns the op count, calling ``on_step``
    with the 1-based op index after each op (checkpoint cadence, fault
    injection, test kill points).
    """
    steps = 0
    tracker = state.workload.tracker
    while tracker.storage_age < target_age:
        scenario_step(store, state)
        steps += 1
        if on_step is not None:
            on_step(steps)
        if steps >= MAX_OPS_PER_CALL:
            raise ConfigError(
                f"scenario {state.spec.name!r} could not reach storage "
                f"age {target_age} within {MAX_OPS_PER_CALL} ops "
                f"(stuck at {tracker.storage_age:.3f}); the tenant mix "
                "writes too rarely for this volume"
            )
    return steps
