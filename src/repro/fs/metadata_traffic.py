"""Background metadata allocations on a live volume.

A real NTFS volume under load does not allocate *only* file stream data:
directory index buffers grow, $LogFile extends, the MFT spills past its
reserved zone, USN journal records accumulate.  These small allocations
come from the same free space as file data and perturb the sizes of free
runs.

This matters for reproducing Figure 5: with a perfectly serial workload
of constant-size objects and an exact-fit hole population, *no*
reasonable allocator fragments — yet the paper measured that constant-
size objects fragment about as much as uniformly distributed ones.  The
perturbation that breaks exact fits in practice is this background
traffic.  We model it explicitly and deterministically: every
``interval_ops`` file operations, allocate a small run (``nibble_bytes``)
through the normal allocator; nibbles are long-lived and are freed FIFO
once more than ``max_outstanding`` exist.

EXPERIMENTS.md records the sensitivity: the Figure 5 shape is stable
across an order of magnitude in ``interval_ops``.
"""

from __future__ import annotations

from collections import deque

from repro.alloc.extent import Extent
from repro.alloc.runcache import NtfsRunCache
from repro.errors import AllocationError, ConfigError


class MetadataTraffic:
    """Deterministic low-rate metadata allocate/free stream.

    Parameters
    ----------
    runcache:
        The filesystem's allocator; nibbles follow the same policy as
        data so they land where real metadata would.
    interval_events:
        Namespace operations (create/delete/rename) between nibbles; 0
        disables the traffic.  Every namespace operation updates the
        directory's index B-tree, which grows and shrinks 4 KB index
        buffers in ordinary data space; the default of one nibble per
        two operations matches that churn.  Nibbles deliberately do
        *not* interleave with the appends of a single file: the paper's
        bulk load produces contiguous files (Figure 1's fast age-0
        reads), which per-append interleaving would destroy.
    nibble_bytes:
        Size of each metadata allocation (a directory index buffer is
        4 KB on a default NTFS volume).
    max_outstanding:
        Nibbles retained before the oldest is freed; models metadata
        that lives much longer than any one object.
    """

    def __init__(self, runcache: NtfsRunCache, *, interval_events: int = 2,
                 nibble_bytes: int = 4096,
                 max_outstanding: int = 256) -> None:
        if interval_events < 0:
            raise ConfigError("interval_events must be >= 0")
        if nibble_bytes <= 0:
            raise ConfigError("nibble_bytes must be positive")
        if max_outstanding < 1:
            raise ConfigError("max_outstanding must be >= 1")
        self._runcache = runcache
        self._interval = interval_events
        self._nibble_bytes = nibble_bytes
        self._max_outstanding = max_outstanding
        self._ops = 0
        self._outstanding: deque[Extent] = deque()
        self.nibbles_allocated = 0
        self.nibbles_freed = 0

    @property
    def enabled(self) -> bool:
        return self._interval > 0

    @property
    def outstanding_bytes(self) -> int:
        return sum(e.length for e in self._outstanding)

    @property
    def outstanding_extents(self) -> tuple[Extent, ...]:
        """Live nibbles (a copy) — allocated space outside any file's
        extent map, which free-index rebuilds must account for."""
        return tuple(self._outstanding)

    def on_event(self) -> None:
        """Called by the filesystem on every allocation event."""
        if not self.enabled:
            return
        self._ops += 1
        if self._ops % self._interval != 0:
            return
        try:
            pieces = self._runcache.allocate(self._nibble_bytes)
        except AllocationError:
            return  # a full volume just skips metadata growth
        self._outstanding.extend(pieces)
        self.nibbles_allocated += 1
        while len(self._outstanding) > self._max_outstanding:
            oldest = self._outstanding.popleft()
            self._runcache.index.add(oldest)
            self.nibbles_freed += 1

    def release_all(self) -> None:
        """Free every outstanding nibble (used by teardown paths)."""
        while self._outstanding:
            self._runcache.index.add(self._outstanding.popleft())
