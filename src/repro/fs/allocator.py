"""Filesystem space allocation: per-append requests with extension.

The central NTFS behaviour the paper identifies (Section 5.4): space is
allocated *as the file is appended to*, before the final size is known.
``allocate_append`` therefore serves one write request at a time — first
trying to extend the file's last run contiguously (NTFS detects
sequential appends and extends aggressively), then falling back to the
banded run cache, fragmenting only when no cached run fits.

``allocate_full`` is the counterfactual interface the paper wishes
existed ("there is no way to pass the (known) object size to the file
system at file creation"): one contiguous best-effort allocation for the
whole object.  The delayed-allocation wrapper and the size-hint ablation
bench use it.
"""

from __future__ import annotations

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.alloc.runcache import NtfsRunCache
from repro.errors import ConfigError
from repro.fs.filetable import FileRecord
from repro.units import round_up


class FsAllocator:
    """Cluster-granular allocator for file stream data."""

    def __init__(self, index: FreeExtentIndex, *, cluster_size: int,
                 outer_band_fraction: float = 0.125,
                 cache_size: int = 64,
                 extension_stickiness: float = 0.75,
                 reconsider_interval_requests: int = 16) -> None:
        if cluster_size <= 0:
            raise ConfigError("cluster_size must be positive")
        if reconsider_interval_requests < 1:
            raise ConfigError("reconsider_interval_requests must be >= 1")
        self.index = index
        self.cluster_size = cluster_size
        self.extension_stickiness = extension_stickiness
        self.reconsider_interval_requests = reconsider_interval_requests
        self.runcache = NtfsRunCache(
            index,
            outer_band_fraction=outer_band_fraction,
            cache_size=cache_size,
        )

    def _clusters(self, nbytes: int) -> int:
        return round_up(nbytes, self.cluster_size)

    def allocate_append(self, record: FileRecord, nbytes: int) -> list[Extent]:
        """Allocate space for one append request to ``record``.

        Returns the new extents in logical order.  The caller appends
        them to the record's run list and writes them.
        """
        needed = self._clusters(nbytes)
        pieces: list[Extent] = []
        # Placement is re-evaluated against the run cache only every
        # Nth request of a sequentially appended file; in between, the
        # allocator stays in the run it is eating.  This batching is
        # what keeps a file's fragment count an order of magnitude
        # below its request count even on a nearly full volume.
        review = record.append_requests % self.reconsider_interval_requests == 0
        record.append_requests += 1
        stickiness = self.extension_stickiness if review else 0.0
        if record.extents:
            extension = self.runcache.try_extend(
                record.extents[-1].end, needed,
                stickiness=stickiness,
            )
            if extension is not None:
                pieces.append(extension)
                needed -= extension.length
        if needed > 0:
            pieces.extend(self.runcache.allocate(needed))
        return pieces

    def allocate_full(self, nbytes: int) -> list[Extent]:
        """Allocate the whole object at once, preferring one extent.

        Falls back to the normal fragmenting path only when no single
        run fits — exactly what delayed allocation buys.
        """
        needed = self._clusters(nbytes)
        return self.runcache.allocate(needed)

    def allocate_small(self, nbytes: int) -> list[Extent]:
        """Allocation path for metadata-sized requests."""
        return self.runcache.allocate(self._clusters(nbytes))

    def free(self, extents: list[Extent]) -> None:
        """Immediately return extents to the free index (journal bypass;
        normal deletes go through the journal instead)."""
        for ext in extents:
            self.index.add(ext)
