"""The filesystem's transactional log and deferred free-space reuse.

Section 2 of the paper: *"the NTFS transactional log entry must be
committed before freed space can be reallocated after file deletion."*

:class:`Journal` models that: extents freed by deletes are *pending*
until the next commit, at which point they enter the free index (and
coalesce).  Commits happen every ``commit_interval_ops`` metadata
operations — batching several operations per commit the way a real log
does — or explicitly via :meth:`commit`.

The journal also charges I/O: each logged operation appends a small
record to the log region (sequential), and each commit forces the log.
The log region is circular (like $LogFile): a commit whose batch does
not fit before the region's end splits into a tail write plus a head
write, charging exactly the batch's bytes and leaving the cursor
wrap-correct.

Crash semantics
---------------
A commit has a single durability point: the log force (:meth:`commit`'s
flush).  Frees logged but not yet forced are **non-durable** — a crash
discards them (the delete never happened; the file still exists on the
real volume).  Frees whose force completed but whose free-index update
was lost are **replayable** — mount-time recovery redoes them, ARIES
style.  :meth:`recover` applies exactly that rule and reports both
sets; :meth:`snapshot_state`/:meth:`restore_state` expose the
recoverable state for the persistence layer
(:mod:`repro.persist.snapshot`).  The invariant the crash-injection
suite holds every kill point to: an extent is never allocatable before
the commit that freed it is durable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.disk.device import BlockDevice
from repro.errors import ConfigError, CorruptionError


@dataclass(frozen=True)
class JournalState:
    """The recoverable state of a :class:`Journal` at one instant.

    ``pending`` are frees logged but not durably committed (discarded by
    recovery); ``replayable`` are frees whose commit is durable but whose
    free-index publication had not happened yet (redone by recovery).
    Outside a crash window ``replayable`` is always empty.
    """

    cursor: int
    ops_since_commit: int
    buffered_records: int
    commits: int
    logged_ops: int
    pending: tuple[Extent, ...]
    replayable: tuple[Extent, ...]


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`Journal.recover` did on a mount after a crash."""

    replayed: tuple[Extent, ...]
    discarded: tuple[Extent, ...]

    @property
    def replayed_bytes(self) -> int:
        return sum(e.length for e in self.replayed)

    @property
    def discarded_bytes(self) -> int:
        return sum(e.length for e in self.discarded)


class Journal:
    """Write-ahead metadata log with deferred free reuse.

    Parameters
    ----------
    device:
        Device to charge log writes to.
    free_index:
        Where committed frees are returned.
    log_base, log_size:
        The log region (a circular file, like $LogFile).
    commit_interval_ops:
        Logged operations per group commit.  1 commits every operation;
        larger values batch, widening the window in which freed space is
        unavailable for reuse.
    record_bytes:
        Bytes appended to the log per operation.
    """

    def __init__(self, device: BlockDevice, free_index: FreeExtentIndex, *,
                 log_base: int, log_size: int,
                 commit_interval_ops: int = 8,
                 record_bytes: int = 4096,
                 charge_io: bool = True) -> None:
        if commit_interval_ops < 1:
            raise ConfigError("commit_interval_ops must be >= 1")
        if log_size < record_bytes:
            raise ConfigError("log region smaller than one record")
        self._device = device
        self._free_index = free_index
        self._log_base = log_base
        self._log_size = log_size
        self._commit_interval = commit_interval_ops
        self._record_bytes = record_bytes
        self._charge_io = charge_io
        self._cursor = 0
        self._ops_since_commit = 0
        self._buffered_records = 0
        self._pending_frees: list[Extent] = []
        self._pending_bytes = 0
        #: Durably committed frees not yet in the free index; non-empty
        #: only between a commit's force and its publication.
        self._replayable: list[Extent] = []
        self._replayable_bytes = 0
        self.commits = 0
        self.logged_ops = 0
        #: Optional fault-injection hook: called with a label at the
        #: commit's crash point; raising aborts the commit there.  Left
        #: ``None`` in production so checkpoints stay picklable.
        self.crash_hook = None

    # ------------------------------------------------------------------
    def log_operation(self, *, frees: list[Extent] | None = None) -> None:
        """Record one metadata operation (create/delete/rename/extend).

        Records accumulate in the in-memory log buffer (no I/O yet —
        like NTFS's log buffer) and hit the platter as one sequential
        write at the next group commit.  ``frees`` are extents released
        by the operation; they become allocatable only at that commit.
        """
        self.logged_ops += 1
        self._buffered_records += 1
        if frees:
            self._pending_frees.extend(frees)
            for ext in frees:
                self._pending_bytes += ext.length
        self._ops_since_commit += 1
        if self._ops_since_commit >= self._commit_interval:
            self.commit()

    def commit(self) -> None:
        """Write the buffered records, force the log, publish frees."""
        if self._ops_since_commit == 0 and not self._pending_frees \
                and self._buffered_records == 0 and not self._replayable:
            return
        if self._charge_io and self._buffered_records:
            self._write_records(self._buffered_records * self._record_bytes)
        if self._charge_io:
            self._device.flush()
        # The force is the durability point: from here the logged frees
        # survive a crash (they move to the replayable set) even though
        # the free index has not absorbed them yet.
        self._buffered_records = 0
        self.commits += 1
        self._ops_since_commit = 0
        if self._pending_frees:
            self._replayable.extend(self._pending_frees)
            self._replayable_bytes += self._pending_bytes
            self._pending_frees.clear()
            self._pending_bytes = 0
        self._crash("commit:after_force")
        self._publish_replayable()

    def _write_records(self, nbytes: int) -> None:
        """Charge ``nbytes`` of log writes, wrapping the circular region.

        A batch that does not fit before the region's end splits into a
        tail write plus a head write (and keeps lapping for batches
        larger than the whole region), so exactly ``nbytes`` are charged
        and the cursor lands at its wrap-correct position.
        """
        cursor = self._cursor
        log_size = self._log_size
        remaining = nbytes
        while remaining > 0:
            chunk = min(remaining, log_size - cursor)
            self._device.write(self._log_base + cursor, chunk)
            cursor = (cursor + chunk) % log_size
            remaining -= chunk
        self._cursor = cursor

    def _publish_replayable(self) -> None:
        replay, self._replayable = self._replayable, []
        self._replayable_bytes = 0
        for ext in replay:
            self._free_index.add(ext)

    def _crash(self, label: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(label)

    # ------------------------------------------------------------------
    # Crash recovery and state snapshot
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Mount-after-crash: replay durable frees, discard the rest.

        Replayable frees (force completed, publication lost) are redone
        into the free index; pending frees (never forced) are discarded
        — per the paper's rule, their space was never allowed to become
        allocatable, and on the real volume those files still exist.
        The log buffer is dropped and the cursor left wrap-correct.
        """
        replayed = tuple(self._replayable)
        self._publish_replayable()
        discarded = tuple(self._pending_frees)
        self._pending_frees.clear()
        self._pending_bytes = 0
        self._buffered_records = 0
        self._ops_since_commit = 0
        self._cursor %= self._log_size
        return RecoveryReport(replayed=replayed, discarded=discarded)

    def snapshot_state(self) -> JournalState:
        """The recoverable state, for the persistence layer."""
        return JournalState(
            cursor=self._cursor,
            ops_since_commit=self._ops_since_commit,
            buffered_records=self._buffered_records,
            commits=self.commits,
            logged_ops=self.logged_ops,
            pending=tuple(self._pending_frees),
            replayable=tuple(self._replayable),
        )

    def restore_state(self, state: JournalState) -> None:
        """Adopt a previously snapshotted state (checkpoint restore).

        The caller is responsible for the free index matching: restored
        pending/replayable extents must not already be free.
        """
        if not 0 <= state.cursor < self._log_size:
            raise CorruptionError(
                f"journal cursor {state.cursor} outside log of "
                f"{self._log_size} bytes"
            )
        if state.ops_since_commit < 0 or state.buffered_records < 0:
            raise CorruptionError("negative journal counters in snapshot")
        self._cursor = state.cursor
        self._ops_since_commit = state.ops_since_commit
        self._buffered_records = state.buffered_records
        self.commits = state.commits
        self.logged_ops = state.logged_ops
        self._pending_frees = list(state.pending)
        self._pending_bytes = sum(e.length for e in state.pending)
        self._replayable = list(state.replayable)
        self._replayable_bytes = sum(e.length for e in state.replayable)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_free_bytes(self) -> int:
        """Freed-but-not-yet-allocatable bytes — an O(1) counter read.

        Maintained incrementally (the fragmentation report reads this
        per sample); covers both the non-durable pending frees and any
        transiently unpublished replayable frees.
        """
        return self._pending_bytes + self._replayable_bytes

    @property
    def pending_free_count(self) -> int:
        return len(self._pending_frees)

    @property
    def pending_frees(self) -> tuple[Extent, ...]:
        """Frees logged but not durably committed (a copy)."""
        return tuple(self._pending_frees)

    @property
    def replayable_frees(self) -> tuple[Extent, ...]:
        """Durably committed frees not yet published (a copy)."""
        return tuple(self._replayable)

    @property
    def log_cursor(self) -> int:
        """Current write offset inside the circular log region."""
        return self._cursor

    @property
    def log_size(self) -> int:
        return self._log_size

    @property
    def log_base(self) -> int:
        return self._log_base

    @property
    def record_bytes(self) -> int:
        return self._record_bytes
