"""The filesystem's transactional log and deferred free-space reuse.

Section 2 of the paper: *"the NTFS transactional log entry must be
committed before freed space can be reallocated after file deletion."*

:class:`Journal` models that: extents freed by deletes are *pending*
until the next commit, at which point they enter the free index (and
coalesce).  Commits happen every ``commit_interval_ops`` metadata
operations — batching several operations per commit the way a real log
does — or explicitly via :meth:`commit`.

The journal also charges I/O: each logged operation appends a small
record to the log region (sequential), and each commit forces the log.
"""

from __future__ import annotations

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.disk.device import BlockDevice
from repro.errors import ConfigError


class Journal:
    """Write-ahead metadata log with deferred free reuse.

    Parameters
    ----------
    device:
        Device to charge log writes to.
    free_index:
        Where committed frees are returned.
    log_base, log_size:
        The log region (a circular file, like $LogFile).
    commit_interval_ops:
        Logged operations per group commit.  1 commits every operation;
        larger values batch, widening the window in which freed space is
        unavailable for reuse.
    record_bytes:
        Bytes appended to the log per operation.
    """

    def __init__(self, device: BlockDevice, free_index: FreeExtentIndex, *,
                 log_base: int, log_size: int,
                 commit_interval_ops: int = 8,
                 record_bytes: int = 4096,
                 charge_io: bool = True) -> None:
        if commit_interval_ops < 1:
            raise ConfigError("commit_interval_ops must be >= 1")
        if log_size < record_bytes:
            raise ConfigError("log region smaller than one record")
        self._device = device
        self._free_index = free_index
        self._log_base = log_base
        self._log_size = log_size
        self._commit_interval = commit_interval_ops
        self._record_bytes = record_bytes
        self._charge_io = charge_io
        self._cursor = 0
        self._ops_since_commit = 0
        self._buffered_records = 0
        self._pending_frees: list[Extent] = []
        self.commits = 0
        self.logged_ops = 0

    # ------------------------------------------------------------------
    def log_operation(self, *, frees: list[Extent] | None = None) -> None:
        """Record one metadata operation (create/delete/rename/extend).

        Records accumulate in the in-memory log buffer (no I/O yet —
        like NTFS's log buffer) and hit the platter as one sequential
        write at the next group commit.  ``frees`` are extents released
        by the operation; they become allocatable only at that commit.
        """
        self.logged_ops += 1
        self._buffered_records += 1
        if frees:
            self._pending_frees.extend(frees)
        self._ops_since_commit += 1
        if self._ops_since_commit >= self._commit_interval:
            self.commit()

    def commit(self) -> None:
        """Write the buffered records, force the log, publish frees."""
        if self._ops_since_commit == 0 and not self._pending_frees \
                and self._buffered_records == 0:
            return
        if self._charge_io and self._buffered_records:
            nbytes = self._buffered_records * self._record_bytes
            if self._cursor + nbytes > self._log_size:
                self._cursor = 0
            nbytes = min(nbytes, self._log_size)
            self._device.write(self._log_base + self._cursor, nbytes)
            self._cursor += nbytes
        if self._charge_io:
            self._device.flush()
        self._buffered_records = 0
        self.commits += 1
        self._ops_since_commit = 0
        pending, self._pending_frees = self._pending_frees, []
        for ext in pending:
            self._free_index.add(ext)

    @property
    def pending_free_bytes(self) -> int:
        return sum(e.length for e in self._pending_frees)

    @property
    def pending_free_count(self) -> int:
        return len(self._pending_frees)
