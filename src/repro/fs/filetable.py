"""File records and the file table (the simulator's MFT).

Each file is a :class:`FileRecord`: a name, a logical size, and the
ordered list of extents holding its data (NTFS calls this the run list).
:class:`FileTable` is the name → record index, with the atomic
``replace`` primitive that backs safe writes (``ReplaceFile()`` under
Windows, ``rename()`` under UNIX — Section 4 of the paper).

Record persistence is modelled, not stored: each record has a fixed slot
in the MFT region of the volume, and the filesystem charges a small write
there on every create/delete/rename.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.alloc.extent import Extent, coalesce, total_length
from repro.errors import (
    CorruptionError,
    FileExistsFsError,
    FileNotFoundFsError,
)


@dataclass
class FileRecord:
    """One file: identity, logical size, and physical run list."""

    file_id: int
    name: str
    size: int = 0
    extents: list[Extent] = field(default_factory=list)
    #: Monotonic creation stamp; lets analyses group files by generation.
    created_at_op: int = 0
    #: Append requests served so far (drives periodic placement review).
    append_requests: int = 0

    def add_extent(self, ext: Extent) -> None:
        """Append a run, merging with the previous run when contiguous."""
        if self.extents and self.extents[-1].end == ext.start:
            last = self.extents[-1]
            self.extents[-1] = Extent(last.start, last.length + ext.length)
        else:
            self.extents.append(ext)

    @property
    def allocated_bytes(self) -> int:
        return total_length(self.extents)

    def fragment_count(self) -> int:
        """Number of maximal contiguous runs (1 == unfragmented)."""
        if not self.extents:
            return 0
        return len(coalesce(self.extents))

    def check_invariants(self) -> None:
        """Runs are in logical order, disjoint, and cover ``size`` bytes."""
        for a, b in itertools.combinations(self.extents, 2):
            if a.overlaps(b):
                raise CorruptionError(f"file {self.name}: {a} overlaps {b}")
        if self.allocated_bytes < self.size:
            raise CorruptionError(
                f"file {self.name}: size {self.size} exceeds allocation "
                f"{self.allocated_bytes}"
            )


class FileTable:
    """Name-indexed table of live file records with MFT slot assignment."""

    def __init__(self) -> None:
        self._by_name: dict[str, FileRecord] = {}
        self._by_id: dict[int, FileRecord] = {}
        self._next_id = itertools.count(1)
        self._op_counter = 0

    def tick(self) -> int:
        """Advance and return the operation stamp."""
        self._op_counter += 1
        return self._op_counter

    def create(self, name: str) -> FileRecord:
        if name in self._by_name:
            raise FileExistsFsError(f"file exists: {name!r}")
        record = FileRecord(
            file_id=next(self._next_id),
            name=name,
            created_at_op=self._op_counter,
        )
        self._by_name[name] = record
        self._by_id[record.file_id] = record
        return record

    def lookup(self, name: str) -> FileRecord:
        try:
            return self._by_name[name]
        except KeyError:
            raise FileNotFoundFsError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._by_name

    def remove(self, name: str) -> FileRecord:
        record = self.lookup(name)
        del self._by_name[name]
        del self._by_id[record.file_id]
        return record

    def replace(self, src: str, dst: str) -> FileRecord | None:
        """Atomically rename ``src`` over ``dst``.

        Returns the displaced record (whose space the caller must free),
        or None when ``dst`` did not exist.  This is the safe-write
        commit point: after it, readers of ``dst`` see the new data.
        """
        record = self.lookup(src)
        displaced: FileRecord | None = None
        if dst in self._by_name:
            displaced = self.remove(dst)
        del self._by_name[src]
        record.name = dst
        self._by_name[dst] = record
        return displaced

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())

    def names(self) -> list[str]:
        return list(self._by_name)

    def mft_slot_offset(self, record: FileRecord, *, mft_base: int,
                        record_size: int, mft_size: int) -> int:
        """Byte offset of the record's MFT slot (slots recycle modulo the
        MFT region so the table never outgrows it)."""
        nslots = max(1, mft_size // record_size)
        return mft_base + (record.file_id % nslots) * record_size
