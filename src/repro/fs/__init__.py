"""NTFS-like filesystem substrate.

Implements the behaviours the paper attributes to NTFS (Sections 2, 5.3,
5.4): per-append space allocation from a banded, decreasing-size run
cache; aggressive contiguous extension of sequentially appended files;
transactional-log commit before freed space is reusable; safe writes via
temp file + atomic rename; and background metadata allocations that
perturb free-run sizes on a live volume.
"""

from repro.fs.filesystem import SimFilesystem, FsConfig
from repro.fs.filetable import FileRecord, FileTable
from repro.fs.journal import Journal
from repro.fs.metadata_traffic import MetadataTraffic

__all__ = [
    "SimFilesystem",
    "FsConfig",
    "FileRecord",
    "FileTable",
    "Journal",
    "MetadataTraffic",
]
