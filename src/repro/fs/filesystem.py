"""The simulated filesystem: NTFS-like semantics over a block device.

Volume layout (byte offsets)::

    [0 ............ mft_size)                MFT region (file records)
    [mft_size ..... mft_size + log_size)     $LogFile region (journal)
    [data_start ... capacity)                file stream data

Data allocation follows the paper's description of NTFS (per-append
allocation, banded run cache, contiguous-extension attempts, journal-
deferred free reuse).  Safe writes implement the temp-file + atomic
rename protocol of Section 4.

When the underlying device stores content, appends carry real bytes and
reads return them — the marker-based fragmentation analyzer and crash
tests rely on this; the timing model is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.extent import Extent
from repro.alloc.freelist import INDEX_KINDS, make_free_index
from repro.disk.device import BlockDevice
from repro.errors import AllocationError, ConfigError, FsError
from repro.fs.allocator import FsAllocator
from repro.fs.filetable import FileRecord, FileTable
from repro.fs.journal import Journal, RecoveryReport
from repro.fs.metadata_traffic import MetadataTraffic
from repro.units import CLUSTER_SIZE, DEFAULT_WRITE_REQUEST, KB, MB


@dataclass(frozen=True)
class FsConfig:
    """Tunable parameters of the simulated filesystem.

    Defaults follow the paper's setup (4 KB clusters, 64 KB application
    write requests) and NTFS's documented structure (bounded run cache,
    outer-band preference, log commit before free-space reuse).
    """

    cluster_size: int = CLUSTER_SIZE
    mft_zone_bytes: int = 4 * MB
    mft_record_bytes: int = 1 * KB
    log_bytes: int = 4 * MB
    commit_interval_ops: int = 8
    outer_band_fraction: float = 0.125
    run_cache_size: int = 64
    #: Sequential-append extension hysteresis (see NtfsRunCache.try_extend):
    #: a growing file keeps extending its current run only while that run
    #: stays at least this fraction of the largest cached run.
    extension_stickiness: float = 0.75
    #: Append requests between placement reviews of a growing file.
    reconsider_interval_requests: int = 16
    #: Namespace operations (create/delete/rename) between background
    #: metadata nibbles; 0 disables.
    metadata_interval_events: int = 2
    metadata_nibble_bytes: int = 4 * KB
    metadata_max_outstanding: int = 256
    #: Buffer appends and allocate on flush (XFS-style delayed allocation).
    delayed_allocation: bool = False
    #: Charge device I/O for MFT/journal writes (off simplifies unit tests).
    charge_metadata_io: bool = True
    #: Free-space engine: "tiered" (production) or "naive" (flat-list
    #: reference model, for the allocator ablation benches).
    index_kind: str = "tiered"

    def __post_init__(self) -> None:
        if self.cluster_size <= 0:
            raise ConfigError("cluster_size must be positive")
        if self.mft_zone_bytes < self.mft_record_bytes:
            raise ConfigError("MFT zone smaller than one record")
        if self.index_kind not in INDEX_KINDS:
            raise ConfigError(
                f"unknown index_kind {self.index_kind!r}; "
                f"choose from {INDEX_KINDS}"
            )


class SimFilesystem:
    """A single-volume, single-directory filesystem simulator."""

    def __init__(self, device: BlockDevice, config: FsConfig | None = None) -> None:
        self.device = device
        self.config = config or FsConfig()
        cfg = self.config
        self.data_start = cfg.mft_zone_bytes + cfg.log_bytes
        if self.data_start >= device.geometry.capacity:
            raise ConfigError("volume too small for metadata regions")
        self.free_index = make_free_index(device.geometry.capacity,
                                          kind=cfg.index_kind,
                                          initially_free=False)
        self.free_index.add(
            Extent(self.data_start,
                   device.geometry.capacity - self.data_start)
        )
        self.table = FileTable()
        self.allocator = FsAllocator(
            self.free_index,
            cluster_size=cfg.cluster_size,
            outer_band_fraction=cfg.outer_band_fraction,
            cache_size=cfg.run_cache_size,
            extension_stickiness=cfg.extension_stickiness,
            reconsider_interval_requests=cfg.reconsider_interval_requests,
        )
        self.journal = Journal(
            device,
            self.free_index,
            log_base=cfg.mft_zone_bytes,
            log_size=cfg.log_bytes,
            commit_interval_ops=cfg.commit_interval_ops,
            charge_io=cfg.charge_metadata_io,
        )
        self.metadata_traffic = MetadataTraffic(
            self.allocator.runcache,
            interval_events=cfg.metadata_interval_events,
            nibble_bytes=cfg.metadata_nibble_bytes,
            max_outstanding=cfg.metadata_max_outstanding,
        )
        #: Delayed-allocation buffers: name -> buffered (bytes|int) chunks.
        self._write_buffers: dict[str, list[bytes | int]] = {}
        #: Optional fault-injection hook: called with a label at each
        #: crash point; raising aborts the operation there.
        self.crash_hook = None
        # Journal kill points route through the same hook (a bound
        # method, not a lambda, so checkpoints stay picklable).
        self.journal.crash_hook = self._crash
        #: Space whose delete was lost in a crash (log record never
        #: forced): on the real volume those files still exist, so the
        #: bytes stay unallocatable.  Populated by recovery only.
        self.orphaned_extents: list[Extent] = []
        self._tmp_seq = 0

    # ------------------------------------------------------------------
    # Metadata persistence charges
    # ------------------------------------------------------------------
    def _write_record(self, record: FileRecord) -> None:
        if not self.config.charge_metadata_io:
            return
        offset = self.table.mft_slot_offset(
            record,
            mft_base=0,
            record_size=self.config.mft_record_bytes,
            mft_size=self.config.mft_zone_bytes,
        )
        self.device.write(offset, self.config.mft_record_bytes)

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------
    def create(self, name: str) -> FileRecord:
        """Create an empty file; charges an MFT record write + log entry."""
        self.table.tick()
        record = self.table.create(name)
        self._write_record(record)
        self.journal.log_operation()
        self.metadata_traffic.on_event()
        return record

    def exists(self, name: str) -> bool:
        return self.table.exists(name)

    def read_record(self, name: str) -> FileRecord:
        """Open path: fetch the file's MFT record (one small random read).

        With hundreds of thousands of large objects and a bounded cache,
        the record for a uniformly random object is effectively never
        resident — this read is most of the folklore's "file opens are
        expensive" (the rest is CPU, charged by the backend layer).
        """
        record = self.table.lookup(name)
        if self.config.charge_metadata_io:
            offset = self.table.mft_slot_offset(
                record,
                mft_base=0,
                record_size=self.config.mft_record_bytes,
                mft_size=self.config.mft_zone_bytes,
            )
            self.device.read(offset, self.config.mft_record_bytes)
        return record

    def file_size(self, name: str) -> int:
        return self.table.lookup(name).size

    def extent_map(self, name: str) -> list[Extent]:
        """The file's physical run list in logical order (a copy)."""
        return list(self.table.lookup(name).extents)

    def list_files(self) -> list[str]:
        return self.table.names()

    def delete(self, name: str) -> None:
        """Delete a file; space is reusable only after the next commit.

        The record update itself is journaled (charged by the log
        append) and written back lazily by the cache manager, so no
        synchronous in-place MFT write is charged here.
        """
        self.table.tick()
        self._write_buffers.pop(name, None)
        record = self.table.remove(name)
        self.journal.log_operation(frees=list(record.extents))
        self.metadata_traffic.on_event()

    def rename(self, src: str, dst: str) -> None:
        """Atomic rename; replaces ``dst`` if it exists (ReplaceFile).

        Durability comes from the journal append; the MFT pages are
        lazily written back, so only the log I/O is charged.
        """
        self._flush_buffers(src)
        self.table.tick()
        record = self.table.lookup(src)
        displaced = self.table.replace(src, dst)
        frees = list(displaced.extents) if displaced is not None else []
        self.journal.log_operation(frees=frees)
        self.metadata_traffic.on_event()

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def append(self, name: str, nbytes: int | None = None,
               data: bytes | None = None) -> None:
        """Append one write request to ``name``.

        Exactly one of ``nbytes`` (timing-only) or ``data`` must be
        given.  Without delayed allocation, space is allocated *now*,
        per request — the behaviour responsible for most of the
        fragmentation in the paper.
        """
        if (nbytes is None) == (data is None):
            raise ConfigError("pass exactly one of nbytes or data")
        length = len(data) if data is not None else int(nbytes)  # type: ignore[arg-type]
        if length <= 0:
            raise ConfigError("append length must be positive")
        record = self.table.lookup(name)
        if self.config.delayed_allocation:
            self._write_buffers.setdefault(name, []).append(
                data if data is not None else length
            )
            return
        self._materialize_append(record, length, data)

    def _materialize_append(self, record: FileRecord, length: int,
                            data: bytes | None) -> None:
        """Write ``length`` bytes at the file's logical end.

        Fills preallocated/cluster-slack space first, then allocates the
        shortfall per the append policy.
        """
        shortfall = record.size + length - record.allocated_bytes
        if shortfall > 0:
            for ext in self._allocate_under_pressure(
                    self.allocator.allocate_append, record, shortfall):
                record.add_extent(ext)
        span = _slice_extents(record.extents, record.size, length)
        self.device.write_extents(span, data)
        record.size += length

    def _allocate_under_pressure(self, allocate, *args):
        """Retry a failed allocation after forcing the journal commit.

        On a nearly full volume the space deleted by recent operations
        may all be sitting in the journal's pending-free list; a real
        filesystem forces the log and retries before reporting ENOSPC.
        """
        try:
            return allocate(*args)
        except AllocationError:
            self.journal.commit()
            return allocate(*args)

    def _flush_buffers(self, name: str) -> None:
        """Materialize delayed-allocation buffers for ``name``."""
        chunks = self._write_buffers.pop(name, None)
        if not chunks:
            return
        record = self.table.lookup(name)
        total = sum(len(c) if isinstance(c, bytes) else c for c in chunks)
        data: bytes | None = None
        if all(isinstance(c, bytes) for c in chunks):
            data = b"".join(chunks)  # type: ignore[arg-type]
        shortfall = record.size + total - record.allocated_bytes
        if shortfall > 0:
            # The whole buffered amount is allocated at once: delayed
            # allocation turns N append requests into one large one.
            for ext in self._allocate_under_pressure(
                    self.allocator.allocate_full, shortfall):
                record.add_extent(ext)
        span = _slice_extents(record.extents, record.size, total)
        self.device.write_extents(span, data)
        record.size += total

    def preallocate(self, name: str, expected_size: int) -> None:
        """Size-hint interface: reserve (best-effort contiguous) space.

        This is the interface change the paper proposes in its
        conclusions: pass the known object size at creation.  Subsequent
        appends fill the reservation instead of allocating per request.
        """
        if expected_size <= 0:
            raise ConfigError("expected_size must be positive")
        record = self.table.lookup(name)
        if record.size or record.extents:
            raise FsError("preallocate requires an empty file")
        for ext in self._allocate_under_pressure(
                self.allocator.allocate_full, expected_size):
            record.add_extent(ext)

    def truncate_slack(self, name: str) -> None:
        """Release allocated-but-unwritten clusters past end of file."""
        record = self.table.lookup(name)
        self._flush_buffers(name)
        keep = _round_up_to(record.size, self.config.cluster_size)
        excess = record.allocated_bytes - keep
        if excess <= 0:
            return
        trimmed: list[Extent] = []
        freed: list[Extent] = []
        remaining = keep
        for ext in record.extents:
            if remaining >= ext.length:
                trimmed.append(ext)
                remaining -= ext.length
            elif remaining > 0:
                head, tail = ext.take_front(remaining)
                trimmed.append(head)
                if tail is not None:
                    freed.append(tail)
                remaining = 0
            else:
                freed.append(ext)
        record.extents[:] = trimmed
        self.journal.log_operation(frees=freed)

    def read(self, name: str, offset: int = 0,
             length: int | None = None) -> bytes | None:
        """Timed read of ``[offset, offset+length)`` of the file."""
        self._flush_buffers(name)
        record = self.table.lookup(name)
        if length is None:
            length = record.size - offset
        if offset < 0 or length < 0 or offset + length > record.size:
            raise FsError(
                f"read [{offset}, {offset + length}) outside file of "
                f"{record.size} bytes"
            )
        if length == 0:
            return b"" if self.device.stores_data else None
        span = _slice_extents(record.extents, offset, length)
        return self.device.read_extents(span)

    def fsync(self, name: str) -> None:
        """Force the file's data to the platter."""
        self._flush_buffers(name)
        self.device.flush()

    # ------------------------------------------------------------------
    # Safe writes (Section 4)
    # ------------------------------------------------------------------
    def safe_write(self, name: str, *, size: int | None = None,
                   data: bytes | None = None,
                   write_request: int = DEFAULT_WRITE_REQUEST,
                   size_hint: bool = False) -> None:
        """Atomically replace ``name`` with new contents.

        Writes a temp file in ``write_request``-byte appends, forces it,
        then renames it over the target — the protocol the paper uses so
        NTFS matches the database's update semantics.  With
        ``size_hint=True`` the temp file is preallocated at its final
        size first (the paper's proposed interface).
        """
        if (size is None) == (data is None):
            raise ConfigError("pass exactly one of size or data")
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        if total <= 0:
            raise ConfigError("safe_write size must be positive")
        self._tmp_seq += 1
        tmp = f"{name}.tmp{self._tmp_seq}"
        self.create(tmp)
        if size_hint:
            self.preallocate(tmp, total)
        cursor = 0
        while cursor < total:
            chunk = min(write_request, total - cursor)
            if data is not None:
                self.append(tmp, data=data[cursor: cursor + chunk])
            else:
                self.append(tmp, nbytes=chunk)
            cursor += chunk
        self._crash("safe_write:after_data")
        self.fsync(tmp)
        self._crash("safe_write:after_fsync")
        self.rename(tmp, name)

    def _crash(self, label: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(label)

    # ------------------------------------------------------------------
    # Crash recovery (the "mount after crash" path)
    # ------------------------------------------------------------------
    def recover_after_crash(self) -> RecoveryReport:
        """Replay or discard in-flight frees per the deferred-free rule.

        Journal frees whose commit was durable are replayed into the
        free index; frees whose log record never hit the platter are
        discarded — their deletes never happened, so the space stays
        unallocatable and is tracked in :attr:`orphaned_extents` (the
        real volume still holds those files).  Delayed-allocation
        buffers are volatile and are dropped, like a page cache.
        """
        self._write_buffers.clear()
        report = self.journal.recover()
        self.orphaned_extents.extend(report.discarded)
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.device.geometry.capacity

    @property
    def data_capacity(self) -> int:
        return self.capacity - self.data_start

    @property
    def free_bytes(self) -> int:
        """Allocatable bytes (committed free space only)."""
        return self.free_index.total_free

    @property
    def used_bytes(self) -> int:
        return (self.data_capacity - self.free_bytes
                - self.journal.pending_free_bytes)

    def occupancy(self) -> float:
        """Fraction of the data area unavailable for allocation."""
        return 1.0 - self.free_index.total_free / self.data_capacity

    def check_invariants(self) -> None:
        """Free index is sane and every file's run list is consistent."""
        self.free_index.check_invariants()
        for record in self.table:
            record.check_invariants()


def _round_up_to(value: int, multiple: int) -> int:
    return -(-value // multiple) * multiple


def _slice_extents(extents: list[Extent], offset: int,
                   length: int) -> list[Extent]:
    """Map a logical byte range to physical extents."""
    out: list[Extent] = []
    logical = 0
    remaining = length
    for ext in extents:
        ext_lo = logical
        logical += ext.length
        if logical <= offset:
            continue
        start_in_ext = max(0, offset - ext_lo)
        take = min(ext.length - start_in_ext, remaining)
        if take <= 0:
            break
        out.append(Extent(ext.start + start_in_ext, take))
        remaining -= take
        if remaining == 0:
            break
    return out
