"""Storage age: the paper's time axis.

Section 4.4 defines storage age as *"the ratio of bytes in objects that
once existed on a volume to the number of bytes in use on the volume"* —
for the safe-write workload, "safe writes per object".  Unlike elapsed
time or total work, it is independent of volume size, update strategy,
and hardware, so curves from different systems are comparable.

:class:`StorageAgeTracker` accumulates the ratio from allocation events.
It can also translate a *target* age into the number of churn operations
required, which is how the experiment driver schedules its sampling
points (ages 0, 2, 4 for Figures 1/4; 0..10 for Figures 2/3/5/6).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StorageAgeTracker:
    """Event-fed storage-age accumulator."""

    live_bytes: int = 0
    dead_bytes: int = 0
    puts: int = 0
    deletes: int = 0
    overwrites: int = 0
    _history: list[tuple[int, float]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Event feed
    # ------------------------------------------------------------------
    def on_put(self, size: int) -> None:
        self.live_bytes += size
        self.puts += 1

    def on_delete(self, size: int) -> None:
        self.live_bytes -= size
        self.dead_bytes += size
        self.deletes += 1

    def on_overwrite(self, old_size: int, new_size: int) -> None:
        """A safe write: the old version's bytes become dead."""
        self.dead_bytes += old_size
        self.live_bytes += new_size - old_size
        self.overwrites += 1

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    @property
    def storage_age(self) -> float:
        """Dead bytes over live bytes (0 on an empty or fresh volume)."""
        if self.live_bytes <= 0:
            return 0.0
        return self.dead_bytes / self.live_bytes

    def record_history(self) -> None:
        """Append (total events, current age) for later inspection."""
        events = self.puts + self.deletes + self.overwrites
        self._history.append((events, self.storage_age))

    @property
    def history(self) -> list[tuple[int, float]]:
        return list(self._history)

    def overwrites_to_reach(self, target_age: float,
                            mean_object_size: float | None = None) -> int:
        """Estimate safe writes needed to reach ``target_age``.

        Each overwrite adds one object's bytes to the dead count, so with
        n live objects the age advances by about 1/n per overwrite.
        """
        if target_age <= self.storage_age:
            return 0
        if self.live_bytes <= 0:
            return 0
        size = mean_object_size
        if size is None:
            denominator = max(1, self.puts)
            size = self.live_bytes / denominator
        deficit_bytes = target_age * self.live_bytes - self.dead_bytes
        return max(0, round(deficit_bytes / size))
