"""Defragmentation utilities.

The paper's conclusions: "When fragmentation is a significant concern,
the system must be defragmented regularly.  However, defragmentation may
require additional application logic and imposes read/write performance
impacts that can outweigh its benefits."  These tools let the benches
quantify both sides:

* For the filesystem backend, an NTFS-defragmenter-style **move**: read
  the file, allocate best-effort contiguous space, rewrite, free the old
  runs.  Supports full and budget-limited (incremental, most-fragmented-
  first) passes, like the Windows online defragmenter.
* For the database backend, the procedure Microsoft recommended to the
  authors (Section 5.3): rebuild — copy every BLOB out and back in after
  draining ghost pages, so the address-ordered allocator repacks them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.extent import coalesce
from repro.backends.base import ObjectStore
from repro.backends.blob_backend import BlobBackend
from repro.backends.file_backend import FileBackend
from repro.core.fragmentation import fragment_counts
from repro.errors import AllocationError, ConfigError


@dataclass
class DefragStats:
    """What a defragmentation pass did and what it cost."""

    objects_examined: int = 0
    objects_moved: int = 0
    bytes_moved: int = 0
    fragments_before: int = 0
    fragments_after: int = 0

    @property
    def improvement(self) -> float:
        """Fraction of fragments eliminated."""
        if self.fragments_before == 0:
            return 0.0
        return 1.0 - self.fragments_after / max(1, self.fragments_before)


class Defragmenter:
    """Backend-aware defragmentation passes."""

    def __init__(self, store: ObjectStore) -> None:
        self.store = store

    # ------------------------------------------------------------------
    def run(self, *, budget_bytes: int | None = None,
            min_fragments: int = 2) -> DefragStats:
        """One pass: most-fragmented objects first, optional byte budget.

        ``min_fragments`` skips objects already at or below that count
        (1 = fully contiguous).
        """
        counts = fragment_counts(self.store)
        stats = DefragStats(
            fragments_before=sum(counts.values()),
        )
        order = sorted(counts, key=lambda k: counts[k], reverse=True)
        for key in order:
            if counts[key] < min_fragments:
                break
            stats.objects_examined += 1
            size = self.store.meta(key).size
            if budget_bytes is not None and \
                    stats.bytes_moved + size > budget_bytes:
                continue
            if self._move(key, size):
                stats.objects_moved += 1
                stats.bytes_moved += size
        stats.fragments_after = sum(fragment_counts(self.store).values())
        return stats

    # ------------------------------------------------------------------
    def _move(self, key: str, size: int) -> bool:
        if isinstance(self.store, FileBackend):
            return self._move_file(self.store, key, size)
        if isinstance(self.store, BlobBackend):
            return self._move_blob(self.store, key, size)
        raise ConfigError(
            f"no defragmentation strategy for backend {self.store.name!r}"
        )

    @staticmethod
    def _move_file(store: FileBackend, key: str, size: int) -> bool:
        """NTFS-style file move: new contiguous allocation, then switch."""
        fs = store.fs
        row = store.meta_table.get(key)
        name = row["path"]
        record = fs.table.lookup(name)
        old_extents = list(record.extents)
        # Force pending frees into the pool so the mover sees all space.
        fs.journal.commit()
        try:
            new_extents = fs.allocator.allocate_full(size)
        except AllocationError:
            return False
        if len(coalesce(new_extents)) >= len(coalesce(old_extents)):
            # No improvement available; put the space back.
            for ext in new_extents:
                fs.free_index.add(ext)
            return False
        data = fs.device.read_extents(old_extents)      # read old copy
        fs.device.write_extents(new_extents, data)      # write new copy
        fs.device.flush()
        record.extents[:] = []
        for ext in new_extents:
            record.add_extent(ext)
        fs.journal.log_operation(frees=old_extents)
        return True

    @staticmethod
    def _move_blob(store: BlobBackend, key: str, size: int) -> bool:
        """Rebuild-style move: drain ghosts, then rewrite the BLOB."""
        db = store.db
        row = store.meta_table.get(key)
        db.ghost.drain()  # make every reclaimable page visible first
        data = db.get_blob(row["blob_id"])
        new_id = db.replace_blob(row["blob_id"],
                                 size=None if data is not None else size,
                                 data=data)
        store.meta_table.update(key, {"blob_id": new_id})
        db.ghost.drain()
        return True


def rebuild_database(store: BlobBackend) -> DefragStats:
    """The recommended SQL Server BLOB "defragmentation" (Section 5.3):
    create a new table in a new filegroup, copy the old records to the
    new table, and drop the old table.

    The copy targets a *clean* filegroup, so the new table bulk-loads
    contiguously; dropping the old table then frees the old filegroup
    wholesale.  With a single data file we model the same effect by
    staging the copies (read every BLOB, charge the reads), dropping
    the old rows (drain the ghosts), and bulk-inserting the copies into
    the now-empty low region — the address-ordered allocator packs them
    exactly as the fresh filegroup would.  The I/O charged matches the
    real procedure: one full read plus one full sequential write of the
    table.
    """
    stats = DefragStats()
    counts = fragment_counts(store)
    stats.fragments_before = sum(counts.values())
    db = store.db

    # Phase 1: read every record out (the copy's read half), in
    # physical order like a table scan.
    def first_offset(key: str) -> int:
        extents = store.object_extents(key)
        return extents[0].start if extents else 0

    staged: list[tuple[str, int, bytes | None]] = []
    for key in sorted(store.keys(), key=first_offset):
        stats.objects_examined += 1
        row = store.meta_table.get(key)
        staged.append((key, row["size"], db.get_blob(row["blob_id"])))

    # Phase 2: drop the old table — every old BLOB's space frees.
    for key, _, _ in staged:
        row = store.meta_table.get(key)
        db.delete_blob(row["blob_id"], commit=False)
    db.ghost.drain()
    db.commit()

    # Phase 3: bulk-insert into the clean space (the copy's write half).
    for key, size, data in staged:
        if data is not None:
            new_id = db.put_blob(data=data, commit=False)
        else:
            new_id = db.put_blob(size=size, commit=False)
        store.meta_table.update(key, {"blob_id": new_id})
        stats.objects_moved += 1
        stats.bytes_moved += size
    db.commit()
    stats.fragments_after = sum(fragment_counts(store).values())
    return stats
