"""Fragmentation measurement: extent maps and on-disk markers.

The paper's metric is **fragments per object**: the number of maximal
physically contiguous runs holding an object's bytes (a contiguous
object has 1 fragment — Figure 2's caption).

Two analyzers are provided:

* **Extent-map analysis** (:func:`fragment_counts`,
  :func:`fragment_report`) asks the backend for each object's physical
  extents and coalesces them.  Exact and fast; works for every backend
  in this library.
* **Marker scanning** (:func:`make_marker_content`,
  :class:`MarkerScanner`) reimplements the paper's tool (Section 5.3):
  objects are tagged "with a unique identifier and a sequence number at
  1KB intervals", the volume image is scanned for the markers, and
  fragment counts are reconstructed from where consecutive sequence
  numbers land physically.  It needs no cooperation from the storage
  system — the paper used it because SQL Server's defragmentation
  reports ignore BLOB data — and the test suite validates it against
  the extent-map analyzer the way the paper validated against the NTFS
  defragmentation utility.
"""

from __future__ import annotations

import statistics
import struct
from dataclasses import dataclass, field

from repro.alloc.extent import coalesce
from repro.backends.base import ObjectStore
from repro.disk.device import BlockDevice
from repro.errors import ConfigError
from repro.units import KB

#: Marker wire format: magic, object id, version, sequence number.  The
#: version distinguishes the live copy from stale copies of the same
#: object lingering in deallocated space after safe writes.
_MARKER_MAGIC = b"FRAG"
_MARKER_STRUCT = struct.Struct(">4sQIQ")
MARKER_BYTES = _MARKER_STRUCT.size
DEFAULT_MARKER_INTERVAL = 1 * KB


# ----------------------------------------------------------------------
# Extent-map analysis
# ----------------------------------------------------------------------
def fragment_counts(store: ObjectStore) -> dict[str, int]:
    """Fragments per object for every object in the store."""
    counts: dict[str, int] = {}
    for key in store.keys():
        extents = store.object_extents(key)
        counts[key] = len(coalesce(extents))
    return counts


@dataclass
class FragmentReport:
    """Distribution summary of fragments/object across a store."""

    counts: dict[str, int] = field(default_factory=dict)

    @property
    def objects(self) -> int:
        return len(self.counts)

    @property
    def total_fragments(self) -> int:
        return sum(self.counts.values())

    @property
    def mean(self) -> float:
        """Fragments per object — the paper's y-axis."""
        if not self.counts:
            return 0.0
        return self.total_fragments / len(self.counts)

    @property
    def median(self) -> float:
        if not self.counts:
            return 0.0
        return float(statistics.median(self.counts.values()))

    @property
    def max(self) -> int:
        return max(self.counts.values(), default=0)

    @property
    def contiguous_fraction(self) -> float:
        """Share of objects stored in a single fragment."""
        if not self.counts:
            return 0.0
        ones = sum(1 for c in self.counts.values() if c == 1)
        return ones / len(self.counts)

    def histogram(self, bins: list[int] | None = None) -> dict[str, int]:
        """Counts of objects by fragment-count bucket."""
        if bins is None:
            bins = [1, 2, 4, 8, 16, 32, 64]
        labels = {}
        values = sorted(self.counts.values())
        previous = 0
        for edge in bins:
            labels[f"<={edge}"] = sum(
                1 for v in values if previous < v <= edge
            )
            previous = edge
        labels[f">{bins[-1]}"] = sum(1 for v in values if v > bins[-1])
        return labels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FragmentReport(objects={self.objects}, mean={self.mean:.2f}, "
            f"median={self.median:.1f}, max={self.max})"
        )


def fragment_report(store: ObjectStore) -> FragmentReport:
    """Full distribution report from the store's extent maps."""
    return FragmentReport(counts=fragment_counts(store))


# ----------------------------------------------------------------------
# Marker-based analysis (the paper's tool)
# ----------------------------------------------------------------------
def make_marker_content(object_id: int, size: int, *, version: int = 1,
                        interval: int = DEFAULT_MARKER_INTERVAL) -> bytes:
    """Build object content tagged at every ``interval`` bytes.

    Each tag carries the object id, a version, and a running sequence
    number; the space between tags is filler.  ``size`` need not be a
    multiple of the interval — the tail simply carries no final marker.
    """
    if size <= 0:
        raise ConfigError("size must be positive")
    if interval < MARKER_BYTES:
        raise ConfigError(f"interval must be >= {MARKER_BYTES}")
    out = bytearray(size)
    seq = 0
    for pos in range(0, size - MARKER_BYTES + 1, interval):
        out[pos: pos + MARKER_BYTES] = _MARKER_STRUCT.pack(
            _MARKER_MAGIC, object_id, version, seq
        )
        seq += 1
    return bytes(out)


@dataclass
class MarkerHit:
    object_id: int
    version: int
    seq: int
    device_offset: int


class MarkerScanner:
    """Scan a device image for markers and reconstruct fragmentation.

    The scan probes every ``interval``-aligned offset, which is correct
    for all backends here: clusters (4 KB), pages (8 KB), and write
    requests (64 KB) are all multiples of the 1 KB marker interval, so
    markers written at interval-aligned logical offsets stay aligned on
    disk.
    """

    def __init__(self, device: BlockDevice, *,
                 interval: int = DEFAULT_MARKER_INTERVAL) -> None:
        if not device.stores_data:
            raise ConfigError(
                "marker scanning requires a device with store_data=True"
            )
        self.device = device
        self.interval = interval

    def scan(self) -> list[MarkerHit]:
        """All marker hits on the volume, by device offset."""
        hits: list[MarkerHit] = []
        capacity = self.device.geometry.capacity
        chunk = 4 * 1024 * 1024
        for base in range(0, capacity, chunk):
            length = min(chunk, capacity - base)
            raw = self.device.peek(base, length)
            for pos in range(0, length - MARKER_BYTES + 1, self.interval):
                if raw[pos: pos + 4] != _MARKER_MAGIC:
                    continue
                magic, object_id, version, seq = _MARKER_STRUCT.unpack(
                    raw[pos: pos + MARKER_BYTES]
                )
                hits.append(MarkerHit(object_id, version, seq, base + pos))
        return hits

    def fragment_counts(self, *, live_ids: set[int] | None = None
                        ) -> dict[int, int]:
        """Fragments per object id, from marker adjacency.

        Consecutive sequence numbers whose physical distance equals the
        marker interval are in the same fragment; any other distance is
        a fragment boundary.  ``live_ids`` filters out markers left in
        deallocated space by *deleted* objects; stale copies of live
        objects (freed by safe writes but not yet overwritten) are
        filtered by version — only each object's newest version counts.
        """
        by_object: dict[int, list[MarkerHit]] = {}
        for hit in self.scan():
            if live_ids is not None and hit.object_id not in live_ids:
                continue
            by_object.setdefault(hit.object_id, []).append(hit)
        counts: dict[int, int] = {}
        for object_id, object_hits in by_object.items():
            newest = max(hit.version for hit in object_hits)
            per_seq: dict[int, int] = {}
            for hit in object_hits:
                if hit.version == newest:
                    per_seq[hit.seq] = hit.device_offset
            seqs = sorted(per_seq)
            fragments = 1
            for prev, cur in zip(seqs, seqs[1:]):
                gap_seq = cur - prev
                gap_bytes = per_seq[cur] - per_seq[prev]
                if gap_bytes != gap_seq * self.interval:
                    fragments += 1
            counts[object_id] = fragments
        return counts

    def report(self, *, live_ids: set[int] | None = None) -> FragmentReport:
        counts = self.fragment_counts(live_ids=live_ids)
        return FragmentReport(
            counts={str(object_id): c for object_id, c in counts.items()}
        )
