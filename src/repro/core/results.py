"""Result containers for aging experiments, with (de)serialization.

A run produces one :class:`RunResult`: the configuration echo, the
bulk-load phase, and one :class:`AgeSample` per sampled storage age.
Everything round-trips through plain dicts so benches can cache results
as JSON and EXPERIMENTS.md can be regenerated from saved runs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.units import MB


@dataclass
class AgeSample:
    """Measurements taken at one storage age."""

    age: float
    fragments_per_object: float
    fragments_median: float
    fragments_max: int
    read_mbps: float
    #: Average write throughput over the churn interval that *ended* at
    #: this age (the paper: "the storage age two write performance is
    #: the average write throughput between the bulk load and the
    #: storage age two read measurements").  For age 0 this is the
    #: bulk-load write throughput.
    write_mbps: float
    occupancy: float
    overwrites: int
    seeks_per_read: float = 0.0
    #: Read throughput over the *overlapped* wall-time model (shard
    #: device lanes run concurrently; see repro.disk.schedule).  Equals
    #: ``read_mbps`` — the summed serial model — for single-volume
    #: stores and sharded stores without ``overlap=true``, so records
    #: always report both time models side by side.
    read_wall_mbps: float = 0.0
    #: Summed device+CPU seconds and overlapped wall seconds of the
    #: read sweep behind ``read_mbps``/``read_wall_mbps``.
    read_device_s: float = 0.0
    read_wall_s: float = 0.0
    #: Fault-tolerance counters, cumulative as of this sample (see
    #: :class:`~repro.backends.base.StoreStats`); all zero for healthy
    #: or unsharded runs.
    degraded_reads: int = 0
    retries: int = 0
    failovers: int = 0
    rebuilt_objects: int = 0
    #: Shards permanently lost as of this sample.
    dead_shards: int = 0
    #: Per-request sojourn latency of the read sweep (event-queue
    #: stores only; all zero when the store runs no event scheduler).
    #: Percentile estimates carry the histogram's documented <= 5%
    #: relative error; ``read_lat_max_s`` is exact.
    read_lat_count: int = 0
    read_lat_p50_s: float = 0.0
    read_lat_p95_s: float = 0.0
    read_lat_p99_s: float = 0.0
    read_lat_max_s: float = 0.0
    #: Scenario runs only: global sojourn summary of the scenario op
    #: interval that ended at this sample (a
    #: :meth:`~repro.disk.events.LatencyHistogram.summary` dict), and
    #: the same split per tenant.  When every op in the interval was
    #: tenant-tagged the per-tenant counts sum to the global count —
    #: the reconciliation invariant the scenario suite pins.  Empty
    #: for non-scenario runs and for the age-0 sample (no interval).
    scenario_lat: dict[str, float] = field(default_factory=dict)
    tenant_lat: dict[str, dict[str, float]] = field(default_factory=dict)

    def row(self) -> dict[str, float]:
        return {
            "age": round(self.age, 3),
            "frags/obj": round(self.fragments_per_object, 2),
            "read MB/s": round(self.read_mbps / MB, 2),
            "write MB/s": round(self.write_mbps / MB, 2),
        }


@dataclass
class RunResult:
    """One full aging run of one backend."""

    backend: str
    label: str
    config: dict
    samples: list[AgeSample] = field(default_factory=list)
    bulk_load_write_mbps: float = 0.0
    objects_loaded: int = 0
    live_bytes: int = 0

    # ------------------------------------------------------------------
    def sample_at(self, age: float, *, tol: float = 0.26) -> AgeSample:
        """The sample closest to ``age`` (must be within ``tol``)."""
        best = min(self.samples, key=lambda s: abs(s.age - age))
        if abs(best.age - age) > tol:
            raise KeyError(f"no sample near age {age} in {self.label}")
        return best

    def series(self, attr: str) -> list[tuple[float, float]]:
        """(age, value) pairs for one sample attribute."""
        return [(s.age, getattr(s, attr)) for s in self.samples]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "label": self.label,
            "config": self.config,
            "bulk_load_write_mbps": self.bulk_load_write_mbps,
            "objects_loaded": self.objects_loaded,
            "live_bytes": self.live_bytes,
            "samples": [asdict(s) for s in self.samples],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "RunResult":
        samples = [AgeSample(**s) for s in raw.get("samples", [])]
        return cls(
            backend=raw["backend"],
            label=raw["label"],
            config=raw.get("config", {}),
            samples=samples,
            bulk_load_write_mbps=raw.get("bulk_load_write_mbps", 0.0),
            objects_loaded=raw.get("objects_loaded", 0),
            live_bytes=raw.get("live_bytes", 0),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "RunResult":
        return cls.from_dict(json.loads(Path(path).read_text()))
