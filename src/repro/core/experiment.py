"""The aging-experiment driver behind every figure.

One run = one backend, one volume, one workload: bulk load to the target
occupancy (storage age 0), then alternate churn intervals and sampling
points.  At each sampled age the driver records fragments/object (extent
maps), a timed random-read sweep, and the average write throughput of
the churn interval that led here — matching how the paper pairs its
read and write measurements (Section 5.3).

The configuration defaults are scaled-down versions of the paper's
(DESIGN.md Section 3): the free-object pool and the request-size ratios
that drive fragmentation are preserved while volumes shrink from 400 GB
to single-digit GB so a run takes seconds, not a week.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from repro.alloc.freelist import INDEX_KINDS

from repro.backends.base import ObjectStore
from repro.backends.registry import backend_names, build_store, resolve_spec
from repro.backends.spec import StoreSpec
from repro.core.fragmentation import fragment_report
from repro.core.results import AgeSample, RunResult
from repro.core.throughput import measure, measure_read_throughput
from repro.core.workload import (
    SizeDistribution,
    WorkloadSpec,
    WorkloadState,
    bulk_load,
    churn_to_age,
)
from repro.db.database import DbConfig
from repro.errors import ConfigError
from repro.fs.filesystem import FsConfig
from repro.persist import (
    CheckpointManager,
    cross_check,
    decode_free_index,
    encode_free_index,
    encode_journal,
    fs_components,
    rebuild_fs_free_index,
    verify_journal,
)
from repro.rng import substream
from repro.scenario.engine import (
    ScenarioState,
    scenario_bulk_load,
    scenario_to_age,
)
from repro.scenario.spec import ScenarioSpec
from repro.units import DEFAULT_WRITE_REQUEST, GB, fmt_size

#: Manifest tag of experiment checkpoints (see ``_save_checkpoint``).
#: Bumped whenever the config record or sample schema grows (``/2``:
#: ``rebalance_ages`` and wall-time fields; ``/3``: fault-tolerance —
#: ``rebuild_ages``, spec ``replicas``/``faults``/``rebuild_rate``, and
#: degradation counters in samples; ``/4``: event queue — spec
#: ``queue``/``queue_depth``/``arrival`` and read-latency percentiles
#: in samples; ``/5``: pickle layout — ``slots=True`` on Zone,
#: DiskGeometry, DevicePolicy, ArrivalSpec, and ShardScheduler changes
#: their pickled state from ``__dict__`` to slot tuples; ``/6``:
#: continuous operation — the spec gains ``rebalance_rate``/
#: ``checkpoint_rate`` (recorded in the config dict), ShardedStore
#: carries both as pickled attributes, and with ``checkpoint_rate > 0``
#: each checkpoint charges its predecessor's write-back through the
#: store's devices before pickling; ``/7``: scenario engine — the
#: config records an optional ``scenario`` spec, the payload carries a
#: pickled :class:`~repro.scenario.engine.ScenarioState`, samples gain
#: ``scenario_lat``/``tenant_lat``, ``WindowStats`` gains
#: ``lat_mean_s``/``tenant_lat``, and ``EventRequest``/``EventWindow``/
#: ``EventScheduler`` carry tenant-tag state): older checkpoints hash
#: differently and must be refused with a schema error, not a config
#: mismatch.
CHECKPOINT_SCHEMA = "run-checkpoint/7"

#: Every registered backend, derived from the registry — not a
#: hand-maintained tuple.  Includes the ``sharded`` composite.
BACKENDS = backend_names()


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one curve of one figure.

    Two construction paths:

    * **Spec path** (preferred): pass ``store=StoreSpec(...)`` — the
      spec names the backend, volume, device policy, per-backend
      options, and shard layout; ``backend``/``volume_bytes``/
      ``write_request``/``store_data`` are derived from it.
    * **Legacy path**: pass ``backend=`` plus the historical one-off
      fields (``index_kind``, ``fs_config``, ``db_config``,
      ``size_hints``).  :meth:`resolved_spec` folds them into the
      equivalent :class:`StoreSpec`, so both paths build identical
      stores.
    """

    backend: str = ""
    sizes: SizeDistribution | None = None
    volume_bytes: int = 2 * GB
    occupancy: float = 0.5
    write_request: int = DEFAULT_WRITE_REQUEST
    ages: tuple[float, ...] = (0.0, 2.0, 4.0)
    #: Whole-object reads per sampling point.
    reads_per_sample: int = 64
    seed: int = 42
    #: Store real bytes on the device (marker analysis; test scale only).
    store_data: bool = False
    #: Use the size-hint interface (filesystem backend only).  Legacy;
    #: spec path: option ``size_hints``.
    size_hints: bool = False
    #: Free-space engine ablation: "tiered"/"naive" overrides the
    #: filesystem backend's index; None keeps the fs_config default.
    #: Legacy; spec path: option ``index_kind``.
    index_kind: str | None = None
    fs_config: FsConfig | None = None
    db_config: DbConfig | None = None
    label: str = ""
    #: Declarative store description; when set, it is authoritative for
    #: everything the legacy per-backend fields used to carry.
    store: StoreSpec | None = None
    #: Sampled ages after which the driver rebalances a sharded store
    #: (mode="even" occupancy-levelling migration; see
    #: :meth:`repro.backends.sharded.ShardedStore.rebalance`).  Must be
    #: a subset of ``ages``; ignored-with-error for unsharded stores.
    rebalance_ages: tuple[float, ...] = ()
    #: Sampled ages after which the driver runs a background
    #: :meth:`~repro.backends.sharded.ShardedStore.rebuild` pass,
    #: re-replicating under-replicated objects (throttled by the spec's
    #: ``rebuild_rate``).  Must be a subset of ``ages``; needs a sharded
    #: store.  Shard-loss fault clauses (``loss:...at_age=A``) fire
    #: right after the sample at age ``A`` and before any rebuild, so
    #: the sample at the loss age still sees the healthy store and the
    #: next one the degraded (or rebuilt) one.
    rebuild_ages: tuple[float, ...] = ()
    #: Multi-tenant scenario replacing the paper's single-tenant churn
    #: (see :mod:`repro.scenario`).  With a scenario set, ``sizes`` may
    #: be omitted — it defaults to the scenario's share-weighted mean
    #: object size (used only for planning labels; each tenant draws
    #: from its own distribution).
    scenario: ScenarioSpec | None = None

    def __post_init__(self) -> None:
        if self.sizes is None:
            if self.scenario is None:
                raise ConfigError("a size distribution is required")
            from repro.core.workload import ConstantSize

            mean = max(1, round(self.scenario.mean_object_size))
            object.__setattr__(self, "sizes", ConstantSize(mean))
        if self.store is not None:
            if self.backend and self.backend != self.store.backend:
                raise ConfigError(
                    f"backend {self.backend!r} conflicts with store spec "
                    f"backend {self.store.backend!r}"
                )
            if (self.index_kind is not None or self.fs_config is not None
                    or self.db_config is not None or self.size_hints):
                raise ConfigError(
                    "per-backend knobs (index_kind/fs_config/db_config/"
                    "size_hints) go inside the StoreSpec options when "
                    "store= is given"
                )
            object.__setattr__(self, "backend", self.store.backend)
            object.__setattr__(self, "volume_bytes",
                               self.store.volume_bytes)
            object.__setattr__(self, "write_request",
                               self.store.write_request)
            object.__setattr__(self, "store_data", self.store.store_data)
        elif self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if not self.ages or list(self.ages) != sorted(self.ages):
            raise ConfigError("ages must be a non-empty ascending sequence")
        if self.rebalance_ages:
            missing = set(self.rebalance_ages) - set(self.ages)
            if missing:
                raise ConfigError(
                    f"rebalance_ages {sorted(missing)} are not sampled "
                    "ages; rebalancing happens after a sample"
                )
            resolved = self.resolved_spec()
            if resolved.shards <= 1 and resolved.backend != "sharded":
                raise ConfigError(
                    "rebalance_ages needs a sharded store (shards > 1)"
                )
        if self.rebuild_ages:
            missing = set(self.rebuild_ages) - set(self.ages)
            if missing:
                raise ConfigError(
                    f"rebuild_ages {sorted(missing)} are not sampled "
                    "ages; rebuild happens after a sample"
                )
            resolved = self.resolved_spec()
            if resolved.shards <= 1 and resolved.backend != "sharded":
                raise ConfigError(
                    "rebuild_ages needs a sharded store (shards > 1)"
                )
        if self.index_kind is not None and self.index_kind not in INDEX_KINDS:
            raise ConfigError(
                f"unknown index_kind {self.index_kind!r}; "
                f"choose from {INDEX_KINDS}"
            )

    def display_label(self) -> str:
        if self.label:
            return self.label
        shards = self.store.shards if self.store is not None else 1
        backend = self.backend if shards <= 1 else \
            f"{self.backend}x{shards}"
        middle = (self.scenario.text() if self.scenario is not None
                  else str(self.sizes))
        return (f"{backend}/{middle}"
                f"/{fmt_size(self.volume_bytes)}@{self.occupancy:.0%}")

    def resolved_spec(self) -> StoreSpec:
        """The :class:`StoreSpec` this configuration builds.

        The spec path returns ``store`` verbatim; the legacy path folds
        the historical one-off fields into equivalent options, so the
        two paths are interchangeable at the registry.
        """
        if self.store is not None:
            return self.store
        options: dict = {}
        if self.backend == "filesystem":
            if self.fs_config is not None:
                options["fs_config"] = self.fs_config
            if self.index_kind is not None:
                options["index_kind"] = self.index_kind
            if self.size_hints:
                options["size_hints"] = True
        elif self.backend == "database":
            if self.db_config is not None:
                options["db_config"] = self.db_config
        return StoreSpec(
            backend=self.backend,
            volume_bytes=self.volume_bytes,
            write_request=self.write_request,
            store_data=self.store_data,
            options=options,
        )

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "sizes": str(self.sizes),
            "volume_bytes": self.volume_bytes,
            "occupancy": self.occupancy,
            "write_request": self.write_request,
            "ages": list(self.ages),
            "reads_per_sample": self.reads_per_sample,
            "seed": self.seed,
            "size_hints": self.size_hints,
            "index_kind": self.effective_index_kind(),
            "rebalance_ages": list(self.rebalance_ages),
            "rebuild_ages": list(self.rebuild_ages),
            "scenario": (self.scenario.to_dict()
                         if self.scenario is not None else None),
            # The fully resolved spec (converted options, desugared
            # composite, device policy, shard layout) so a result file
            # alone attributes any ablation.
            "store": resolve_spec(self.resolved_spec()).to_dict(),
        }

    def effective_index_kind(self) -> str | None:
        """The free-space engine the store will actually run.

        None for backends that do not use the free-extent index at all,
        so recorded run configs never misattribute an ablation.  Follows
        the spec path too: a sharded filesystem spec reports the engine
        its shards run.
        """
        spec = resolve_spec(self.resolved_spec())
        if spec.backend != "filesystem":
            return None
        kind = spec.option("index_kind")
        if kind is not None:
            return kind
        fs_config = spec.option("fs_config")
        return (fs_config or FsConfig()).index_kind


def make_store(config: ExperimentConfig) -> ObjectStore:
    """Deprecated shim: build the store a configuration describes.

    New code should go through the registry::

        from repro.backends import build_store
        store = build_store(config.resolved_spec())

    Kept because the seed's driver exposed it publicly; emits a
    :class:`DeprecationWarning` and builds the identical store.
    """
    warnings.warn(
        "make_store(config) is deprecated; use "
        "repro.backends.build_store(config.resolved_spec())",
        DeprecationWarning, stacklevel=2,
    )
    return build_store(config.resolved_spec())


@dataclass
class ExperimentRunner:
    """Runs one configuration end to end.

    With ``checkpoint_dir`` set, a resumable checkpoint is written after
    every sampled age (see ``_save_checkpoint`` for the format); with
    ``resume=True`` the runner restores the newest valid checkpoint in
    that directory — cross-checking the restored free index against its
    byte-stable snapshot *and* a rebuild from the extent maps — and
    continues with the remaining ages.  A resumed run reproduces the
    uninterrupted run's record exactly: all state, including RNG
    streams and per-device IoStats, travels with the checkpoint.
    """

    config: ExperimentConfig
    #: Optional progress callback: (phase_name, detail_float).
    progress: object = None
    store: ObjectStore | None = None
    state: WorkloadState | None = None
    #: Scenario-mode driver state (None for paper-loop runs); pickled
    #: whole inside the checkpoint so resumed scenario runs replay the
    #: identical op stream.
    scenario_state: ScenarioState | None = None
    #: Directory for resumable checkpoints; None disables them.
    checkpoint_dir: str | Path | None = None
    #: Restore from ``checkpoint_dir`` before running (fresh run when
    #: the directory holds no valid checkpoint).
    resume: bool = False
    #: Checkpoint retention: published heads to keep (plus whatever
    #: their delta chains still need; see CheckpointManager).
    checkpoint_keep: int = 2
    #: Full-snapshot cadence: every Nth checkpoint is self-contained,
    #: the ones between are stored as deltas against their predecessor.
    checkpoint_full_interval: int = 4
    _read_rng_seed: int = field(init=False, default=0)
    #: Stored payload bytes of the last published checkpoint; the next
    #: save charges this as background write-back (see
    #: ``_save_checkpoint``).  Travels with the checkpoint via the
    #: loaded manifest, so resumed runs charge identically.
    _prev_checkpoint_bytes: int = field(init=False, default=0)

    def _notify(self, phase: str, value: float) -> None:
        if callable(self.progress):
            self.progress(phase, value)

    def run(self) -> RunResult:
        cfg = self.config
        manager = None
        if self.checkpoint_dir is not None:
            manager = CheckpointManager(
                self.checkpoint_dir, keep=self.checkpoint_keep,
                full_interval=self.checkpoint_full_interval)
        restored = None
        if manager is not None and self.resume:
            restored = self._restore_checkpoint(manager)
        if restored is not None:
            result, read_rng, last_write_mbps, done_ages = restored
            store, state = self.store, self.state
        else:
            self.store = store = build_store(cfg.resolved_spec())
            spec = WorkloadSpec(
                sizes=cfg.sizes,
                target_occupancy=cfg.occupancy,
                write_request=cfg.write_request,
                with_content=cfg.store_data,
            )
            result = RunResult(
                backend=cfg.backend,
                label=cfg.display_label(),
                config=cfg.to_dict(),
            )
            rng = substream(cfg.seed, "workload")
            read_rng = substream(cfg.seed, "reads")

            # Phase 0: bulk load (storage age zero).
            self._notify("bulk-load", 0.0)
            with measure(store, "bulk-load") as phase:
                if cfg.scenario is not None:
                    self.scenario_state = scenario_bulk_load(
                        store, spec, cfg.scenario, cfg.seed)
                    self.state = state = self.scenario_state.workload
                else:
                    self.state = state = bulk_load(store, spec, rng)
                phase.add_bytes(state.tracker.live_bytes)
            assert phase.result is not None
            result.bulk_load_write_mbps = phase.result.mbps
            result.objects_loaded = len(state.keys)
            result.live_bytes = state.tracker.live_bytes
            last_write_mbps = result.bulk_load_write_mbps
            done_ages = []

        for target_age in cfg.ages:
            if target_age in done_ages:
                continue
            scenario_lat: dict = {}
            tenant_lat: dict = {}
            if state.tracker.storage_age < target_age:
                self._notify("churn", target_age)
                if cfg.scenario is not None:
                    scn = self.scenario_state
                    assert scn is not None
                    before = scn.bytes_written
                    with measure(store,
                                 f"scenario-to-{target_age:g}") as phase:
                        scenario_to_age(store, scn, target_age)
                        phase.add_bytes(scn.bytes_written - before)
                    assert phase.result is not None
                    last_write_mbps = phase.result.mbps
                    # Non-event stores: the engine timed each op itself.
                    scenario_lat, tenant_lat = \
                        scn.take_interval_summaries()
                    if phase.result.tenant_lat:
                        # Event stores: the scheduler window carries the
                        # sojourn histograms (tagged requests), which
                        # supersede the engine's service-time proxy.
                        tenant_lat = phase.result.tenant_lat
                        win = phase.result.window
                        scenario_lat = {
                            "count": win.lat_count,
                            "mean_s": win.lat_mean_s,
                            "p50_s": win.lat_p50_s,
                            "p95_s": win.lat_p95_s,
                            "p99_s": win.lat_p99_s,
                            "max_s": win.lat_max_s,
                        }
                else:
                    before = state.bytes_overwritten
                    with measure(store,
                                 f"churn-to-{target_age:g}") as phase:
                        churn_to_age(store, state, target_age)
                        phase.add_bytes(state.bytes_overwritten - before)
                    assert phase.result is not None
                    last_write_mbps = phase.result.mbps
            self._notify("sample", target_age)
            result.samples.append(
                self._sample(store, state, target_age,
                             last_write_mbps, read_rng,
                             scenario_lat=scenario_lat,
                             tenant_lat=tenant_lat)
            )
            if target_age in cfg.rebalance_ages:
                # Occupancy-levelling migration between shards; happens
                # after the sample (so the sample sees the skewed
                # layout) and before the checkpoint (so a resume lands
                # on the rebalanced store, reproducing the
                # uninterrupted run exactly).
                self._notify("rebalance", target_age)
                store.rebalance(mode="even")
            # Scheduled shard losses fire after the sample (so the
            # sample at the trigger age still measures the healthy
            # store) and before any rebuild at the same age.
            fire = getattr(store, "apply_age_faults", None)
            if fire is not None:
                for index in fire(target_age):
                    self._notify("shard-loss", float(index))
            if target_age in cfg.rebuild_ages:
                self._notify("rebuild", target_age)
                store.rebuild()
            done_ages.append(target_age)
            if manager is not None:
                self._save_checkpoint(manager, result, read_rng,
                                      last_write_mbps, done_ages)
                self._notify("checkpoint", target_age)
        return result

    # ------------------------------------------------------------------
    # Checkpoint/resume
    # ------------------------------------------------------------------
    def _config_hash(self) -> str:
        """Fingerprint of everything that determines the run."""
        blob = json.dumps(self.config.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _save_checkpoint(self, manager: CheckpointManager,
                         result: RunResult, read_rng: Random,
                         last_write_mbps: float,
                         done_ages: list[float]) -> None:
        """One checkpoint = full pickled run state + per-volume snapshots.

        ``state.pkl`` carries everything a resume needs (store, workload
        state, partial result, RNG streams).  Alongside it, every
        filesystem volume inside the store — one for the filesystem
        backend, one per shard for a sharded store — contributes a
        byte-stable free-index snapshot and a journal-state snapshot;
        on load these are cross-checked against the unpickled state and
        against a rebuild from the extent maps, so a torn checkpoint is
        rejected instead of resumed.

        With the spec's ``checkpoint_rate > 0``, checkpoint I/O is
        charged through the store's devices lag-one: saving checkpoint
        N first charges the stored bytes of checkpoint N-1 as a
        background sequential write plus the duty-cycle throttle pause
        (the deferred flush of the previous checkpoint; the final
        checkpoint's write-back is never charged).  The charge happens
        *before* pickling, so its device-clock effects travel inside
        ``state.pkl`` and a resumed run reproduces them exactly — the
        lag-one bytes are recomputed from the loaded manifest.
        """
        rate = self.config.resolved_spec().checkpoint_rate
        if rate > 0.0 and self._prev_checkpoint_bytes > 0:
            _charge_background_write(self.store,
                                     self._prev_checkpoint_bytes, rate)
        payload = {
            "store": self.store,
            "state": self.state,
            "scenario": self.scenario_state,
            "result": result,
            "read_rng": read_rng,
            "last_write_mbps": last_write_mbps,
            "done_ages": list(done_ages),
        }
        files = {"state.pkl": pickle.dumps(payload)}
        for label, fs in fs_components(self.store):
            files[f"free_index-{label}.bin"] = encode_free_index(
                fs.free_index)
            files[f"journal-{label}.bin"] = encode_journal(fs.journal)
        saved = manager.save(files, meta={
            "schema": CHECKPOINT_SCHEMA,
            "config_hash": self._config_hash(),
            "label": self.config.display_label(),
            "done_ages": list(done_ages),
        })
        self._prev_checkpoint_bytes = sum(
            info["bytes"] for info in saved.files.values())

    def _restore_checkpoint(self, manager: CheckpointManager):
        """Load the newest valid checkpoint, or None for a fresh start."""
        ckpt = manager.load_latest()
        if ckpt is None:
            return None
        if ckpt.meta.get("schema") != CHECKPOINT_SCHEMA:
            raise ConfigError(
                f"checkpoint {ckpt.path} has schema "
                f"{ckpt.meta.get('schema')!r}, expected {CHECKPOINT_SCHEMA}"
            )
        if ckpt.meta.get("config_hash") != self._config_hash():
            raise ConfigError(
                f"checkpoint {ckpt.path} was written by a different "
                "configuration; refusing to resume (pass a fresh "
                "--checkpoint-dir or matching flags)"
            )
        payload = pickle.loads(ckpt.read("state.pkl"))
        store = payload["store"]
        for label, fs in fs_components(store):
            snapshot = decode_free_index(ckpt.read(f"free_index-{label}.bin"))
            cross_check(snapshot, fs.free_index,
                        label=f"{label} snapshot vs restored")
            rebuilt = rebuild_fs_free_index(fs)
            cross_check(rebuilt, fs.free_index,
                        label=f"{label} rebuild vs restored")
            verify_journal(fs.journal, ckpt.read(f"journal-{label}.bin"))
        self.store = store
        self.state = payload["state"]
        self.scenario_state = payload["scenario"]
        # The resumed run's next save charges exactly what the
        # uninterrupted run's would have: the stored bytes of this
        # checkpoint, recomputed from its manifest.
        self._prev_checkpoint_bytes = sum(
            info["bytes"] for info in ckpt.files.values())
        return (payload["result"], payload["read_rng"],
                payload["last_write_mbps"], list(payload["done_ages"]))

    def _sample(self, store: ObjectStore, state: WorkloadState,
                age: float, write_mbps: float, read_rng, *,
                scenario_lat: dict | None = None,
                tenant_lat: dict | None = None) -> AgeSample:
        report = fragment_report(store)
        read = measure_read_throughput(
            store, state, self.config.reads_per_sample, read_rng
        )
        reads = max(1, self.config.reads_per_sample)
        stats = store.store_stats()
        return AgeSample(
            age=state.tracker.storage_age if age > 0 else age,
            fragments_per_object=report.mean,
            fragments_median=report.median,
            fragments_max=report.max,
            read_mbps=read.mbps,
            write_mbps=write_mbps,
            occupancy=stats.occupancy,
            overwrites=state.tracker.overwrites,
            seeks_per_read=read.seeks / reads,
            read_wall_mbps=read.wall_mbps,
            read_device_s=read.elapsed_s,
            read_wall_s=read.wall_s,
            degraded_reads=stats.degraded_reads,
            retries=stats.retries,
            failovers=stats.failovers,
            rebuilt_objects=stats.rebuilt_objects,
            dead_shards=len(getattr(store, "dead_shards", ())),
            read_lat_count=read.lat_count,
            read_lat_p50_s=read.lat_p50_s,
            read_lat_p95_s=read.lat_p95_s,
            read_lat_p99_s=read.lat_p99_s,
            read_lat_max_s=read.lat_max_s,
            scenario_lat=dict(scenario_lat or {}),
            tenant_lat=dict(tenant_lat or {}),
        )


def _charge_background_write(store: ObjectStore | None, nbytes: int,
                             rate: float) -> None:
    """Charge ``nbytes`` of background write traffic to a store.

    Sharded stores route the charge through their normal dispatch lanes
    (:meth:`~repro.backends.sharded.ShardedStore.background_write`,
    which also takes the duty-cycle pause on the event timeline);
    single-device stores charge their device directly and account the
    pause as host time.
    """
    if store is None or nbytes <= 0 or rate <= 0.0:
        return
    background_write = getattr(store, "background_write", None)
    if background_write is not None:
        background_write(nbytes, rate=rate)
        return
    devices = store.devices()
    if not devices:
        return
    spent = devices[0].charge_sequential_write(nbytes)
    if rate < 1.0:
        devices[0].stats.record_cpu(spent * (1.0 - rate) / rate)


def run_experiment(config: ExperimentConfig, progress=None, *,
                   checkpoint_dir: str | Path | None = None,
                   resume: bool = False, checkpoint_keep: int = 2,
                   checkpoint_full_interval: int = 4) -> RunResult:
    """Convenience wrapper: build, run, return the result.

    ``checkpoint_dir`` enables a resumable checkpoint after every
    sampled age; ``resume=True`` continues from the newest valid one
    (identical results to the uninterrupted run — the whole state,
    RNG streams and IoStats included, travels with the checkpoint).
    ``checkpoint_keep`` / ``checkpoint_full_interval`` set retention and
    the delta-chain cadence (see :class:`CheckpointManager`).
    """
    return ExperimentRunner(config, progress=progress,
                            checkpoint_dir=checkpoint_dir,
                            resume=resume,
                            checkpoint_keep=checkpoint_keep,
                            checkpoint_full_interval=checkpoint_full_interval,
                            ).run()
