"""The aging-experiment driver behind every figure.

One run = one backend, one volume, one workload: bulk load to the target
occupancy (storage age 0), then alternate churn intervals and sampling
points.  At each sampled age the driver records fragments/object (extent
maps), a timed random-read sweep, and the average write throughput of
the churn interval that led here — matching how the paper pairs its
read and write measurements (Section 5.3).

The configuration defaults are scaled-down versions of the paper's
(DESIGN.md Section 3): the free-object pool and the request-size ratios
that drive fragmentation are preserved while volumes shrink from 400 GB
to single-digit GB so a run takes seconds, not a week.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.alloc.freelist import INDEX_KINDS

from repro.backends.base import ObjectStore
from repro.backends.blob_backend import BlobBackend
from repro.backends.file_backend import FileBackend
from repro.backends.gfs_backend import GfsChunkBackend
from repro.backends.lfs_backend import LfsBackend
from repro.core.fragmentation import fragment_report
from repro.core.results import AgeSample, RunResult
from repro.core.throughput import measure, measure_read_throughput
from repro.core.workload import (
    SizeDistribution,
    WorkloadSpec,
    WorkloadState,
    bulk_load,
    churn_to_age,
)
from repro.db.database import DbConfig
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError
from repro.fs.filesystem import FsConfig
from repro.rng import substream
from repro.units import DEFAULT_WRITE_REQUEST, GB, fmt_size

BACKENDS = ("filesystem", "database", "gfs", "lfs")


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to reproduce one curve of one figure."""

    backend: str
    sizes: SizeDistribution
    volume_bytes: int = 2 * GB
    occupancy: float = 0.5
    write_request: int = DEFAULT_WRITE_REQUEST
    ages: tuple[float, ...] = (0.0, 2.0, 4.0)
    #: Whole-object reads per sampling point.
    reads_per_sample: int = 64
    seed: int = 42
    #: Store real bytes on the device (marker analysis; test scale only).
    store_data: bool = False
    #: Use the size-hint interface (filesystem backend only).
    size_hints: bool = False
    #: Free-space engine ablation: "tiered"/"naive" overrides the
    #: filesystem backend's index; None keeps the fs_config default.
    index_kind: str | None = None
    fs_config: FsConfig | None = None
    db_config: DbConfig | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if not self.ages or list(self.ages) != sorted(self.ages):
            raise ConfigError("ages must be a non-empty ascending sequence")
        if self.index_kind is not None and self.index_kind not in INDEX_KINDS:
            raise ConfigError(
                f"unknown index_kind {self.index_kind!r}; "
                f"choose from {INDEX_KINDS}"
            )

    def display_label(self) -> str:
        if self.label:
            return self.label
        return (f"{self.backend}/{self.sizes}"
                f"/{fmt_size(self.volume_bytes)}@{self.occupancy:.0%}")

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "sizes": str(self.sizes),
            "volume_bytes": self.volume_bytes,
            "occupancy": self.occupancy,
            "write_request": self.write_request,
            "ages": list(self.ages),
            "reads_per_sample": self.reads_per_sample,
            "seed": self.seed,
            "size_hints": self.size_hints,
            "index_kind": self.effective_index_kind(),
        }

    def effective_index_kind(self) -> str | None:
        """The engine the filesystem backend will actually run.

        None for backends that do not use the free-extent index at all,
        so recorded run configs never misattribute an ablation.
        """
        if self.backend != "filesystem":
            return None
        if self.index_kind is not None:
            return self.index_kind
        return (self.fs_config or FsConfig()).index_kind


def make_store(config: ExperimentConfig) -> ObjectStore:
    """Instantiate the backend named by the configuration."""
    device = BlockDevice(scaled_disk(config.volume_bytes),
                         store_data=config.store_data)
    if config.backend == "filesystem":
        fs_config = config.fs_config
        if config.index_kind is not None:
            fs_config = replace(fs_config or FsConfig(),
                                index_kind=config.index_kind)
        return FileBackend(
            device,
            fs_config=fs_config,
            write_request=config.write_request,
            size_hints=config.size_hints,
        )
    if config.backend == "database":
        db_config = config.db_config or DbConfig(
            write_request=config.write_request
        )
        return BlobBackend(device, db_config=db_config)
    if config.backend == "gfs":
        return GfsChunkBackend(device, write_request=config.write_request)
    if config.backend == "lfs":
        return LfsBackend(device, write_request=config.write_request)
    raise ConfigError(f"unknown backend {config.backend!r}")


@dataclass
class ExperimentRunner:
    """Runs one configuration end to end."""

    config: ExperimentConfig
    #: Optional progress callback: (phase_name, detail_float).
    progress: object = None
    store: ObjectStore | None = None
    state: WorkloadState | None = None
    _read_rng_seed: int = field(init=False, default=0)

    def _notify(self, phase: str, value: float) -> None:
        if callable(self.progress):
            self.progress(phase, value)

    def run(self) -> RunResult:
        cfg = self.config
        self.store = store = make_store(cfg)
        spec = WorkloadSpec(
            sizes=cfg.sizes,
            target_occupancy=cfg.occupancy,
            write_request=cfg.write_request,
            with_content=cfg.store_data,
        )
        result = RunResult(
            backend=cfg.backend,
            label=cfg.display_label(),
            config=cfg.to_dict(),
        )
        rng = substream(cfg.seed, "workload")
        read_rng = substream(cfg.seed, "reads")

        # Phase 0: bulk load (storage age zero).
        self._notify("bulk-load", 0.0)
        with measure(store, "bulk-load") as phase:
            self.state = state = bulk_load(store, spec, rng)
            phase.add_bytes(state.tracker.live_bytes)
        assert phase.result is not None
        result.bulk_load_write_mbps = phase.result.mbps
        result.objects_loaded = len(state.keys)
        result.live_bytes = state.tracker.live_bytes

        last_write_mbps = result.bulk_load_write_mbps
        for target_age in cfg.ages:
            if state.tracker.storage_age < target_age:
                self._notify("churn", target_age)
                before = state.bytes_overwritten
                with measure(store, f"churn-to-{target_age:g}") as phase:
                    churn_to_age(store, state, target_age)
                    phase.add_bytes(state.bytes_overwritten - before)
                assert phase.result is not None
                last_write_mbps = phase.result.mbps
            self._notify("sample", target_age)
            result.samples.append(
                self._sample(store, state, target_age,
                             last_write_mbps, read_rng)
            )
        return result

    def _sample(self, store: ObjectStore, state: WorkloadState,
                age: float, write_mbps: float, read_rng) -> AgeSample:
        report = fragment_report(store)
        read = measure_read_throughput(
            store, state, self.config.reads_per_sample, read_rng
        )
        reads = max(1, self.config.reads_per_sample)
        return AgeSample(
            age=state.tracker.storage_age if age > 0 else age,
            fragments_per_object=report.mean,
            fragments_median=report.median,
            fragments_max=report.max,
            read_mbps=read.mbps,
            write_mbps=write_mbps,
            occupancy=store.store_stats().occupancy,
            overwrites=state.tracker.overwrites,
            seeks_per_read=read.seeks / reads,
        )


def run_experiment(config: ExperimentConfig, progress=None) -> RunResult:
    """Convenience wrapper: build, run, return the result."""
    return ExperimentRunner(config, progress=progress).run()
