"""The paper's core contribution: repository API + measurement methodology.

* :class:`LargeObjectRepository` — the get/put application facade with
  storage-age accounting built in.
* :mod:`repro.core.fragmentation` — fragments/object analysis, both from
  extent maps and from on-disk markers (the paper's measurement tool).
* :mod:`repro.core.workload` — bulk load + safe-write churn generators.
* :mod:`repro.core.experiment` — the aging experiment driver that
  produces every figure's data.
* :mod:`repro.core.defrag` — offline/incremental defragmenters.
"""

from repro.core.repository import LargeObjectRepository
from repro.core.storage_age import StorageAgeTracker
from repro.core.fragmentation import (
    FragmentReport,
    MarkerScanner,
    fragment_counts,
    fragment_report,
    make_marker_content,
)
from repro.core.workload import (
    ConstantSize,
    SizeDistribution,
    UniformSize,
    WorkloadSpec,
    bulk_load,
    churn_to_age,
    read_sweep,
)
from repro.core.experiment import (
    AgeSample,
    ExperimentConfig,
    ExperimentRunner,
    RunResult,
)
from repro.core.defrag import Defragmenter, rebuild_database
from repro.core.interleaved import (
    InterleaveResult,
    interleaved_db_load,
    interleaved_fs_load,
)

__all__ = [
    "LargeObjectRepository",
    "StorageAgeTracker",
    "FragmentReport",
    "MarkerScanner",
    "fragment_counts",
    "fragment_report",
    "make_marker_content",
    "ConstantSize",
    "UniformSize",
    "SizeDistribution",
    "WorkloadSpec",
    "bulk_load",
    "churn_to_age",
    "read_sweep",
    "AgeSample",
    "ExperimentConfig",
    "ExperimentRunner",
    "RunResult",
    "Defragmenter",
    "rebuild_database",
    "InterleaveResult",
    "interleaved_fs_load",
    "interleaved_db_load",
]
