"""Synthetic get/put workloads (Section 4.3).

The paper's workload is deliberately simple: bulk load to a target
occupancy, then a stream of safe-write updates to uniformly random
objects with interleaved reads — no correlation between objects, all
objects equally likely.  Sizes are either constant or drawn from a
uniform distribution with the same mean (Section 5.4 found no
difference).  The generators here implement exactly that, deterministic
under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Protocol

from repro.backends.base import ObjectStore
from repro.core.fragmentation import make_marker_content
from repro.core.storage_age import StorageAgeTracker
from repro.errors import ConfigError
from repro.units import DEFAULT_WRITE_REQUEST, KB, MB, fmt_size


# ----------------------------------------------------------------------
# Size distributions
# ----------------------------------------------------------------------
class SizeDistribution(Protocol):
    """Draws object sizes; must expose its mean for planning."""

    mean: float

    def draw(self, rng: Random) -> int: ...


@dataclass(frozen=True)
class ConstantSize:
    """Every object is exactly ``size`` bytes (the paper's default)."""

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigError("size must be positive")

    @property
    def mean(self) -> float:
        return float(self.size)

    def draw(self, rng: Random) -> int:
        return self.size

    def __str__(self) -> str:
        return f"constant({fmt_size(self.size)})"


@dataclass(frozen=True)
class UniformSize:
    """Uniform sizes on ``[lo, hi]``, rounded to the *nearest* 1 KB.

    Section 5.4 compares constant 10 MB objects against "object sizes
    chosen uniformly at random with the same average size";
    :meth:`around_mean` builds that distribution.  Rounding must be to
    the nearest KB: flooring every draw would bias the realized mean
    ~0.5 KB below :attr:`mean`, breaking the "same average size"
    contract the comparison depends on.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo <= 0 or self.hi < self.lo:
            raise ConfigError("need 0 < lo <= hi")

    @classmethod
    def around_mean(cls, mean: int, *, spread: float = 0.8) -> "UniformSize":
        """Uniform with the given mean, ranging mean*(1 ± spread)."""
        if not 0.0 < spread < 1.0:
            raise ConfigError("spread must be in (0, 1)")
        return cls(round(mean * (1 - spread)), round(mean * (1 + spread)))

    @property
    def mean(self) -> float:
        return (self.lo + self.hi) / 2.0

    def draw(self, rng: Random) -> int:
        raw = rng.randint(self.lo, self.hi)
        return max(1 * KB, (raw + KB // 2) // KB * KB)

    def __str__(self) -> str:
        return f"uniform({fmt_size(self.lo)}..{fmt_size(self.hi)})"


# ----------------------------------------------------------------------
# Workload specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that defines one of the paper's runs."""

    sizes: SizeDistribution
    target_occupancy: float = 0.5
    write_request: int = DEFAULT_WRITE_REQUEST
    #: Generate marker-tagged content (needs a store_data device).
    with_content: bool = False
    marker_interval: int = 1 * KB

    def __post_init__(self) -> None:
        if not 0.0 < self.target_occupancy < 1.0:
            raise ConfigError("target_occupancy must be in (0, 1)")


@dataclass
class WorkloadState:
    """Mutable driver state threaded through the phases."""

    spec: WorkloadSpec
    rng: Random
    tracker: StorageAgeTracker = field(default_factory=StorageAgeTracker)
    keys: list[str] = field(default_factory=list)
    next_object_id: int = 1
    versions: dict[str, int] = field(default_factory=dict)
    #: Logical bytes written by churn (new object versions).
    bytes_overwritten: int = 0

    def object_id_of(self, key: str) -> int:
        """Numeric object id from the key's trailing ``-<int>`` suffix.

        Accepts any prefixed scheme (``object-7``, ``tenant-3-object-7``)
        so multi-tenant key spaces share the marker machinery.
        """
        _prefix, sep, tail = key.rpartition("-")
        if not sep or not tail.isascii() or not tail.isdigit():
            raise ConfigError(
                f"malformed object key {key!r}: expected a trailing "
                "integer suffix such as 'object-7' or 'tenant-3-object-7'"
            )
        return int(tail)


def _content_for(state: WorkloadState, key: str, size: int) -> bytes | None:
    if not state.spec.with_content:
        return None
    version = state.versions.get(key, 0) + 1
    state.versions[key] = version
    return make_marker_content(
        state.object_id_of(key), size, version=version,
        interval=state.spec.marker_interval,
    )


# ----------------------------------------------------------------------
# Phases
# ----------------------------------------------------------------------
def bulk_load(store: ObjectStore, spec: WorkloadSpec,
              rng: Random) -> WorkloadState:
    """Fill a clean store to the target occupancy (storage age 0).

    Objects are inserted one after another, exactly like the paper's
    bulk load: the store can append each new object to the end of
    allocated storage, so layout starts contiguous.
    """
    state = WorkloadState(spec=spec, rng=rng)
    stats = store.store_stats()
    # target_occupancy is a fraction of *raw* capacity; a replicated
    # store spends ``replicas`` physical bytes per logical byte, so the
    # logical load target shrinks accordingly.
    replicas = max(1, int(getattr(store, "replicas", 1)))
    target_bytes = int(stats.capacity * spec.target_occupancy) // replicas
    loaded = 0
    while True:
        size = spec.sizes.draw(rng)
        if loaded + size > target_bytes:
            break
        # Metadata overhead (index pages, LOB-tree nodes, MFT spill)
        # also consumes space; keep a safety margin so the last object
        # does not wedge the store.
        if store.free_bytes() < size + size // 8 + (1 << 20):
            break
        key = f"object-{state.next_object_id}"
        state.next_object_id += 1
        data = _content_for(state, key, size)
        if data is not None:
            store.put(key, data=data)
        else:
            store.put(key, size=size)
        state.tracker.on_put(size)
        state.keys.append(key)
        loaded += size
    if not state.keys:
        raise ConfigError(
            "volume too small for even one object at this occupancy"
        )
    return state


def churn_step(store: ObjectStore, state: WorkloadState) -> str:
    """One safe-write update of a uniformly random object."""
    key = state.rng.choice(state.keys)
    old_size = store.meta(key).size
    new_size = state.spec.sizes.draw(state.rng)
    data = _content_for(state, key, new_size)
    if data is not None:
        store.overwrite(key, data=data)
    else:
        store.overwrite(key, size=new_size)
    state.tracker.on_overwrite(old_size, new_size)
    state.bytes_overwritten += new_size
    return key


def churn_to_age(store: ObjectStore, state: WorkloadState,
                 target_age: float, *,
                 on_step=None) -> int:
    """Safe-write random objects until storage age reaches the target.

    Returns the number of overwrites performed.  ``on_step`` (if given)
    is called with the operation index after each overwrite — used by
    long benches for progress and by tests for fault injection.
    """
    steps = 0
    while state.tracker.storage_age < target_age:
        churn_step(store, state)
        steps += 1
        if on_step is not None:
            on_step(steps)
    return steps


def read_sweep(store: ObjectStore, state: WorkloadState,
               nreads: int, rng: Random | None = None) -> int:
    """Read ``nreads`` uniformly random whole objects; returns bytes read.

    The paper's read requests "are randomized and incur at least one
    seek" — this is the measurement loop behind Figure 1.  Pass a
    dedicated ``rng`` so measurement sweeps do not perturb the churn
    sequence.
    """
    if nreads <= 0:
        raise ConfigError("nreads must be positive")
    rng = rng or state.rng
    total = 0
    for _ in range(nreads):
        key = rng.choice(state.keys)
        size = store.meta(key).size
        store.get(key)
        total += size
    return total


def delete_all(store: ObjectStore, state: WorkloadState) -> None:
    """Delete every object (teardown / pathological-aging setup)."""
    for key in list(state.keys):
        size = store.meta(key).size
        store.delete(key)
        state.tracker.on_delete(size)
    state.keys.clear()
    # A key re-put after delete-all must restart its marker versions at
    # 1; a carried-over counter would make a fresh object look like a
    # stale resurrected one to content verification.
    state.versions.clear()
    if state.tracker.live_bytes != 0:
        raise RuntimeError(
            "delete_all books out of balance: "
            f"{state.tracker.live_bytes} live bytes still tracked after "
            "deleting every key"
        )
