"""The public repository facade.

:class:`LargeObjectRepository` is the API a downstream application uses:
get/put/replace/delete over any backend, with storage-age accounting and
fragmentation reporting built in — the instrumented object store the
paper's methodology calls for.  Examples and the quickstart build on
this class; the experiment driver uses the lower-level pieces directly
so it can place measurement windows precisely.
"""

from __future__ import annotations

from random import Random

from repro.backends.base import ObjectMeta, ObjectStore, StoreStats
from repro.core.fragmentation import (
    FragmentReport,
    fragment_report,
    make_marker_content,
)
from repro.core.storage_age import StorageAgeTracker
from repro.errors import ConfigError, ObjectNotFoundError
from repro.units import fmt_size


class LargeObjectRepository:
    """Instrumented get/put repository over a pluggable backend.

    Parameters
    ----------
    store:
        Any :class:`~repro.backends.base.ObjectStore`.
    tag_content:
        Generate marker-tagged content for every write so the volume
        can be analyzed with :class:`~repro.core.fragmentation.
        MarkerScanner`.  Requires the backing device to store data.
    """

    def __init__(self, store: ObjectStore, *, tag_content: bool = False) -> None:
        self.store = store
        self.tracker = StorageAgeTracker()
        self.tag_content = tag_content
        self._object_ids: dict[str, int] = {}
        self._versions: dict[str, int] = {}
        self._next_object_id = 1

    # ------------------------------------------------------------------
    # Content helpers
    # ------------------------------------------------------------------
    def _assign_id(self, key: str) -> int:
        if key not in self._object_ids:
            self._object_ids[key] = self._next_object_id
            self._next_object_id += 1
        return self._object_ids[key]

    def _content(self, key: str, size: int) -> bytes | None:
        if not self.tag_content:
            return None
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        return make_marker_content(self._assign_id(key), size,
                                   version=version)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def put(self, key: str, *, size: int | None = None,
            data: bytes | None = None) -> None:
        """Store a new object by size (simulation) or content."""
        if (size is None) == (data is None):
            raise ConfigError("pass exactly one of size or data")
        if self.store.exists(key):
            raise ConfigError(
                f"object {key!r} exists; use replace() to update it"
            )
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        if data is None:
            data = self._content(key, total)
        if data is not None:
            self.store.put(key, data=data)
        else:
            self.store.put(key, size=total)
        self.tracker.on_put(total)

    def get(self, key: str, offset: int = 0,
            length: int | None = None) -> bytes | None:
        """Read an object (range reads supported)."""
        return self.store.get(key, offset, length)

    def replace(self, key: str, *, size: int | None = None,
                data: bytes | None = None) -> None:
        """Atomically replace an object (a safe write)."""
        if (size is None) == (data is None):
            raise ConfigError("pass exactly one of size or data")
        if not self.store.exists(key):
            raise ObjectNotFoundError(f"no object {key!r}")
        old_size = self.store.meta(key).size
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        if data is None:
            data = self._content(key, total)
        if data is not None:
            self.store.overwrite(key, data=data)
        else:
            self.store.overwrite(key, size=total)
        self.tracker.on_overwrite(old_size, total)

    def delete(self, key: str) -> None:
        size = self.store.meta(key).size
        self.store.delete(key)
        self.tracker.on_delete(size)
        # The version counter deliberately survives deletion: a
        # recreated key keeps its object id, so its markers must
        # outrank the deleted copy's stale on-disk markers (same id)
        # for the scanner's newest-version filter to discard them.

    def exists(self, key: str) -> bool:
        return self.store.exists(key)

    def meta(self, key: str) -> ObjectMeta:
        return self.store.meta(key)

    def keys(self) -> list[str]:
        return self.store.keys()

    def object_id(self, key: str) -> int:
        """Marker object id assigned to this key (tagged mode)."""
        try:
            return self._object_ids[key]
        except KeyError:
            raise ObjectNotFoundError(f"no tagged object {key!r}") from None

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    @property
    def storage_age(self) -> float:
        """Safe writes per object, the paper's time axis."""
        return self.tracker.storage_age

    def fragment_report(self) -> FragmentReport:
        """Fragments/object across all live objects (extent maps)."""
        return fragment_report(self.store)

    def store_stats(self) -> StoreStats:
        return self.store.store_stats()

    def describe(self) -> str:
        """Human-readable one-paragraph status."""
        stats = self.store_stats()
        report = self.fragment_report()
        return (
            f"{self.store.name}: {stats.objects} objects, "
            f"{fmt_size(stats.live_bytes)} live, "
            f"occupancy {stats.occupancy:.0%}, "
            f"storage age {self.storage_age:.2f}, "
            f"{report.mean:.2f} fragments/object"
        )
