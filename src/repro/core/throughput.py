"""Throughput measurement over modelled time.

The paper's primary indicator is application throughput: object bytes
moved divided by elapsed time (Section 5).  Elapsed time here is the
modelled time of a synchronous workload — device busy time (seeks,
rotation, media transfer, forced flushes) plus host CPU time — summed
across every device the backend touches.

:func:`measure` wraps any workload phase in per-device measurement
windows; the throughput helpers divide *logical* object bytes by the
window's total time, so metadata I/O slows a phase down (as it should)
without inflating its byte count.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator
from dataclasses import dataclass
from random import Random

from repro.backends.base import MeasurementWindows, ObjectStore
from repro.core.workload import WorkloadState, read_sweep
from repro.disk.iostats import WindowStats
from repro.errors import ConfigError
from repro.units import MB


@dataclass
class PhaseResult:
    """Logical bytes + modelled time for one measured phase."""

    name: str
    logical_bytes: int
    window: WindowStats

    @property
    def elapsed_s(self) -> float:
        """Serial-model elapsed time: device busy summed + host CPU."""
        return self.window.total_time_s

    @property
    def wall_s(self) -> float:
        """Overlapped wall time when the store models overlap (shard
        lanes run concurrently), else identical to :attr:`elapsed_s`."""
        return self.window.elapsed_wall_s

    @property
    def mbps(self) -> float:
        """Application throughput in bytes/second (0 when idle)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.logical_bytes / self.elapsed_s

    @property
    def wall_mbps(self) -> float:
        """Throughput over overlapped wall time (== :attr:`mbps` for
        single-volume stores)."""
        if self.wall_s <= 0:
            return 0.0
        return self.logical_bytes / self.wall_s

    @property
    def mbps_mb(self) -> float:
        """Throughput in MB/s, the paper's unit."""
        return self.mbps / MB

    @property
    def seeks(self) -> int:
        return self.window.seeks

    #: Per-request latency summary (zeros when the store runs no event
    #: scheduler; see repro.disk.events).
    @property
    def lat_count(self) -> int:
        return self.window.lat_count

    @property
    def lat_mean_s(self) -> float:
        return self.window.lat_mean_s

    @property
    def lat_p50_s(self) -> float:
        return self.window.lat_p50_s

    @property
    def lat_p95_s(self) -> float:
        return self.window.lat_p95_s

    @property
    def lat_p99_s(self) -> float:
        return self.window.lat_p99_s

    @property
    def lat_max_s(self) -> float:
        return self.window.lat_max_s

    @property
    def tenant_lat(self) -> dict[str, dict[str, float]] | None:
        """Per-tenant sojourn summaries (scenario runs; else ``None``)."""
        return self.window.tenant_lat


class _PhaseHandle:
    """Mutable handle the ``measure`` context yields."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.logical_bytes = 0
        self.result: PhaseResult | None = None

    def add_bytes(self, nbytes: int) -> None:
        self.logical_bytes += nbytes


@contextlib.contextmanager
def measure(store: ObjectStore, name: str) -> Iterator[_PhaseHandle]:
    """Measure a phase::

        with measure(store, "read-sweep") as phase:
            phase.add_bytes(read_sweep(store, state, 100))
        print(phase.result.mbps_mb)
    """
    handle = _PhaseHandle(name)
    windows = MeasurementWindows.open(store, name)
    try:
        yield handle
    finally:
        combined = windows.close()
        handle.result = PhaseResult(
            name=name, logical_bytes=handle.logical_bytes, window=combined
        )


def _default_policy(store: ObjectStore) -> bool:
    """True when every device runs the default (no batch, no reorder)
    submission policy, i.e. ``read_many`` would cost exactly what
    per-object gets cost."""
    for dev in store.devices():
        policy = dev.policy
        if policy.batch_size or policy.reorder_flag:
            return False
    return True


def measure_read_throughput(store: ObjectStore, state: WorkloadState,
                            nreads: int,
                            rng: Random | None = None, *,
                            via_read_many: bool | None = None
                            ) -> PhaseResult:
    """Random whole-object read sweep (the Figure 1 measurement).

    Policy-aware: when the store's :class:`~repro.disk.policy.
    DevicePolicy` asks for batching or elevator reordering, or the
    store models overlapped shard lanes, the sweep routes through
    :meth:`ObjectStore.read_many` so the policy actually governs the
    measured I/O (the Figure 1/4 path for request-scheduling and
    sharding studies).  With the default policy the sweep keeps the
    historical per-object ``get`` loop — cost-identical by the
    device's batching contract, and asserted so by the parity suite.
    ``via_read_many`` forces either path explicitly.

    Both paths draw the same keys from ``rng``, so the measured object
    population is identical whichever path runs.

    Event-queue stores (``queue=event``) take the per-object path:
    one ``read_many`` fan-out is a single giant round, which would
    yield one latency sample per shard; per-object gets make every
    read its own queued request, so the sweep produces a full sojourn
    distribution.
    """
    if via_read_many is None:
        scheduler = getattr(store, "scheduler", None)
        if getattr(scheduler, "is_event", False):
            via_read_many = False
        else:
            via_read_many = (scheduler is not None
                             or not _default_policy(store))
    if not via_read_many:
        with measure(store, "read-sweep") as phase:
            phase.add_bytes(read_sweep(store, state, nreads, rng))
        assert phase.result is not None
        return phase.result
    if nreads <= 0:
        raise ConfigError("nreads must be positive")
    rng = rng or state.rng
    keys = [rng.choice(state.keys) for _ in range(nreads)]
    with measure(store, "read-sweep") as phase:
        for key in keys:
            phase.add_bytes(store.meta(key).size)
        store.read_many(keys)
    assert phase.result is not None
    return phase.result


def measure_get(store: ObjectStore, key: str) -> PhaseResult:
    """Timing of a single get (used by examples and tests)."""
    with measure(store, f"get:{key}") as phase:
        size = store.meta(key).size
        store.get(key)
        phase.add_bytes(size)
    assert phase.result is not None
    return phase.result


def make_read_rng(seed: int) -> Random:
    """Independent RNG for read sweeps so reads never perturb the
    churn sequence (the paper interleaves them; our phases are
    equivalent because reads do not mutate layout)."""
    from repro.rng import substream

    return substream(seed, "read-sweep")
