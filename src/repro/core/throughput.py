"""Throughput measurement over modelled time.

The paper's primary indicator is application throughput: object bytes
moved divided by elapsed time (Section 5).  Elapsed time here is the
modelled time of a synchronous workload — device busy time (seeks,
rotation, media transfer, forced flushes) plus host CPU time — summed
across every device the backend touches.

:func:`measure` wraps any workload phase in per-device measurement
windows; the throughput helpers divide *logical* object bytes by the
window's total time, so metadata I/O slows a phase down (as it should)
without inflating its byte count.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator
from dataclasses import dataclass
from random import Random

from repro.backends.base import MeasurementWindows, ObjectStore
from repro.core.workload import WorkloadState, read_sweep
from repro.disk.iostats import WindowStats
from repro.units import MB


@dataclass
class PhaseResult:
    """Logical bytes + modelled time for one measured phase."""

    name: str
    logical_bytes: int
    window: WindowStats

    @property
    def elapsed_s(self) -> float:
        return self.window.total_time_s

    @property
    def mbps(self) -> float:
        """Application throughput in bytes/second (0 when idle)."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.logical_bytes / self.elapsed_s

    @property
    def mbps_mb(self) -> float:
        """Throughput in MB/s, the paper's unit."""
        return self.mbps / MB

    @property
    def seeks(self) -> int:
        return self.window.seeks


class _PhaseHandle:
    """Mutable handle the ``measure`` context yields."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.logical_bytes = 0
        self.result: PhaseResult | None = None

    def add_bytes(self, nbytes: int) -> None:
        self.logical_bytes += nbytes


@contextlib.contextmanager
def measure(store: ObjectStore, name: str) -> Iterator[_PhaseHandle]:
    """Measure a phase::

        with measure(store, "read-sweep") as phase:
            phase.add_bytes(read_sweep(store, state, 100))
        print(phase.result.mbps_mb)
    """
    handle = _PhaseHandle(name)
    windows = MeasurementWindows.open(store, name)
    try:
        yield handle
    finally:
        combined = windows.close()
        handle.result = PhaseResult(
            name=name, logical_bytes=handle.logical_bytes, window=combined
        )


def measure_read_throughput(store: ObjectStore, state: WorkloadState,
                            nreads: int,
                            rng: Random | None = None) -> PhaseResult:
    """Random whole-object read sweep (the Figure 1 measurement)."""
    with measure(store, "read-sweep") as phase:
        phase.add_bytes(read_sweep(store, state, nreads, rng))
    assert phase.result is not None
    return phase.result


def measure_get(store: ObjectStore, key: str) -> PhaseResult:
    """Timing of a single get (used by examples and tests)."""
    with measure(store, f"get:{key}") as phase:
        size = store.meta(key).size
        store.get(key)
        phase.add_bytes(size)
    assert phase.result is not None
    return phase.result


def make_read_rng(seed: int) -> Random:
    """Independent RNG for read sweeps so reads never perturb the
    churn sequence (the paper interleaves them; our phases are
    equivalent because reads do not mutate layout)."""
    from repro.rng import substream

    return substream(seed, "read-sweep")
