"""Interleaved append streams — the paper's predicted amplifier.

Conclusions, Section 6: "Also not considered were interleaved append
requests to multiple objects, which are likely to increase
fragmentation."  This module measures that prediction: ``nstreams``
objects grow concurrently, one write request at a time round-robin, so
every allocation decision happens with other half-written objects
competing for the same runs.

Works against both substrates: the filesystem appends to open files;
the database appends pages to open BLOBs through the LOB tree (an
insert at the logical end).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.fragmentation import FragmentReport
from repro.db.database import SimDatabase
from repro.errors import ConfigError
from repro.fs.filesystem import SimFilesystem
from repro.units import DEFAULT_WRITE_REQUEST, ceil_div


@dataclass
class InterleaveResult:
    """Fragmentation outcome of one interleaved load."""

    nstreams: int
    objects: int
    report: FragmentReport

    @property
    def fragments_per_object(self) -> float:
        return self.report.mean


def interleaved_fs_load(fs: SimFilesystem, *, nstreams: int,
                        object_size: int, total_objects: int,
                        write_request: int = DEFAULT_WRITE_REQUEST,
                        name_prefix: str = "ileave") -> InterleaveResult:
    """Write ``total_objects`` files, ``nstreams`` growing at a time.

    With ``nstreams=1`` this is the paper's serial bulk load (files come
    out contiguous on a clean volume); larger values interleave the
    append requests of concurrent uploads.
    """
    if nstreams < 1 or total_objects < 1:
        raise ConfigError("nstreams and total_objects must be >= 1")
    requests_per_object = ceil_div(object_size, write_request)
    names: list[str] = []
    active: list[tuple[str, int]] = []  # (name, requests remaining)
    next_idx = 0

    def open_next() -> None:
        nonlocal next_idx
        name = f"{name_prefix}-{next_idx:05d}"
        next_idx += 1
        fs.create(name)
        names.append(name)
        active.append((name, requests_per_object))

    while next_idx < min(nstreams, total_objects):
        open_next()
    remaining_total = object_size % write_request or write_request
    while active:
        slot = 0
        while slot < len(active):
            name, remaining = active[slot]
            chunk = write_request if remaining > 1 else remaining_total
            fs.append(name, nbytes=chunk)
            remaining -= 1
            if remaining == 0:
                fs.fsync(name)
                del active[slot]
                if next_idx < total_objects:
                    open_next()
                    # The fresh stream starts at the back; do not skip
                    # the stream now occupying this slot.
                continue
            active[slot] = (name, remaining)
            slot += 1
    counts = {
        name: len(_coalesced(fs, name)) for name in names
    }
    return InterleaveResult(
        nstreams=nstreams,
        objects=len(names),
        report=FragmentReport(counts=counts),
    )


def _coalesced(fs: SimFilesystem, name: str):
    from repro.alloc.extent import coalesce

    return coalesce(fs.extent_map(name))


def interleaved_db_load(db: SimDatabase, *, nstreams: int,
                        object_size: int, total_objects: int,
                        write_request: int = DEFAULT_WRITE_REQUEST
                        ) -> InterleaveResult:
    """Database version: BLOBs grow by logical-end insert_range calls."""
    if nstreams < 1 or total_objects < 1:
        raise ConfigError("nstreams and total_objects must be >= 1")
    from repro.alloc.extent import coalesce
    from repro.units import PAGE_SIZE, round_up

    padded = round_up(object_size, PAGE_SIZE)
    requests_per_object = ceil_div(padded, write_request)
    blob_ids: list[int] = []
    active: list[tuple[int, int]] = []
    created = 0

    def open_next() -> None:
        nonlocal created
        # Seed each blob with its first request's worth of pages.
        first = min(write_request, padded)
        blob_id = db.put_blob(size=first, commit=False)
        created += 1
        blob_ids.append(blob_id)
        if requests_per_object > 1:
            active.append((blob_id, requests_per_object - 1))

    while created < min(nstreams, total_objects):
        open_next()
    while active or created < total_objects:
        if not active:
            open_next()
            continue
        slot = 0
        while slot < len(active):
            blob_id, remaining = active[slot]
            current = db.blobs.size_of(blob_id)
            chunk = min(write_request, padded - current)
            db.blobs.insert_range(blob_id, current, size=chunk,
                                  write_request=write_request)
            remaining -= 1
            if remaining == 0:
                del active[slot]
                if created < total_objects:
                    open_next()
                continue
            active[slot] = (blob_id, remaining)
            slot += 1
    db.commit()
    counts = {
        str(blob_id): len(coalesce(db.blobs.blob_extents(blob_id)))
        for blob_id in blob_ids
    }
    return InterleaveResult(
        nstreams=nstreams,
        objects=len(blob_ids),
        report=FragmentReport(counts=counts),
    )
