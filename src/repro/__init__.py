"""repro — reproduction of "Fragmentation in Large Object Repositories"
(Sears & van Ingen, CIDR 2007).

A simulation laboratory for studying long-term fragmentation in large
object stores: an NTFS-like filesystem and a SQL-Server-like database
built from scratch over a mechanical disk model, a get/put repository
API with storage-age instrumentation, the paper's marker-based
fragmentation analyzer, and an experiment driver that regenerates every
figure in the paper's evaluation.

Quickstart::

    from repro import (LargeObjectRepository, FileBackend,
                       BlockDevice, scaled_disk, MB)

    device = BlockDevice(scaled_disk(512 * MB))
    repo = LargeObjectRepository(FileBackend(device))
    repo.put("photo-1", size=2 * MB)
    repo.replace("photo-1", size=2 * MB)     # a safe write
    print(repo.describe())
"""

from repro.units import KB, MB, GB, TB, parse_size, fmt_size
from repro.errors import (
    AllocationError,
    ConfigError,
    CorruptionError,
    ObjectNotFoundError,
    ReproError,
    StorageFullError,
)
from repro.disk import BlockDevice, DiskGeometry, PAPER_DISK, scaled_disk
from repro.alloc import Extent, FreeExtentIndex, BuddyAllocator
from repro.fs import SimFilesystem, FsConfig
from repro.db import SimDatabase, DbConfig
from repro.backends import (
    BlobBackend,
    CostModel,
    FileBackend,
    GfsChunkBackend,
    LfsBackend,
    ObjectStore,
)
from repro.core import (
    ConstantSize,
    Defragmenter,
    ExperimentConfig,
    ExperimentRunner,
    FragmentReport,
    LargeObjectRepository,
    MarkerScanner,
    RunResult,
    StorageAgeTracker,
    UniformSize,
    WorkloadSpec,
    bulk_load,
    churn_to_age,
    fragment_report,
    make_marker_content,
    read_sweep,
)
from repro.core.experiment import run_experiment

__version__ = "1.0.0"

__all__ = [
    "KB", "MB", "GB", "TB", "parse_size", "fmt_size",
    "ReproError", "ConfigError", "StorageFullError", "AllocationError",
    "CorruptionError", "ObjectNotFoundError",
    "BlockDevice", "DiskGeometry", "PAPER_DISK", "scaled_disk",
    "Extent", "FreeExtentIndex", "BuddyAllocator",
    "SimFilesystem", "FsConfig",
    "SimDatabase", "DbConfig",
    "ObjectStore", "FileBackend", "BlobBackend", "GfsChunkBackend",
    "LfsBackend", "CostModel",
    "LargeObjectRepository", "StorageAgeTracker", "FragmentReport",
    "MarkerScanner", "fragment_report", "make_marker_content",
    "ConstantSize", "UniformSize", "WorkloadSpec",
    "bulk_load", "churn_to_age", "read_sweep",
    "ExperimentConfig", "ExperimentRunner", "RunResult", "run_experiment",
    "Defragmenter",
    "__version__",
]
