"""Exception hierarchy for the repro library.

All library exceptions derive from :class:`ReproError`, so callers can
catch a single type at the repository boundary.  Storage-full conditions
derive from :class:`StorageFullError` regardless of which substrate raised
them, because the experiment driver treats them uniformly (it sizes
workloads to fit, so hitting one is a configuration bug worth surfacing).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration (sizes, rates, policy names, ...)."""


class StorageFullError(ReproError):
    """The underlying volume or file could not satisfy an allocation."""


class AllocationError(StorageFullError):
    """An allocator could not find space for a request."""


class FsError(ReproError):
    """Filesystem-level failure."""


class FileNotFoundFsError(FsError, KeyError):
    """Named file does not exist in the simulated filesystem."""


class FileExistsFsError(FsError):
    """Attempt to create a file that already exists."""


class DbError(ReproError):
    """Database-level failure."""


class BlobNotFoundError(DbError, KeyError):
    """BLOB id not present in the blob store."""


class RowNotFoundError(DbError, KeyError):
    """Heap row id not present in the table."""


class ObjectNotFoundError(ReproError, KeyError):
    """Object id not present in an object store backend."""


class CorruptionError(ReproError):
    """Internal invariant violated (double free, overlapping extents, ...).

    Raising instead of silently repairing keeps simulations honest: a
    corruption here means the model diverged, not that the workload is
    unlucky.
    """


class SnapshotError(CorruptionError):
    """A persisted snapshot or checkpoint is torn, truncated, or stale.

    Raised by the persistence layer when a blob fails its magic/version/
    checksum validation or when a restored structure disagrees with a
    rebuild from first principles — the signal to fall back to an older
    checkpoint rather than mount corrupt state.
    """


class CrashPoint(ReproError):
    """Raised by fault-injection hooks to simulate a crash mid-operation."""
