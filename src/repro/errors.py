"""Exception hierarchy for the repro library.

All library exceptions derive from :class:`ReproError`, so callers can
catch a single type at the repository boundary.  Storage-full conditions
derive from :class:`StorageFullError` regardless of which substrate raised
them, because the experiment driver treats them uniformly (it sizes
workloads to fit, so hitting one is a configuration bug worth surfacing).

Device faults and the retry contract
------------------------------------

Injected device faults (see :mod:`repro.disk.faults`) surface through the
:class:`DeviceError` branch, split by what the caller may do about them:

* :class:`TransientIoError` — **retryable**.  The operation failed but the
  device survives; re-issuing the same request may succeed.  *Reads* are
  safe to retry because they are idempotent, and the :class:`ShardedStore
  <repro.backends.sharded.ShardedStore>` composite does so automatically
  with a capped exponential backoff charged as modelled time.  *Writes*
  are **not** retried by the library: a failed multi-extent write may have
  left partial backend state (a half-appended segment, a created-but-empty
  file), so re-issuing blindly is unsafe.  A transient write error
  propagates to the caller, who owns the decision to re-drive the workload
  step.
* :class:`ShardLostError` — **fatal for the device**.  The device (or the
  shard built on it) is permanently gone; no retry can succeed.  Callers
  with redundancy fail over to a surviving replica.
* :class:`ShardUnavailableError` — **fatal for the key**.  Raised at the
  composite boundary only when *no* replica of the requested object
  survives (redundancy exhausted).  Keys on healthy shards remain fully
  readable and writable — degradation is per-key, not store-wide.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Invalid configuration (sizes, rates, policy names, ...)."""


class StorageFullError(ReproError):
    """The underlying volume or file could not satisfy an allocation."""


class AllocationError(StorageFullError):
    """An allocator could not find space for a request."""


class FsError(ReproError):
    """Filesystem-level failure."""


class FileNotFoundFsError(FsError, KeyError):
    """Named file does not exist in the simulated filesystem."""


class FileExistsFsError(FsError):
    """Attempt to create a file that already exists."""


class DbError(ReproError):
    """Database-level failure."""


class BlobNotFoundError(DbError, KeyError):
    """BLOB id not present in the blob store."""


class RowNotFoundError(DbError, KeyError):
    """Heap row id not present in the table."""


class ObjectNotFoundError(ReproError, KeyError):
    """Object id not present in an object store backend."""


class CorruptionError(ReproError):
    """Internal invariant violated (double free, overlapping extents, ...).

    Raising instead of silently repairing keeps simulations honest: a
    corruption here means the model diverged, not that the workload is
    unlucky.
    """


class SnapshotError(CorruptionError):
    """A persisted snapshot or checkpoint is torn, truncated, or stale.

    Raised by the persistence layer when a blob fails its magic/version/
    checksum validation or when a restored structure disagrees with a
    rebuild from first principles — the signal to fall back to an older
    checkpoint rather than mount corrupt state.
    """


class CrashPoint(ReproError):
    """Raised by fault-injection hooks to simulate a crash mid-operation."""


class DeviceError(ReproError):
    """Device-level fault (see the module docstring's retry contract)."""


class TransientIoError(DeviceError):
    """A single I/O failed but the device survives; retryable.

    Reads are retried automatically by the sharded composite (idempotent);
    transient *write* errors propagate because the backend may hold
    partial state that a blind re-issue would corrupt.
    """


class ShardLostError(DeviceError):
    """The device backing a shard is permanently gone; never retryable."""


class ShardUnavailableError(DeviceError):
    """No surviving replica holds the requested object.

    Raised at the :class:`~repro.backends.sharded.ShardedStore` boundary
    only when redundancy for that key is exhausted; other keys on the
    same store stay readable.
    """
