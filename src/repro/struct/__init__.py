"""Shared in-memory data-structure primitives.

The simulation's indexes (free-space map, device segment store) all
need the same thing: a sorted collection with O(log n) search and
mutations that never pay a whole-collection memmove.  The blocked
two-level layout in :mod:`repro.struct.blockedlist` is that shared
answer; see its module docstring for the invariants and the
augmentation contract.
"""

from repro.struct.blockedlist import BlockedList, MaxWeightAugmentation

__all__ = ["BlockedList", "MaxWeightAugmentation"]
