"""Blocked two-level sorted list with pluggable per-block augmentation.

This is the one ordered-collection primitive behind the repo's hot
indexes: the free-space engine's address tier (augmented with the max
run length per block), its power-of-two size buckets, and the block
device's sparse segment store.  Before extraction each of those
hand-rolled the same machinery; they now share :class:`BlockedList`.

Layout
------
Keys live in a list of **blocks** (each a sorted Python list) plus a
parallel **directory** of block minima.  A lookup bisects the
directory, then bisects one block; a mutation pays the directory
bisect plus an O(block) ``memmove`` inside one block.  With blocks
bounded by the load factor this makes every operation
O(log n + load) ≈ O(√n) worst case instead of the flat list's O(n)
memmove — the difference between 10^3 and 10^6 keys being practical.

Invariants (checked by :meth:`BlockedList.check`)
-------------------------------------------------
* Every block is non-empty and sorted; concatenating blocks in
  directory order yields the sorted key sequence.
* ``mins[i] == blocks[i][0]`` for every block.
* Block size stays in ``[1, 2 * load)``: a block reaching
  ``2 * load`` keys splits in half (directory insert, O(#blocks));
  a block emptied by removal is deleted.  Blocks are never rebalanced
  by merging — adjacent small blocks are allowed, matching the
  original freelist behaviour exactly (parity tests depend on it).
* When augmented, ``sums[i]`` equals ``augment.summarize(blocks[i])``.

Augmentation contract
---------------------
An augmentation maintains one summary value per block, incrementally
where possible:

* ``summarize(block)`` — full O(block) recompute.
* ``add(summary, weight)`` — summary after a key of ``weight`` joins
  the block (must always succeed).
* ``discard(summary, weight)`` — summary after a key of ``weight``
  leaves, or ``None`` to request a ``summarize`` rescan.

Weights are supplied by the caller on every mutation (so the caller
can mutate its weight source first), while rescans pull weights
through the augmentation's own ``weight(key)`` callable — the caller
must keep that source consistent with the list *before* mutating it.
:class:`MaxWeightAugmentation` tracks ``(max weight, count attaining
it)``, which is what lets the free-space index's ``first_fit`` skip
whole blocks that cannot satisfy a request.

Complexity of the public methods (n keys, b = #blocks ≈ n / load)
-----------------------------------------------------------------
``insert`` / ``remove`` / ``replace``: O(log n + load), plus O(b) on
the rare split or block deletion.  ``pred_le`` / ``pred_lt`` /
``succ_gt`` / ``first_ge``: O(log n).  ``first`` / ``last`` /
``__len__``: O(1).  Iteration: O(n); ``iter_from``: O(log n) to seek
plus O(1) per key yielded.  Mutating the list during iteration is
undefined.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections.abc import Callable, Iterator
from typing import Any, cast

from repro.errors import CorruptionError

#: Default target block size.  Blocks split when they reach twice
#: this.  Trades the O(load) in-block memmove per mutation against the
#: O(n / load) directory; ~256 is near the optimum across 10^3..10^6
#: keys (measured by ``benchmarks/bench_alloc_micro.py``).
DEFAULT_LOAD = 256


class MaxWeightAugmentation:
    """Per-block ``(max weight, count attaining it)`` summary.

    The count lets a removal decrement instead of rescanning when
    several keys tie for the maximum; only removing the last maximal
    key forces an O(block) rescan.  Weights must be positive so the
    empty summary ``(0, 0)`` never collides with a real one.
    """

    __slots__ = ("weight",)

    def __init__(self, weight: Callable[[Any], int]) -> None:
        #: Maps a key to its current weight; used only by rescans.
        self.weight = weight

    def summarize(self, block: list[Any]) -> tuple[int, int]:
        weight = self.weight
        mx = 0
        cnt = 0
        for key in block:
            w = weight(key)
            if w > mx:
                mx, cnt = w, 1
            elif w == mx:
                cnt += 1
        return mx, cnt

    def add(self, summary: tuple[int, int], weight: int) -> tuple[int, int]:
        mx, cnt = summary
        if weight > mx:
            return weight, 1
        if weight == mx:
            return mx, cnt + 1
        return summary

    def discard(self, summary: tuple[int, int],
                weight: int) -> tuple[int, int] | None:
        mx, cnt = summary
        if weight == mx:
            if cnt == 1:
                return None
            return mx, cnt - 1
        return summary


class BlockedList:
    """Sorted collection of unique, mutually comparable keys.

    ``blocks``, ``mins``, and ``sums`` are exposed read-only so
    callers can run pruned scans over the directory (the free-space
    index's ``first_fit`` skips blocks whose max-weight summary cannot
    satisfy a request).  Mutate only through the methods.
    """

    __slots__ = ("load", "blocks", "mins", "sums", "augment", "_n")

    def __init__(self, *, load: int = DEFAULT_LOAD,
                 augment: MaxWeightAugmentation | None = None) -> None:
        if load < 2:
            raise CorruptionError("load factor must be at least 2")
        self.load = load
        self.blocks: list[list[Any]] = []
        self.mins: list[Any] = []
        self.sums: list[tuple[int, int]] = []
        self.augment = augment
        self._n = 0

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, key: Any, weight: int | None = None) -> None:
        """Add ``key`` (must not be present); O(log n + load)."""
        blocks = self.blocks
        mins = self.mins
        augment = self.augment
        self._n += 1
        if not blocks:
            blocks.append([key])
            mins.append(key)
            if augment is not None:
                self.sums.append(augment.add((0, 0), cast(int, weight)))
            return
        bi = bisect_right(mins, key) - 1
        if bi < 0:
            bi = 0
        block = blocks[bi]
        insort(block, key)
        if block[0] != mins[bi]:
            mins[bi] = block[0]
        if augment is not None:
            self.sums[bi] = augment.add(self.sums[bi], cast(int, weight))
        if len(block) >= 2 * self.load:
            self._split(bi)

    def _split(self, bi: int) -> None:
        block = self.blocks[bi]
        half = len(block) // 2
        right = block[half:]
        del block[half:]
        self.blocks.insert(bi + 1, right)
        self.mins.insert(bi + 1, right[0])
        augment = self.augment
        if augment is not None:
            self.sums[bi] = augment.summarize(block)
            self.sums.insert(bi + 1, augment.summarize(right))

    def remove(self, key: Any, weight: int | None = None) -> bool:
        """Drop ``key``; False when it was not present."""
        mins = self.mins
        bi = bisect_right(mins, key) - 1
        if bi < 0:
            return False
        block = self.blocks[bi]
        pos = bisect_left(block, key)
        if pos >= len(block) or block[pos] != key:
            return False
        del block[pos]
        self._n -= 1
        if not block:
            del self.blocks[bi]
            del mins[bi]
            if self.augment is not None:
                del self.sums[bi]
            return True
        if pos == 0:
            mins[bi] = block[0]
        augment = self.augment
        if augment is not None:
            summary = augment.discard(self.sums[bi], cast(int, weight))
            if summary is None:
                summary = augment.summarize(block)
            self.sums[bi] = summary
        return True

    def replace(self, old: Any, new: Any, *, old_weight: int | None = None,
                new_weight: int | None = None) -> None:
        """Rewrite ``old`` to ``new`` in place — no memmove, O(log n).

        The caller guarantees the replacement preserves sort order
        (i.e. ``new`` still belongs between ``old``'s neighbours);
        this is the boundary-move fast path behind the free index's
        carves and merges.
        """
        mins = self.mins
        bi = bisect_right(mins, old) - 1
        if bi < 0:
            raise CorruptionError(f"blocked list: key {old!r} not present")
        block = self.blocks[bi]
        pos = bisect_left(block, old)
        if pos >= len(block) or block[pos] != old:
            raise CorruptionError(f"blocked list: key {old!r} not present")
        block[pos] = new
        if pos == 0:
            mins[bi] = new
        augment = self.augment
        if augment is not None:
            summary = augment.add(self.sums[bi], cast(int, new_weight))
            summary = augment.discard(summary, cast(int, old_weight))
            if summary is None:
                summary = augment.summarize(block)
            self.sums[bi] = summary

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def __contains__(self, key: Any) -> bool:
        bi = bisect_right(self.mins, key) - 1
        if bi < 0:
            return False
        block = self.blocks[bi]
        pos = bisect_left(block, key)
        return pos < len(block) and block[pos] == key

    def pred_le(self, key: Any) -> Any | None:
        """Largest key ``<= key``, or None."""
        bi = bisect_right(self.mins, key) - 1
        if bi < 0:
            return None
        block = self.blocks[bi]
        pos = bisect_right(block, key) - 1
        return block[pos] if pos >= 0 else None

    def pred_lt(self, key: Any) -> Any | None:
        """Largest key ``< key``, or None."""
        bi = bisect_left(self.mins, key) - 1
        if bi < 0:
            return None
        block = self.blocks[bi]
        pos = bisect_left(block, key) - 1
        return block[pos] if pos >= 0 else None

    def succ_gt(self, key: Any) -> Any | None:
        """Smallest key ``> key``, or None."""
        blocks = self.blocks
        if not blocks:
            return None
        bi = bisect_right(self.mins, key) - 1
        if bi < 0:
            return blocks[0][0]
        block = blocks[bi]
        pos = bisect_right(block, key)
        if pos < len(block):
            return block[pos]
        if bi + 1 < len(blocks):
            return blocks[bi + 1][0]
        return None

    def first_ge(self, key: Any) -> Any | None:
        """Smallest key ``>= key``, or None."""
        blocks = self.blocks
        if not blocks:
            return None
        bi = bisect_right(self.mins, key) - 1
        if bi < 0:
            return blocks[0][0]
        block = blocks[bi]
        pos = bisect_left(block, key)
        if pos < len(block):
            return block[pos]
        if bi + 1 < len(blocks):
            return blocks[bi + 1][0]
        return None

    def first(self) -> Any:
        """Smallest key; the list must be non-empty."""
        return self.blocks[0][0]

    def last(self) -> Any:
        """Largest key; the list must be non-empty."""
        return self.blocks[-1][-1]

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        for block in self.blocks:
            yield from block

    def iter_desc(self) -> Iterator[Any]:
        for block in reversed(self.blocks):
            yield from reversed(block)

    def iter_from(self, key: Any) -> Iterator[Any]:
        """Keys ``>= key`` in ascending order."""
        blocks = self.blocks
        if not blocks:
            return
        bi = bisect_right(self.mins, key) - 1
        if bi < 0:
            bi, pos = 0, 0
        else:
            pos = bisect_left(blocks[bi], key)
            if pos >= len(blocks[bi]):
                bi, pos = bi + 1, 0
        for b in range(bi, len(blocks)):
            block = blocks[b]
            for i in range(pos if b == bi else 0, len(block)):
                yield block[i]

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def check(self, label: str) -> None:
        """Raise :class:`CorruptionError` on internal inconsistency."""
        if len(self.blocks) != len(self.mins):
            raise CorruptionError(f"{label}: directory sizes disagree")
        if self.augment is not None and len(self.sums) != len(self.blocks):
            raise CorruptionError(f"{label}: summary directory drifted")
        flat: list = []
        for bi, block in enumerate(self.blocks):
            if not block:
                raise CorruptionError(f"{label}: empty block")
            if len(block) >= 2 * self.load:
                raise CorruptionError(f"{label}: oversized block")
            if self.mins[bi] != block[0]:
                raise CorruptionError(f"{label}: stale block minimum")
            if self.augment is not None:
                if self.sums[bi] != self.augment.summarize(block):
                    raise CorruptionError(
                        f"{label}: stale summary at block {bi}"
                    )
            flat.extend(block)
        if flat != sorted(flat):
            raise CorruptionError(f"{label}: keys are unsorted")
        if len(set(flat)) != len(flat):
            raise CorruptionError(f"{label}: duplicate keys")
        if len(flat) != self._n:
            raise CorruptionError(f"{label}: count drifted")
