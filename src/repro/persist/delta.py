"""Binary delta between two snapshot payloads (rsync-style, CRC-framed).

A delta blob encodes ``target`` against ``parent`` as a sequence of
COPY/INSERT ops, framed exactly like the other persist codecs::

    magic RDLT | version (u16) | block (u16) | parent_len (u64) |
    parent_crc (u32) | result_len (u64) | result_crc (u32) |
    nops (u32) | ops | crc32 (u32)

Ops are tag-prefixed: ``0x00`` is COPY of ``(parent_offset, length)``
(two u64), ``0x01`` is INSERT of ``length`` (u64) raw bytes.  The outer
CRC covers every byte before it (torn writes surface as
:class:`~repro.errors.SnapshotError`); ``parent_len``/``parent_crc``
pin the blob to the exact parent it was encoded against, and
``result_len``/``result_crc`` verify the reconstruction — a delta can
never silently apply to the wrong base or produce the wrong bytes.

The encoder is the classic rsync scheme: the parent is hashed in
aligned ``block``-sized windows under a weak rolling checksum; the
target is scanned with the same checksum rolled one byte at a time, and
every weak hit is byte-verified and then extended greedily, so
mostly-identical inputs (checkpoint payloads between adjacent ages)
cost one window step per matching block.  Encoding is deterministic:
the same ``(parent, target, block)`` always produces the same bytes.
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import ConfigError, SnapshotError
from repro.persist.snapshot import (SNAPSHOT_VERSION, _CRC, _crc_frame,
                                    _open_frame)

#: Default granularity of the parent's weak-hash windows.  Small enough
#: that checkpoint-sized payloads (tens of KB to a few MB) still find
#: matches around localized edits, large enough that the table stays
#: cheap.  Recorded in the header for provenance; apply never needs it.
DELTA_BLOCK = 128

_DELTA_MAGIC = b"RDLT"
_DELTA_HEADER = struct.Struct("<4sHHQIQII")
# magic, version, block, parent_len, parent_crc, result_len, result_crc, nops
_COPY_OP = struct.Struct("<QQ")            # parent offset, length
_U64 = struct.Struct("<Q")

_TAG_COPY = 0x00
_TAG_INSERT = 0x01


def _weak_table(parent: bytes, block: int) -> dict[int, list[int]]:
    """Weak checksum -> aligned parent offsets with that checksum."""
    table: dict[int, list[int]] = {}
    for off in range(0, len(parent) - block + 1, block):
        a = 0
        b = 0
        for i in range(block):
            x = parent[off + i]
            a += x
            b += (block - i) * x
        key = (a & 0xFFFF) | ((b & 0xFFFF) << 16)
        table.setdefault(key, []).append(off)
    return table


def encode_delta(parent: bytes, target: bytes, *,
                 block: int = DELTA_BLOCK) -> bytes:
    """Encode ``target`` as a delta against ``parent``.

    Always succeeds (worst case the delta is one big INSERT); callers
    decide whether the result is worth storing over a full copy.
    """
    if not 1 <= block <= 0xFFFF:
        raise ConfigError(f"delta block must be in [1, 65535], got {block}")
    parent = bytes(parent)
    target = bytes(target)
    table = _weak_table(parent, block) if len(parent) >= block else {}
    ops = bytearray()
    nops = 0
    literal = bytearray()

    def flush_literal() -> None:
        nonlocal nops
        if literal:
            ops.append(_TAG_INSERT)
            ops.extend(_U64.pack(len(literal)))
            ops.extend(literal)
            literal.clear()
            nops += 1

    pos = 0
    n = len(target)
    a = 0
    b = 0
    have_weak = False
    while pos < n:
        if not table or n - pos < block:
            # Tail shorter than a window (or nothing to match against):
            # the rest is literal.
            literal += target[pos:]
            pos = n
            break
        if not have_weak:
            a = 0
            b = 0
            for i in range(block):
                x = target[pos + i]
                a += x
                b += (block - i) * x
            have_weak = True
        key = (a & 0xFFFF) | ((b & 0xFFFF) << 16)
        match_off = -1
        candidates = table.get(key)
        if candidates is not None:
            window = target[pos: pos + block]
            for cand in candidates:
                if parent[cand: cand + block] == window:
                    match_off = cand
                    break
        if match_off < 0:
            # Miss: emit one literal byte and roll the window forward.
            x_out = target[pos]
            literal.append(x_out)
            pos += 1
            if pos + block <= n:
                x_in = target[pos + block - 1]
                a = a - x_out + x_in
                b = b - block * x_out + a
            else:
                have_weak = False
            continue
        # Verified match: extend greedily past the window.
        length = block
        parent_n = len(parent)
        while (pos + length < n and match_off + length < parent_n
               and target[pos + length] == parent[match_off + length]):
            length += 1
        flush_literal()
        ops.append(_TAG_COPY)
        ops += _COPY_OP.pack(match_off, length)
        nops += 1
        pos += length
        have_weak = False
    flush_literal()

    buf = bytearray(_DELTA_HEADER.pack(
        _DELTA_MAGIC, SNAPSHOT_VERSION, block,
        len(parent), zlib.crc32(parent),
        len(target), zlib.crc32(target), nops,
    ))
    buf += ops
    return _crc_frame(buf)


def apply_delta(parent: bytes, blob: bytes) -> bytes:
    """Reconstruct the target a delta blob encodes against ``parent``.

    Raises :class:`~repro.errors.SnapshotError` on framing damage, on a
    parent that is not the one the delta was encoded against, on
    malformed ops, and on a reconstruction whose length or CRC disagrees
    with the header — a delta either yields exactly the encoded target
    or refuses.
    """
    (_, _, _, parent_len, parent_crc, result_len, result_crc,
     nops) = _open_frame(blob, _DELTA_MAGIC, _DELTA_HEADER, "delta")
    parent = bytes(parent)
    if len(parent) != parent_len or zlib.crc32(parent) != parent_crc:
        raise SnapshotError(
            f"delta snapshot was encoded against a different parent "
            f"({parent_len} bytes, crc {parent_crc:#010x}; got "
            f"{len(parent)} bytes, crc {zlib.crc32(parent):#010x})"
        )
    out = bytearray()
    offset = _DELTA_HEADER.size
    end = len(blob) - _CRC.size
    for _ in range(nops):
        if offset >= end:
            raise SnapshotError("delta snapshot ops truncated")
        tag = blob[offset]
        offset += 1
        if tag == _TAG_COPY:
            if offset + _COPY_OP.size > end:
                raise SnapshotError("delta snapshot COPY op truncated")
            src, length = _COPY_OP.unpack_from(blob, offset)
            offset += _COPY_OP.size
            if length <= 0 or src + length > parent_len:
                raise SnapshotError(
                    f"delta snapshot COPY [{src}, {src + length}) outside "
                    f"its parent of {parent_len} bytes"
                )
            out += parent[src: src + length]
        elif tag == _TAG_INSERT:
            if offset + _U64.size > end:
                raise SnapshotError("delta snapshot INSERT op truncated")
            (length,) = _U64.unpack_from(blob, offset)
            offset += _U64.size
            if length <= 0 or offset + length > end:
                raise SnapshotError("delta snapshot INSERT data truncated")
            out += blob[offset: offset + length]
            offset += length
        else:
            raise SnapshotError(f"delta snapshot has unknown op tag {tag}")
    if offset != end:
        raise SnapshotError("delta snapshot has trailing bytes after its ops")
    result = bytes(out)
    if len(result) != result_len or zlib.crc32(result) != result_crc:
        raise SnapshotError(
            "delta snapshot reconstruction failed its checksum"
        )
    return result
