"""Durable state: snapshots, rebuild paths, and checkpoints.

The simulation's hot structures live in memory; this package is how
they survive a process death.  Three layers, lowest first:

* :mod:`repro.persist.snapshot` — versioned, byte-stable binary
  encodings of the free-extent index (both engines) and the journal's
  recoverable state, each guarded by magic, version, and CRC so a torn
  write is detected rather than mounted.
* :mod:`repro.persist.delta` — a generic rsync-style binary delta
  between two payloads under the same CRC framing, pinned to its exact
  parent by length + CRC; the delta-checkpoint encoding.
* :mod:`repro.persist.rebuild` — reconstruction of the free index from
  the file table's extent maps (the authoritative source), plus the
  run-for-run cross-check that catches a snapshot diverging from the
  extent maps — the torn/partial-state detector.
* :mod:`repro.persist.checkpoint` — :class:`CheckpointManager`,
  directory-level checkpoints published by an atomic rename with a
  manifest of checksums written last; checkpoints may be stored as
  delta chains against their predecessor (``full_interval``); loading
  replays and verifies the whole chain, skips anything invalid, and
  falls back to the newest checkpoint whose chain is intact.

The experiment driver composes these into ``--checkpoint-dir`` /
``--resume`` (see :mod:`repro.core.experiment`); the crash-injection
suite (``tests/crashsim.py``) holds every layer to the paper's
deferred-free rule under a kill-point matrix.
"""

from repro.persist.checkpoint import Checkpoint, CheckpointManager, fs_components
from repro.persist.delta import DELTA_BLOCK, apply_delta, encode_delta
from repro.persist.rebuild import cross_check, rebuild_free_index, rebuild_fs_free_index
from repro.persist.snapshot import (
    SNAPSHOT_VERSION,
    decode_free_index,
    decode_journal_state,
    encode_free_index,
    encode_journal,
    restore_journal,
    verify_journal,
)

__all__ = [
    "DELTA_BLOCK",
    "SNAPSHOT_VERSION",
    "Checkpoint",
    "CheckpointManager",
    "apply_delta",
    "cross_check",
    "encode_delta",
    "decode_free_index",
    "decode_journal_state",
    "encode_free_index",
    "encode_journal",
    "fs_components",
    "rebuild_free_index",
    "rebuild_fs_free_index",
    "restore_journal",
    "verify_journal",
]
