"""Byte-stable binary snapshots of the free index and journal state.

Formats are little-endian ``struct`` layouts, each framed the same way::

    magic (4) | version (u16) | ... header ... | payload | crc32 (u32)

The CRC covers every byte before it, so truncation, bit rot, and torn
writes all surface as :class:`~repro.errors.SnapshotError` instead of a
silently wrong free map.  Encodings are **byte-stable**: the same
logical state always serializes to the same bytes (runs are written in
address order, the one canonical order both engines iterate in), so
``encode(decode(blob)) == blob`` and checkpoints diff cleanly.

Free-index snapshots (magic ``RFXS``) record the engine kind so a
restore defaults to the engine that wrote it, but ``kind=`` can
override — the engines are placement-identical, so a snapshot taken
under ``naive`` restores into ``tiered`` (and vice versa) for
migrations and ablation replays.  Decoding validates the run list
(ascending, coalesced, inside capacity) and runs the engine's own
``check_invariants`` before handing the index back.

Journal snapshots (magic ``RJLS``) carry the journal's *recoverable*
state (:class:`~repro.fs.journal.JournalState`) plus the log geometry
it was taken under; :func:`restore_journal` refuses a blob whose
geometry disagrees with the mounting journal's, because a cursor is
only meaningful inside the region it wrapped in.
"""

from __future__ import annotations

import struct
import zlib

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex, make_free_index
from repro.alloc.naive import NaiveFreeExtentIndex
from repro.errors import SnapshotError
from repro.fs.journal import Journal, JournalState

#: Bumped on any incompatible layout change; decoders reject newer blobs.
SNAPSHOT_VERSION = 1

_FREE_MAGIC = b"RFXS"
_JOURNAL_MAGIC = b"RJLS"

#: kind code <-> engine name (codes are part of the on-disk format).
_KIND_CODES = {"tiered": 0, "naive": 1}
_KIND_NAMES = {code: name for name, code in _KIND_CODES.items()}

_FREE_HEADER = struct.Struct("<4sHBBQQ")   # magic, version, kind, pad, capacity, nruns
_RUN = struct.Struct("<QQ")                # start, length
_CRC = struct.Struct("<I")
_JOURNAL_HEADER = struct.Struct("<4sHxxQQQQIQQII")
# magic, version, log_base, log_size, record_bytes, cursor,
# ops_since_commit, commits, logged_ops, npending, nreplayable


def _crc_frame(buf: bytearray) -> bytes:
    buf += _CRC.pack(zlib.crc32(bytes(buf)))
    return bytes(buf)


def _open_frame(blob: bytes, magic: bytes, header: struct.Struct,
                what: str) -> tuple:
    """Validate framing and return the unpacked header fields."""
    if len(blob) < header.size + _CRC.size:
        raise SnapshotError(f"{what} snapshot truncated ({len(blob)} bytes)")
    (stored_crc,) = _CRC.unpack_from(blob, len(blob) - _CRC.size)
    if zlib.crc32(blob[: -_CRC.size]) != stored_crc:
        raise SnapshotError(f"{what} snapshot failed its checksum")
    fields = header.unpack_from(blob, 0)
    if fields[0] != magic:
        raise SnapshotError(f"{what} snapshot has bad magic {fields[0]!r}")
    if fields[1] > SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{what} snapshot version {fields[1]} is newer than "
            f"supported version {SNAPSHOT_VERSION}"
        )
    return fields


def _expect_size(blob: bytes, expected: int, what: str) -> None:
    if len(blob) != expected:
        raise SnapshotError(
            f"{what} snapshot is {len(blob)} bytes, expected {expected}"
        )


# ----------------------------------------------------------------------
# Free-extent index
# ----------------------------------------------------------------------
def index_kind_of(index: FreeExtentIndex | NaiveFreeExtentIndex) -> str:
    """The factory name of an engine instance."""
    return "naive" if isinstance(index, NaiveFreeExtentIndex) else "tiered"


def encode_free_index(index: FreeExtentIndex | NaiveFreeExtentIndex) -> bytes:
    """Serialize a free index; same free map -> same bytes."""
    runs = list(index)  # address order: the canonical iteration order
    buf = bytearray(_FREE_HEADER.pack(
        _FREE_MAGIC, SNAPSHOT_VERSION, _KIND_CODES[index_kind_of(index)], 0,
        index.capacity, len(runs),
    ))
    pack_into = _RUN.pack_into
    buf += bytes(len(runs) * _RUN.size)
    offset = _FREE_HEADER.size
    for ext in runs:
        pack_into(buf, offset, ext.start, ext.length)
        offset += _RUN.size
    return _crc_frame(buf)


def decode_free_index(blob: bytes, *, kind: str | None = None,
                      ) -> FreeExtentIndex | NaiveFreeExtentIndex:
    """Rebuild a free index from :func:`encode_free_index` output.

    ``kind`` overrides the engine recorded in the blob (the engines are
    placement-identical, so cross-engine restores are exact).  The run
    list is validated structurally — ascending, coalesced, inside
    capacity — and the engine's own ``check_invariants`` runs before
    the index is returned.
    """
    magic, version, kind_code, _, capacity, nruns = _open_frame(
        blob, _FREE_MAGIC, _FREE_HEADER, "free-index")
    if kind_code not in _KIND_NAMES:
        raise SnapshotError(f"unknown free-index engine code {kind_code}")
    _expect_size(blob, _FREE_HEADER.size + nruns * _RUN.size + _CRC.size,
                 "free-index")
    index = make_free_index(capacity, kind=kind or _KIND_NAMES[kind_code],
                            initially_free=False)
    offset = _FREE_HEADER.size
    prev_end = -1
    for _ in range(nruns):
        start, length = _RUN.unpack_from(blob, offset)
        offset += _RUN.size
        if length <= 0 or start + length > capacity:
            raise SnapshotError(
                f"free-index snapshot run [{start}, {start + length}) "
                f"outside capacity {capacity}"
            )
        if start <= prev_end:
            detail = "overlapping" if start < prev_end else "uncoalesced"
            raise SnapshotError(
                f"free-index snapshot has {detail} runs at {start}"
            )
        index.add(Extent(start, length))
        prev_end = start + length
    index.check_invariants()
    return index


# ----------------------------------------------------------------------
# Journal state
# ----------------------------------------------------------------------
def encode_journal(journal: Journal) -> bytes:
    """Serialize a journal's recoverable state plus its log geometry."""
    state = journal.snapshot_state()
    buf = bytearray(_JOURNAL_HEADER.pack(
        _JOURNAL_MAGIC, SNAPSHOT_VERSION,
        journal.log_base, journal.log_size, journal.record_bytes,
        state.cursor, state.ops_since_commit, state.commits,
        state.logged_ops, len(state.pending), len(state.replayable),
    ))
    # buffered_records rides behind the fixed header (kept out of it so
    # the header stays one struct of co-typed fields).
    buf += struct.pack("<I", state.buffered_records)
    for ext in (*state.pending, *state.replayable):
        buf += _RUN.pack(ext.start, ext.length)
    return _crc_frame(buf)


def decode_journal_state(blob: bytes) -> tuple[dict, JournalState]:
    """Decode a journal blob into (log geometry, recoverable state)."""
    (magic, version, log_base, log_size, record_bytes, cursor,
     ops_since_commit, commits, logged_ops, npending,
     nreplayable) = _open_frame(blob, _JOURNAL_MAGIC, _JOURNAL_HEADER,
                                "journal")
    offset = _JOURNAL_HEADER.size
    _expect_size(
        blob,
        offset + 4 + (npending + nreplayable) * _RUN.size + _CRC.size,
        "journal",
    )
    (buffered_records,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    extents: list[Extent] = []
    for _ in range(npending + nreplayable):
        start, length = _RUN.unpack_from(blob, offset)
        offset += _RUN.size
        if length <= 0:
            raise SnapshotError("journal snapshot has a non-positive free")
        extents.append(Extent(start, length))
    geometry = {"log_base": log_base, "log_size": log_size,
                "record_bytes": record_bytes}
    state = JournalState(
        cursor=cursor,
        ops_since_commit=ops_since_commit,
        buffered_records=buffered_records,
        commits=commits,
        logged_ops=logged_ops,
        pending=tuple(extents[:npending]),
        replayable=tuple(extents[npending:]),
    )
    if cursor >= log_size:
        raise SnapshotError(
            f"journal snapshot cursor {cursor} outside its own log of "
            f"{log_size} bytes"
        )
    return geometry, state


def restore_journal(journal: Journal, blob: bytes) -> JournalState:
    """Adopt a snapshotted state into ``journal``; geometry must match."""
    geometry, state = decode_journal_state(blob)
    actual = {"log_base": journal.log_base, "log_size": journal.log_size,
              "record_bytes": journal.record_bytes}
    if geometry != actual:
        raise SnapshotError(
            f"journal snapshot geometry {geometry} does not match the "
            f"mounting journal's {actual}"
        )
    journal.restore_state(state)
    return state


def verify_journal(journal: Journal, blob: bytes) -> None:
    """Check that ``journal``'s live state matches a snapshot blob.

    Used on checkpoint load to cross-check the pickled journal against
    the independently encoded snapshot — a mismatch means one of the
    two checkpoint artifacts is torn.
    """
    geometry, state = decode_journal_state(blob)
    actual = {"log_base": journal.log_base, "log_size": journal.log_size,
              "record_bytes": journal.record_bytes}
    if geometry != actual:
        raise SnapshotError(
            f"journal snapshot geometry {geometry} != live {actual}"
        )
    live = journal.snapshot_state()
    if live != state:
        raise SnapshotError(
            "journal snapshot disagrees with the restored journal "
            f"(snapshot {state}, live {live})"
        )
