"""Directory checkpoints with atomic publish and torn-state detection.

A checkpoint is a directory ``ckpt-NNNNNN`` holding named payload files
plus a ``MANIFEST.json`` written last: schema version, caller metadata,
and the SHA-256 + size of every payload file.  Writing goes to a
``.tmp`` sibling and the final ``os.replace`` of the directory is the
commit point — a crash anywhere earlier leaves only a ``.tmp`` husk
that loaders ignore and the next save sweeps away.  LFS keeps two
checkpoint regions and mounts the newer valid one; we do the same by
retaining ``keep`` published checkpoints, so a crash *during* a save
can always fall back to the previous one.

:meth:`CheckpointManager.load_latest` walks published checkpoints
newest-first and returns the first that fully verifies (manifest parses,
every file present with matching size and digest); anything torn is
skipped, never mounted.  ``fault_hook`` injects crashes at each write
boundary for the kill-point matrix in ``tests/test_crash_matrix.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ConfigError, SnapshotError

#: Manifest schema; bumped on incompatible layout changes.
CHECKPOINT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
_PREFIX = "ckpt-"
_TMP_SUFFIX = ".tmp"


def _digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


@dataclass
class Checkpoint:
    """One published, verified checkpoint directory."""

    seq: int
    path: Path
    meta: dict
    files: dict[str, dict] = field(repr=False)
    #: Blobs already verified this session; avoids re-reading and
    #: re-hashing state.pkl (the largest file) on every consumer read.
    _cache: dict[str, bytes] = field(default_factory=dict, repr=False)

    def names(self) -> list[str]:
        return list(self.files)

    def read(self, name: str) -> bytes:
        """Read one payload file, verifying its digest once."""
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        info = self.files.get(name)
        if info is None:
            raise SnapshotError(
                f"checkpoint {self.path.name} has no file {name!r}"
            )
        try:
            blob = (self.path / name).read_bytes()
        except OSError as exc:
            raise SnapshotError(
                f"checkpoint file {self.path.name}/{name} unreadable: {exc}"
            ) from None
        if len(blob) != info["bytes"] or _digest(blob) != info["sha256"]:
            raise SnapshotError(
                f"checkpoint file {self.path.name}/{name} failed its digest"
            )
        self._cache[name] = blob
        return blob


class CheckpointManager:
    """Write and load checkpoints under one directory.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first use.
    keep:
        Published checkpoints to retain (>= 1).  Older ones are pruned
        only after a newer one has been successfully published.
    fault_hook:
        Optional fault-injection callable, invoked with a label at every
        write boundary (``"write:<name>"`` before each payload file,
        ``"manifest"`` after the manifest is staged, ``"published"``
        after the atomic rename); raising simulates a crash there.
    """

    def __init__(self, directory: str | Path, *, keep: int = 2,
                 fault_hook: Callable[[str], None] | None = None) -> None:
        if keep < 1:
            raise ConfigError("keep must be >= 1")
        self.directory = Path(directory)
        self.keep = keep
        self.fault_hook = fault_hook

    # ------------------------------------------------------------------
    def _fault(self, label: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(label)

    def _published(self) -> list[tuple[int, Path]]:
        if not self.directory.is_dir():
            return []
        out = []
        for path in self.directory.iterdir():
            name = path.name
            if not name.startswith(_PREFIX) or name.endswith(_TMP_SUFFIX):
                continue
            try:
                seq = int(name[len(_PREFIX):])
            except ValueError:
                continue
            out.append((seq, path))
        return sorted(out)

    # ------------------------------------------------------------------
    def save(self, files: Mapping[str, bytes],
             meta: dict[str, Any] | None = None) -> Checkpoint:
        """Write a new checkpoint; returns it once durably published."""
        for name in files:
            if name == MANIFEST_NAME or "/" in name or name.startswith("."):
                raise ConfigError(f"bad checkpoint file name {name!r}")
        self.directory.mkdir(parents=True, exist_ok=True)
        published = self._published()
        seq = published[-1][0] + 1 if published else 1
        final = self.directory / f"{_PREFIX}{seq:06d}"
        staging = self.directory / f"{_PREFIX}{seq:06d}{_TMP_SUFFIX}"
        if staging.exists():
            shutil.rmtree(staging)  # husk of a crashed save
        staging.mkdir()
        manifest_files = {}
        for name, blob in files.items():
            self._fault(f"write:{name}")
            (staging / name).write_bytes(blob)
            manifest_files[name] = {"sha256": _digest(blob),
                                    "bytes": len(blob)}
        manifest = {
            "version": CHECKPOINT_VERSION,
            "seq": seq,
            "meta": dict(meta or {}),
            "files": manifest_files,
        }
        (staging / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True)
        )
        self._fault("manifest")
        os.replace(staging, final)  # the commit point
        self._fault("published")
        self._prune()
        return Checkpoint(seq=seq, path=final, meta=manifest["meta"],
                          files=manifest_files)

    def _prune(self) -> None:
        published = self._published()
        for _, path in published[: max(0, len(published) - self.keep)]:
            shutil.rmtree(path, ignore_errors=True)

    # ------------------------------------------------------------------
    def load(self, path: Path) -> Checkpoint:
        """Verify and open one checkpoint directory (raises if torn)."""
        manifest_path = path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise SnapshotError(
                f"checkpoint {path.name} has no readable manifest: {exc}"
            ) from None
        # Structural validation: a manifest that parses as JSON can
        # still be arbitrarily misshapen after a torn write; everything
        # load touches must be checked before it is used, so corruption
        # surfaces as SnapshotError (which load_latest skips), never as
        # a TypeError escaping the fallback walk.
        if not isinstance(manifest, dict) or \
                not isinstance(manifest.get("version", 0), int) or \
                manifest.get("version", 0) > CHECKPOINT_VERSION or \
                not isinstance(manifest.get("seq", 0), int) or \
                not isinstance(manifest.get("meta", {}), dict) or \
                not isinstance(manifest.get("files"), dict):
            raise SnapshotError(
                f"checkpoint {path.name} manifest is malformed or too new"
            )
        for name, info in manifest["files"].items():
            if not (isinstance(name, str) and isinstance(info, dict)
                    and isinstance(info.get("bytes"), int)
                    and isinstance(info.get("sha256"), str)):
                raise SnapshotError(
                    f"checkpoint {path.name} manifest entry {name!r} "
                    "is malformed"
                )
        ckpt = Checkpoint(
            seq=manifest.get("seq", 0),
            path=path,
            meta=dict(manifest.get("meta", {})),
            files=manifest["files"],
        )
        for name in ckpt.files:
            ckpt.read(name)  # digest check; raises SnapshotError if torn
        return ckpt

    def load_latest(self) -> Checkpoint | None:
        """The newest checkpoint that fully verifies, or ``None``.

        Torn or partially written checkpoints (bad manifest, missing
        file, digest mismatch) are skipped — never mounted — and the
        walk falls back to the next older one.
        """
        for _, path in reversed(self._published()):
            try:
                return self.load(path)
            except SnapshotError:
                continue
        return None


# ----------------------------------------------------------------------
# Store introspection (duck-typed so this layer imports no backend)
# ----------------------------------------------------------------------
def fs_components(store: Any) -> list[tuple[str, Any]]:
    """(label, SimFilesystem) pairs reachable inside an object store.

    The filesystem backend exposes one (``vol0``); a sharded composite
    exposes one per filesystem shard (``shard0``..); backends without a
    free index contribute none.  Labels are stable, so checkpoint file
    names (``free_index-<label>.bin``) line up across save and load.
    """
    fs = getattr(store, "fs", None)
    if fs is not None and hasattr(fs, "free_index"):
        return [("vol0", fs)]
    out: list[tuple[str, Any]] = []
    for i, shard in enumerate(getattr(store, "shards", ()) or ()):
        fs = getattr(shard, "fs", None)
        if fs is not None and hasattr(fs, "free_index"):
            out.append((f"shard{i}", fs))
    return out
