"""Directory checkpoints with atomic publish and torn-state detection.

A checkpoint is a directory ``ckpt-NNNNNN`` holding named payload files
plus a ``MANIFEST.json`` written last: schema version, caller metadata,
and the SHA-256 + size of every payload file.  Writing goes to a
``.tmp`` sibling and the final ``os.replace`` of the directory is the
commit point — a crash anywhere earlier leaves only a ``.tmp`` husk
that loaders ignore and the next save sweeps away.  LFS keeps two
checkpoint regions and mounts the newer valid one; we do the same by
retaining ``keep`` published checkpoints, so a crash *during* a save
can always fall back to the previous one.

Delta chains
------------
With ``full_interval > 1`` a save may store payload files as binary
deltas (:mod:`repro.persist.delta`) against the previous published
checkpoint instead of full copies.  The manifest then carries a
top-level ``parent_seq`` link and each delta entry records both the
stored blob's digest and the reconstructed content's
(``content_sha256``/``content_bytes``), so every link of the chain is
verified on load.  The rules:

- A file is delta-encoded only when the parent has a file of the same
  name, the delta is strictly smaller than the full copy, and the
  parent was written under the same ``meta["schema"]`` — a schema bump
  always cuts the chain.
- Every ``full_interval``-th checkpoint is forced full (chain length is
  at most ``full_interval - 1`` deltas), bounding replay depth.
- :meth:`CheckpointManager.load` replays the whole parent chain; any
  torn or missing link raises :class:`~repro.errors.SnapshotError`, so
  :meth:`load_latest` falls back to the newest checkpoint that does not
  depend on the damage — ultimately the last full snapshot.
- Retention is chain-aware: pruning keeps the ``keep`` newest heads
  *plus* every ancestor a retained head still needs.

:meth:`CheckpointManager.load_latest` walks published checkpoints
newest-first and returns the first that fully verifies (manifest parses,
seq matches the directory name, every file present with matching size
and digest, parent chain intact); anything torn is skipped, never
mounted.  ``fault_hook`` injects crashes at each write boundary for the
kill-point matrix in ``tests/test_crash_matrix.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import ConfigError, SnapshotError
from repro.persist.delta import apply_delta, encode_delta

#: Manifest schema; bumped on incompatible layout changes.  ``2``:
#: manifests gained ``parent_seq`` and per-file ``encoding`` (``full`` /
#: ``delta``) with delta entries carrying ``content_sha256`` /
#: ``content_bytes``; version-1 manifests still load (all-full, no
#: parent).
CHECKPOINT_VERSION = 2

MANIFEST_NAME = "MANIFEST.json"
_PREFIX = "ckpt-"
_TMP_SUFFIX = ".tmp"


def _digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _dir_seq(path: Path) -> int | None:
    """The sequence number a ``ckpt-NNNNNN`` directory name encodes."""
    name = path.name
    if not name.startswith(_PREFIX) or name.endswith(_TMP_SUFFIX):
        return None
    try:
        return int(name[len(_PREFIX):])
    except ValueError:
        return None


@dataclass
class Checkpoint:
    """One published, verified checkpoint directory."""

    seq: int
    path: Path
    meta: dict
    files: dict[str, dict] = field(repr=False)
    #: Chain link: the seq of the checkpoint delta entries decode
    #: against (``None`` for a self-contained checkpoint) and the loaded
    #: parent itself.
    parent_seq: int | None = None
    parent: "Checkpoint | None" = field(default=None, repr=False)
    #: Blobs already verified this session; avoids re-reading and
    #: re-hashing state.pkl (the largest file) on every consumer read.
    _cache: dict[str, bytes] = field(default_factory=dict, repr=False)

    def names(self) -> list[str]:
        return list(self.files)

    def read(self, name: str) -> bytes:
        """Read one payload file's *content*, verifying digests once.

        For delta entries this reads and verifies the stored delta blob,
        reconstructs the content against the parent chain, and verifies
        the content digest too.
        """
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        info = self.files.get(name)
        if info is None:
            raise SnapshotError(
                f"checkpoint {self.path.name} has no file {name!r}"
            )
        try:
            blob = (self.path / name).read_bytes()
        except OSError as exc:
            raise SnapshotError(
                f"checkpoint file {self.path.name}/{name} unreadable: {exc}"
            ) from None
        if len(blob) != info["bytes"] or _digest(blob) != info["sha256"]:
            raise SnapshotError(
                f"checkpoint file {self.path.name}/{name} failed its digest"
            )
        if info.get("encoding", "full") == "delta":
            if self.parent is None:
                raise SnapshotError(
                    f"checkpoint file {self.path.name}/{name} is a delta "
                    "but the checkpoint has no parent"
                )
            blob = apply_delta(self.parent.read(name), blob)
            if len(blob) != info["content_bytes"] or \
                    _digest(blob) != info["content_sha256"]:
                raise SnapshotError(
                    f"checkpoint file {self.path.name}/{name} failed its "
                    "content digest after delta replay"
                )
        self._cache[name] = blob
        return blob


class CheckpointManager:
    """Write and load checkpoints under one directory.

    Parameters
    ----------
    directory:
        Where checkpoints live; created on first use.
    keep:
        Published checkpoint *heads* to retain (>= 1).  Older ones are
        pruned only after a newer one has been successfully published,
        and never while a retained head's delta chain still needs them.
    full_interval:
        Full-snapshot cadence: every ``full_interval``-th checkpoint is
        stored self-contained, the ones between as deltas against their
        predecessor.  ``1`` (the default) disables deltas entirely;
        ``full_interval > 1`` requires ``keep >= 2`` so a torn chain
        head can always fall back.
    fault_hook:
        Optional fault-injection callable, invoked with a label at every
        write boundary (``"write:<name>"`` before each payload file,
        ``"manifest"`` after the manifest is staged, ``"published"``
        after the atomic rename); raising simulates a crash there.
    """

    def __init__(self, directory: str | Path, *, keep: int = 2,
                 full_interval: int = 1,
                 fault_hook: Callable[[str], None] | None = None) -> None:
        if keep < 1:
            raise ConfigError("keep must be >= 1")
        if full_interval < 1:
            raise ConfigError("full_interval must be >= 1")
        if full_interval > 1 and keep < 2:
            raise ConfigError(
                "keep must be >= 2 when full_interval > 1 (a torn delta "
                "chain needs an older checkpoint to fall back to)"
            )
        self.directory = Path(directory)
        self.keep = keep
        self.full_interval = full_interval
        self.fault_hook = fault_hook
        self._last: Checkpoint | None = None

    # ------------------------------------------------------------------
    def _fault(self, label: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(label)

    def _published(self) -> list[tuple[int, Path]]:
        if not self.directory.is_dir():
            return []
        out = []
        for path in self.directory.iterdir():
            seq = _dir_seq(path)
            if seq is not None:
                out.append((seq, path))
        return sorted(out)

    # ------------------------------------------------------------------
    def _delta_parent(self, published: list[tuple[int, Path]],
                      meta: dict[str, Any]) -> Checkpoint | None:
        """The checkpoint the next save may delta against, or ``None``.

        ``None`` means the save must be full: deltas are disabled, there
        is no loadable predecessor, the chain already holds
        ``full_interval - 1`` deltas, or the predecessor was written
        under a different schema.
        """
        if self.full_interval <= 1 or not published:
            return None
        newest_seq = published[-1][0]
        if self._last is not None and self._last.seq == newest_seq:
            parent = self._last
        else:
            parent = self.load_latest()
        if parent is None or parent.seq != newest_seq:
            # The newest published checkpoint is torn: a delta against
            # an older one would fork the chain, so cut it here.
            return None
        if parent.meta.get("schema") != meta.get("schema"):
            return None
        chain = 0
        node: Checkpoint | None = parent
        while node is not None and node.parent_seq is not None:
            chain += 1
            node = node.parent
        if chain + 1 >= self.full_interval:
            return None
        return parent

    def save(self, files: Mapping[str, bytes],
             meta: dict[str, Any] | None = None) -> Checkpoint:
        """Write a new checkpoint; returns it once durably published."""
        for name in files:
            if name == MANIFEST_NAME or "/" in name or name.startswith("."):
                raise ConfigError(f"bad checkpoint file name {name!r}")
        self.directory.mkdir(parents=True, exist_ok=True)
        published = self._published()
        seq = published[-1][0] + 1 if published else 1
        meta = dict(meta or {})
        parent = self._delta_parent(published, meta)
        final = self.directory / f"{_PREFIX}{seq:06d}"
        staging = self.directory / f"{_PREFIX}{seq:06d}{_TMP_SUFFIX}"
        if staging.exists():
            shutil.rmtree(staging)  # husk of a crashed save
        staging.mkdir()
        manifest_files = {}
        used_delta = False
        for name, blob in files.items():
            self._fault(f"write:{name}")
            stored = blob
            entry: dict[str, Any] = {"sha256": _digest(blob),
                                     "bytes": len(blob),
                                     "encoding": "full"}
            if parent is not None and name in parent.files:
                delta = encode_delta(parent.read(name), blob)
                if len(delta) < len(blob):
                    stored = delta
                    entry = {"sha256": _digest(delta),
                             "bytes": len(delta),
                             "encoding": "delta",
                             "content_sha256": _digest(blob),
                             "content_bytes": len(blob)}
                    used_delta = True
            (staging / name).write_bytes(stored)
            manifest_files[name] = entry
        manifest = {
            "version": CHECKPOINT_VERSION,
            "seq": seq,
            "parent_seq": parent.seq if used_delta else None,
            "meta": meta,
            "files": manifest_files,
        }
        (staging / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=2, sort_keys=True)
        )
        self._fault("manifest")
        os.replace(staging, final)  # the commit point
        self._fault("published")
        self._prune()
        ckpt = Checkpoint(seq=seq, path=final, meta=manifest["meta"],
                          files=manifest_files,
                          parent_seq=manifest["parent_seq"],
                          parent=parent if used_delta else None,
                          _cache={name: bytes(blob)
                                  for name, blob in files.items()})
        self._last = ckpt
        return ckpt

    def _manifest_parent_seq(self, path: Path) -> int | None:
        """A checkpoint's ``parent_seq``, or None if unreadable/absent."""
        try:
            manifest = json.loads((path / MANIFEST_NAME).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(manifest, dict):
            return None
        parent_seq = manifest.get("parent_seq")
        return parent_seq if isinstance(parent_seq, int) else None

    def _prune(self) -> None:
        published = self._published()
        if len(published) <= self.keep:
            return
        by_seq = dict(published)
        needed: set[int] = set()
        for seq, _ in published[-self.keep:]:
            node = seq
            while node in by_seq:
                parent_seq = self._manifest_parent_seq(by_seq[node])
                if parent_seq is None or parent_seq >= node or \
                        parent_seq in needed:
                    break
                needed.add(parent_seq)
                node = parent_seq
        for seq, path in published[: len(published) - self.keep]:
            if seq in needed:
                continue
            shutil.rmtree(path, ignore_errors=True)

    # ------------------------------------------------------------------
    def load(self, path: Path) -> Checkpoint:
        """Verify and open one checkpoint directory (raises if torn).

        Verifies the whole parent chain: a delta checkpoint whose
        ancestors are torn or missing fails to load, so the fallback
        walk in :meth:`load_latest` lands on a checkpoint whose chain is
        intact.
        """
        manifest_path = path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise SnapshotError(
                f"checkpoint {path.name} has no readable manifest: {exc}"
            ) from None
        # Structural validation: a manifest that parses as JSON can
        # still be arbitrarily misshapen after a torn write; everything
        # load touches must be checked before it is used, so corruption
        # surfaces as SnapshotError (which load_latest skips), never as
        # a TypeError escaping the fallback walk.
        if not isinstance(manifest, dict) or \
                not isinstance(manifest.get("version", 0), int) or \
                manifest.get("version", 0) > CHECKPOINT_VERSION or \
                not isinstance(manifest.get("seq", 0), int) or \
                not isinstance(manifest.get("meta", {}), dict) or \
                not isinstance(manifest.get("files"), dict):
            raise SnapshotError(
                f"checkpoint {path.name} manifest is malformed or too new"
            )
        seq = manifest.get("seq", 0)
        if _dir_seq(path) != seq:
            # A copied or renamed directory would otherwise "fully
            # verify" while corrupting newest-first ordering and save's
            # next-seq computation.
            raise SnapshotError(
                f"checkpoint {path.name} manifest seq {seq} does not "
                "match its directory name"
            )
        parent_seq = manifest.get("parent_seq")
        if parent_seq is not None and not (
                isinstance(parent_seq, int) and 0 < parent_seq < seq):
            raise SnapshotError(
                f"checkpoint {path.name} has a malformed parent_seq "
                f"{parent_seq!r}"
            )
        for name, info in manifest["files"].items():
            if not (isinstance(name, str) and isinstance(info, dict)
                    and isinstance(info.get("bytes"), int)
                    and isinstance(info.get("sha256"), str)):
                raise SnapshotError(
                    f"checkpoint {path.name} manifest entry {name!r} "
                    "is malformed"
                )
            encoding = info.get("encoding", "full")
            if encoding not in ("full", "delta") or (
                    encoding == "delta" and not (
                        parent_seq is not None
                        and isinstance(info.get("content_bytes"), int)
                        and isinstance(info.get("content_sha256"), str))):
                raise SnapshotError(
                    f"checkpoint {path.name} manifest entry {name!r} "
                    "has a malformed encoding"
                )
        parent = None
        if parent_seq is not None:
            parent = self.load(
                self.directory / f"{_PREFIX}{parent_seq:06d}")
        ckpt = Checkpoint(
            seq=seq,
            path=path,
            meta=dict(manifest.get("meta", {})),
            files=manifest["files"],
            parent_seq=parent_seq,
            parent=parent,
        )
        for name in ckpt.files:
            ckpt.read(name)  # digest check; raises SnapshotError if torn
        return ckpt

    def load_latest(self) -> Checkpoint | None:
        """The newest checkpoint that fully verifies, or ``None``.

        Torn or partially written checkpoints (bad manifest, missing
        file, digest mismatch, broken parent chain) are skipped — never
        mounted — and the walk falls back to the next older one.
        """
        for _, path in reversed(self._published()):
            try:
                return self.load(path)
            except SnapshotError:
                continue
        return None


# ----------------------------------------------------------------------
# Store introspection (duck-typed so this layer imports no backend)
# ----------------------------------------------------------------------
def fs_components(store: Any) -> list[tuple[str, Any]]:
    """(label, SimFilesystem) pairs reachable inside an object store.

    The filesystem backend exposes one (``vol0``); a sharded composite
    exposes one per filesystem shard (``shard0``..); backends without a
    free index contribute none.  Labels are stable, so checkpoint file
    names (``free_index-<label>.bin``) line up across save and load.
    """
    fs = getattr(store, "fs", None)
    if fs is not None and hasattr(fs, "free_index"):
        return [("vol0", fs)]
    out: list[tuple[str, Any]] = []
    for i, shard in enumerate(getattr(store, "shards", ()) or ()):
        fs = getattr(shard, "fs", None)
        if fs is not None and hasattr(fs, "free_index"):
            out.append((f"shard{i}", fs))
    return out
