"""Rebuild the free index from extent maps, and cross-check snapshots.

The file table's extent maps are the authoritative record of what is
allocated; the free index is derived state.  :func:`rebuild_free_index`
recomputes that derivation from first principles — everything is free
except what some extent map (or reserved region, or in-flight free)
claims — which gives recovery a second, independent answer to compare a
restored snapshot against.  :func:`cross_check` is that comparison:
run-for-run equality, because the engines are placement-identical and
a single diverging run means torn or partial state.

The rebuild itself doubles as a torn-state detector: reconstructing
over a double-counted or overlapping extent raises
:class:`~repro.errors.CorruptionError` from the engine's own overlap
checks, which :func:`rebuild_fs_free_index` re-frames as a
:class:`~repro.errors.SnapshotError`.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex, make_free_index
from repro.alloc.naive import NaiveFreeExtentIndex
from repro.errors import CorruptionError, SnapshotError
from repro.persist.snapshot import index_kind_of

_FreeIndex = FreeExtentIndex | NaiveFreeExtentIndex


def rebuild_free_index(capacity: int, *,
                       allocated: Iterable[Extent],
                       unavailable: Iterable[Extent] = (),
                       kind: str = "tiered") -> _FreeIndex:
    """Reconstruct a free index from what is *not* free.

    ``allocated`` are live data extents (from extent maps);
    ``unavailable`` is everything else that must not be allocatable:
    reserved metadata regions, journal frees awaiting their commit, and
    orphaned space from lost deletes.  Overlaps between any two inputs
    raise :class:`CorruptionError` — the caller's maps diverged.
    """
    index = make_free_index(capacity, kind=kind, initially_free=True)
    for ext in allocated:
        index.remove(ext)
    for ext in unavailable:
        index.remove(ext)
    return index


def rebuild_fs_free_index(fs: Any, *, kind: str | None = None) -> _FreeIndex:
    """Rebuild a :class:`~repro.fs.filesystem.SimFilesystem`'s free index.

    Sources: the file table's extent maps (allocated), the metadata
    regions below ``data_start``, background metadata nibbles
    (allocated space with no file record), the journal's pending and
    replayable frees, and any orphaned extents from earlier recoveries.
    A rebuild that trips over overlapping inputs raises
    :class:`SnapshotError` — the live state is torn.
    """
    journal = fs.journal
    unavailable = [Extent(0, fs.data_start)]
    unavailable += fs.metadata_traffic.outstanding_extents
    unavailable += journal.pending_frees
    unavailable += journal.replayable_frees
    unavailable += fs.orphaned_extents
    try:
        return rebuild_free_index(
            fs.capacity,
            allocated=(ext for record in fs.table for ext in record.extents),
            unavailable=unavailable,
            kind=kind or index_kind_of(fs.free_index),
        )
    except CorruptionError as exc:
        raise SnapshotError(
            f"free index cannot be rebuilt from extent maps: {exc}"
        ) from exc


def cross_check(expected: _FreeIndex, actual: _FreeIndex, *,
                label: str = "free index") -> None:
    """Raise :class:`SnapshotError` unless two indexes agree exactly.

    Compares capacity, the full address-ordered run list, and the O(1)
    accounting (``total_free``, ``largest``) so a drifted incremental
    counter is caught even when the run lists happen to match.
    """
    if expected.capacity != actual.capacity:
        raise SnapshotError(
            f"{label}: capacity {actual.capacity} != "
            f"expected {expected.capacity}"
        )
    expected_runs = list(expected)
    actual_runs = list(actual)
    if expected_runs != actual_runs:
        for i, (want, got) in enumerate(zip(expected_runs, actual_runs)):
            if want != got:
                raise SnapshotError(
                    f"{label}: run {i} is {got}, expected {want}"
                )
        raise SnapshotError(
            f"{label}: {len(actual_runs)} runs, expected "
            f"{len(expected_runs)}"
        )
    if expected.total_free != actual.total_free:
        raise SnapshotError(
            f"{label}: total_free {actual.total_free} != "
            f"expected {expected.total_free}"
        )
    if expected.largest() != actual.largest():
        raise SnapshotError(
            f"{label}: largest {actual.largest()} != "
            f"expected {expected.largest()}"
        )
