"""Fixed-width table rendering for bench output.

The paper reports results as bar/line charts; a terminal bench prints
the same data as rows.  These helpers keep every bench's output uniform:
a title, a header row, aligned numeric columns, and an optional footer
with the paper's expectation for side-by-side comparison.
"""

from __future__ import annotations

from collections.abc import Sequence


def _fmt_cell(value: object, width: int) -> str:
    if isinstance(value, float):
        text = f"{value:.2f}"
    else:
        text = str(value)
    return text.rjust(width)


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[object]], *,
                 footer: str | None = None) -> str:
    """Render a titled fixed-width table.

    >>> print(render_table("t", ["a", "b"], [[1, 2.5]]))  # doctest: +SKIP
    """
    str_rows = [
        [f"{cell:.2f}" if isinstance(cell, float) else str(cell)
         for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    if footer:
        lines.append("")
        lines.append(footer)
    return "\n".join(lines)


def render_series_table(title: str, x_label: str,
                        series: dict[str, list[tuple[float, float]]], *,
                        footer: str | None = None,
                        y_format: str = "{:.2f}") -> str:
    """Render multiple (x, y) series as columns sharing the x axis.

    ``series`` maps column label → [(x, y), ...]; x values are unioned
    and missing points render blank — matching how the paper's figures
    overlay the database and filesystem curves.
    """
    xs = sorted({x for pts in series.values() for x, _ in pts})
    headers = [x_label] + list(series)
    rows: list[list[object]] = []
    for x in xs:
        row: list[object] = [f"{x:g}"]
        for label in series:
            lookup = {px: py for px, py in series[label]}
            row.append(y_format.format(lookup[x]) if x in lookup else "")
        rows.append(row)
    return render_table(title, headers, rows, footer=footer)
