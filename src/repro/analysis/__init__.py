"""Reporting and shape-checking utilities.

:mod:`repro.analysis.tables` renders the fixed-width tables the benches
print (one per paper figure); :mod:`repro.analysis.compare` encodes the
paper's qualitative claims as checkable predicates so benches and tests
assert the *shape* of every reproduced curve.
"""

from repro.analysis.tables import render_table, render_series_table
from repro.analysis.compare import (
    ShapeCheck,
    check_monotonic_increase,
    check_levels_off,
    check_keeps_growing,
    crossover_age,
    ratio,
)

__all__ = [
    "render_table",
    "render_series_table",
    "ShapeCheck",
    "check_monotonic_increase",
    "check_levels_off",
    "check_keeps_growing",
    "crossover_age",
    "ratio",
]
