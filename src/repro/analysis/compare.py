"""Shape predicates: the paper's qualitative claims as checkable code.

The reproduction contract (system prompt of DESIGN.md): absolute numbers
need not match the 2005 testbed, but *who wins, by roughly what factor,
and where the curves bend* must.  Each predicate returns a
:class:`ShapeCheck` carrying a pass flag and a human explanation; benches
print them and tests assert them.
"""

from __future__ import annotations

from dataclasses import dataclass

Series = list[tuple[float, float]]


@dataclass
class ShapeCheck:
    """Outcome of one qualitative assertion."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        flag = "PASS" if self.passed else "FAIL"
        return f"[{flag}] {self.name}: {self.detail}"


def _values(series: Series) -> list[float]:
    return [y for _, y in series]


def check_monotonic_increase(name: str, series: Series, *,
                             slack: float = 0.15) -> ShapeCheck:
    """Values never drop by more than ``slack`` (relative) step to step."""
    values = _values(series)
    ok = all(
        b >= a * (1 - slack) for a, b in zip(values, values[1:])
    )
    return ShapeCheck(
        name=name,
        passed=ok,
        detail=f"series {['%.2f' % v for v in values]} "
               f"{'rises' if ok else 'dips more than slack'}",
    )


def check_levels_off(name: str, series: Series, *,
                     late_fraction: float = 0.5,
                     max_late_growth: float = 0.35) -> ShapeCheck:
    """The curve approaches an asymptote: growth over the late portion
    of the series is a small fraction of the total rise (NTFS in
    Figure 2 "begins to level off over time")."""
    values = _values(series)
    if len(values) < 3:
        return ShapeCheck(name, False, "too few points")
    split = max(1, int(len(values) * (1 - late_fraction)))
    total_rise = max(values) - values[0]
    late_rise = values[-1] - values[split]
    if total_rise <= 0:
        return ShapeCheck(name, True, "flat series trivially levels off")
    fraction = late_rise / total_rise
    ok = fraction <= max_late_growth
    return ShapeCheck(
        name=name,
        passed=ok,
        detail=f"late-portion rise is {fraction:.0%} of total "
               f"(limit {max_late_growth:.0%})",
    )


def check_keeps_growing(name: str, series: Series, *,
                        late_fraction: float = 0.5,
                        min_late_growth: float = 0.25) -> ShapeCheck:
    """The curve does *not* approach an asymptote: a healthy share of
    the total rise happens late (SQL Server in Figure 2 "increases
    almost linearly ... and does not seem to be approaching any
    asymptote")."""
    values = _values(series)
    if len(values) < 3:
        return ShapeCheck(name, False, "too few points")
    split = max(1, int(len(values) * (1 - late_fraction)))
    total_rise = max(values) - values[0]
    late_rise = values[-1] - values[split]
    if total_rise <= 0:
        return ShapeCheck(name, False, "series never grows")
    fraction = late_rise / total_rise
    ok = fraction >= min_late_growth
    return ShapeCheck(
        name=name,
        passed=ok,
        detail=f"late-portion rise is {fraction:.0%} of total "
               f"(needs >= {min_late_growth:.0%})",
    )


def crossover_age(series_a: Series, series_b: Series) -> float | None:
    """First x where series_a falls to or below series_b (None = never).

    Used for the break-even analysis: the age at which the database's
    read throughput drops under the filesystem's.
    """
    points_b = dict(series_b)
    for x, ya in series_a:
        yb = points_b.get(x)
        if yb is None:
            continue
        if ya <= yb:
            return x
    return None


def ratio(series: Series, x: float) -> float:
    """Value at x divided by value at the first point (degradation)."""
    lookup = dict(series)
    first = series[0][1]
    if first == 0:
        return 0.0
    return lookup[x] / first


def check_between(name: str, value: float, lo: float,
                  hi: float) -> ShapeCheck:
    """Value falls in [lo, hi] — for the paper's quoted levels, e.g.
    "converge to four fragments per file"."""
    ok = lo <= value <= hi
    return ShapeCheck(
        name=name,
        passed=ok,
        detail=f"value {value:.2f} vs expected [{lo:g}, {hi:g}]",
    )


def check_faster(name: str, fast: float, slow: float, *,
                 min_ratio: float = 1.0) -> ShapeCheck:
    """``fast`` beats ``slow`` by at least ``min_ratio``."""
    actual = fast / slow if slow > 0 else float("inf")
    ok = actual >= min_ratio
    return ShapeCheck(
        name=name,
        passed=ok,
        detail=f"ratio {actual:.2f} (needs >= {min_ratio:.2f})",
    )
