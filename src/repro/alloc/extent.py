"""The :class:`Extent` value type: a half-open byte range on a volume.

Extents are the currency of every layer here — free-space indexes hold
them, files and BLOBs map to lists of them, the device reads them, and
the fragmentation analyzer counts maximal runs of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, order=True, slots=True)
class Extent:
    """A contiguous byte range ``[start, start + length)``.

    Ordering is by ``(start, length)``, which sorts address-ordered lists
    the way allocators need.  Slotted: extents are minted on every
    allocation, split, and coalesce, so they carry no per-instance
    ``__dict__``.
    """

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigError(f"extent start must be >= 0, got {self.start}")
        if self.length <= 0:
            raise ConfigError(f"extent length must be > 0, got {self.length}")

    @property
    def end(self) -> int:
        """Exclusive end offset."""
        return self.start + self.length

    def contains(self, offset: int) -> bool:
        return self.start <= offset < self.end

    def contains_extent(self, other: Extent) -> bool:
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: Extent) -> bool:
        return self.start < other.end and other.start < self.end

    def adjacent_to(self, other: Extent) -> bool:
        """True when the two extents touch without overlapping."""
        return self.end == other.start or other.end == self.start

    def merge(self, other: Extent) -> Extent:
        """Union of two adjacent or overlapping extents."""
        if not (self.overlaps(other) or self.adjacent_to(other)):
            raise ConfigError(f"cannot merge disjoint extents {self}, {other}")
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        return Extent(start, end - start)

    def split_at(self, offset: int) -> tuple[Extent, Extent]:
        """Split into two pieces at an interior absolute ``offset``."""
        if not (self.start < offset < self.end):
            raise ConfigError(f"split offset {offset} not inside {self}")
        return (Extent(self.start, offset - self.start),
                Extent(offset, self.end - offset))

    def take_front(self, length: int) -> tuple[Extent, Extent | None]:
        """Carve ``length`` bytes off the front; returns (taken, remainder)."""
        if length <= 0 or length > self.length:
            raise ConfigError(f"cannot take {length} bytes from {self}")
        taken = Extent(self.start, length)
        if length == self.length:
            return taken, None
        return taken, Extent(self.start + length, self.length - length)

    def take_back(self, length: int) -> tuple[Extent, Extent | None]:
        """Carve ``length`` bytes off the back; returns (taken, remainder)."""
        if length <= 0 or length > self.length:
            raise ConfigError(f"cannot take {length} bytes from {self}")
        taken = Extent(self.end - length, length)
        if length == self.length:
            return taken, None
        return taken, Extent(self.start, self.length - length)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Extent({self.start}, +{self.length})"


def coalesce(extents: list[Extent]) -> list[Extent]:
    """Merge touching/overlapping extents into maximal runs, sorted.

    Used by the fragmentation analyzer: the number of coalesced runs in an
    object's extent list *is* its fragment count (a contiguous object has
    one fragment, Figure 2's caption).

    >>> coalesce([Extent(0, 10), Extent(10, 5), Extent(20, 5)])
    [Extent(0, +15), Extent(20, +5)]
    """
    if not extents:
        return []
    ordered = sorted(extents, key=lambda e: e.start)
    merged = [ordered[0]]
    for ext in ordered[1:]:
        last = merged[-1]
        if ext.start <= last.end:
            merged[-1] = Extent(last.start,
                                max(last.end, ext.end) - last.start)
        else:
            merged.append(ext)
    return merged


def total_length(extents: list[Extent]) -> int:
    """Sum of extent lengths (does not check for overlap)."""
    return sum(e.length for e in extents)
