"""NTFS-style run-cache allocator.

Section 2 of the paper describes the NTFS allocation path (from the NTFS
development team): *"NTFS allocates space for file stream data from a
run-based lookup cache.  Runs of contiguous free clusters are ordered in
decreasing size and volume offset.  NTFS attempts to satisfy a new space
allocation from the outer band.  If that fails, large extents within the
free space cache are used.  If that fails, the file is fragmented."*

:class:`NtfsRunCache` implements exactly that discipline over a
:class:`~repro.alloc.freelist.FreeExtentIndex`:

1. **Outer band** — the lowest-offset cached run inside the outer band
   that satisfies the request (outer cylinders are the fast band; NTFS's
   banded strategy targets them).
2. **Large cached runs** — the largest cached run that satisfies the
   request (cache is ordered by decreasing size).
3. **Fragment** — consume cached runs largest-first until the request is
   satisfied.

The cache holds only the ``cache_size`` largest runs; small free runs are
invisible to allocation until the big runs are consumed, which is why an
aged NTFS volume keeps carving big holes while small holes wait to merge
with neighbours — the mechanism behind the fragmentation asymptote of
Figure 2.
"""

from __future__ import annotations

from itertools import islice

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.errors import AllocationError, ConfigError


class NtfsRunCache:
    """Banded, decreasing-size run selection over a free-extent index.

    Parameters
    ----------
    index:
        The free-space truth.  The cache re-derives its view lazily, so
        callers may also free/allocate through other paths.
    outer_band_fraction:
        Fraction of the volume (from offset 0) treated as the preferred
        outer band.
    cache_size:
        Number of largest runs visible to the allocator, modelling the
        bounded in-memory cache.
    """

    def __init__(self, index: FreeExtentIndex, *,
                 outer_band_fraction: float = 0.125,
                 cache_size: int = 64) -> None:
        if not 0.0 < outer_band_fraction <= 1.0:
            raise ConfigError("outer_band_fraction must be in (0, 1]")
        if cache_size < 1:
            raise ConfigError("cache_size must be >= 1")
        self.index = index
        self.outer_band_limit = int(index.capacity * outer_band_fraction)
        self.cache_size = cache_size

    # ------------------------------------------------------------------
    def choose(self, size: int) -> Extent | None:
        """Pick the run a contiguous ``size``-byte request carves from.

        Returns None when no cached run fits (the caller then fragments).
        Does not mutate the index.  Selection order per the paper's
        description: outer-band runs first (lowest offset), then the
        largest cached run (ties to the lower offset).  One pass over
        the cached view — this sits on the aging hot path, once per
        allocation.
        """
        if size <= 0:
            raise ConfigError("allocation size must be positive")
        band_limit = self.outer_band_limit
        best_band: Extent | None = None
        best_large: Extent | None = None
        for run in islice(self.index.runs_by_size_desc(), self.cache_size):
            if run.length < size:
                # The cache is size-descending: nothing later fits.
                break
            if run.start < band_limit and \
                    (best_band is None or run.start < best_band.start):
                best_band = run
            # best_large only matters while no band candidate exists.
            # The cache arrives size-descending with ties on descending
            # start, so later runs of equal length have *lower* starts
            # and can still displace the incumbent.
            if best_band is None and (
                    best_large is None or
                    (run.length, -run.start) >
                    (best_large.length, -best_large.start)):
                best_large = run
        return best_band if best_band is not None else best_large

    def allocate(self, size: int) -> list[Extent]:
        """Allocate ``size`` bytes, fragmenting only when no run fits.

        Returns the allocated pieces in the order they hold the data.
        """
        if size <= 0:
            raise ConfigError("allocation size must be positive")
        if self.index.total_free < size:
            raise AllocationError(
                f"volume full: need {size}, have {self.index.total_free}"
            )
        pieces: list[Extent] = []
        remaining = size
        while remaining > 0:
            run = self.choose(remaining)
            if run is not None:
                taken, _ = run.take_front(remaining)
                self.index.remove(taken)
                pieces.append(taken)
                break
            # Fragment: consume the largest visible run and retry.  The
            # cache is size-descending, so its head is the index's
            # largest run.
            largest = self.index.largest()
            if largest is None:
                for piece in pieces:
                    self.index.add(piece)
                raise AllocationError("no free runs while space remains")
            self.index.remove(largest)
            pieces.append(largest)
            remaining -= largest.length
        return pieces

    def try_extend(self, at_offset: int, size: int, *,
                   stickiness: float = 0.75) -> Extent | None:
        """Best-effort contiguous extension at ``at_offset``.

        NTFS "aggressively attempts to allocate contiguous space when
        sequential appends are detected" (paper Section 5.4) — but with
        no guarantee: each write request is a fresh allocation decision
        against the size-ordered cache, so a growing file keeps its spot
        only while the run it is eating remains competitively large.

        We model that as hysteresis: extension succeeds while the
        adjacent free run still satisfies the whole request **and** is
        at least ``stickiness`` × the largest cached run.  Once the run
        erodes below that, the allocator's ordering pulls the next
        request to the current cache head and the file fragments.
        ``stickiness`` is the model's main fragmentation knob:

        * 1.0 ≈ strict cache order (pathological ping-pong between
          equal-size runs — fragments every request),
        * 0.0 ≈ guaranteed extension (files never fragment while their
          hole lasts, which contradicts the paper's measurements).

        Runs starting in the outer band are always sticky: the band
        rule prefers the *lowest-offset* band run, and the remainder of
        the run being filled is by construction the lowest fitting one.

        Returns the extent taken (possibly shorter than ``size``) or
        None.
        """
        if not 0.0 <= stickiness <= 1.0:
            raise ConfigError("stickiness must be in [0, 1]")
        run = self.index.run_starting_at(at_offset)
        if run is None:
            return None
        if run.start >= self.outer_band_limit and run.length < size:
            return None
        if run.start >= self.outer_band_limit and stickiness > 0.0:
            largest = self.index.largest()
            if largest is not None and \
                    run.length < stickiness * largest.length:
                return None
        take = min(size, run.length)
        taken, _ = run.take_front(take)
        self.index.remove(taken)
        return taken
