"""Allocation substrate: extents, free-space indexes, and policies.

The malloc literature the paper borrows from (Wilson et al.) separates
allocation *mechanisms* (how free space is indexed) from *policies* (which
block a request takes).  This package provides both: an exact, coalescing
:class:`FreeExtentIndex` mechanism, the classic first/best/worst/next-fit
policies, a DTSS-style buddy allocator, and the NTFS-style run cache the
filesystem substrate uses.
"""

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.alloc.policy import (
    AllocationPolicy,
    BestFit,
    FirstFit,
    NextFit,
    WorstFit,
    allocate_contiguous,
    allocate_fragmented,
    make_policy,
)
from repro.alloc.buddy import BuddyAllocator
from repro.alloc.runcache import NtfsRunCache

__all__ = [
    "Extent",
    "FreeExtentIndex",
    "AllocationPolicy",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "NextFit",
    "allocate_contiguous",
    "allocate_fragmented",
    "make_policy",
    "BuddyAllocator",
    "NtfsRunCache",
]
