"""Allocation substrate: extents, free-space indexes, and policies.

The malloc literature the paper borrows from (Wilson et al.) separates
allocation *mechanisms* (how free space is indexed) from *policies* (which
block a request takes).  This package provides both: an exact, coalescing
:class:`FreeExtentIndex` mechanism (a tiered O(log n) engine; the flat
:class:`NaiveFreeExtentIndex` reference model remains available through
:func:`make_free_index` for parity tests and ablations), the classic
first/best/worst/next-fit policies, a DTSS-style buddy allocator, and
the NTFS-style run cache the filesystem substrate uses.
"""

from repro.alloc.extent import Extent
from repro.alloc.freelist import (
    FreeExtentIndex,
    INDEX_KINDS,
    make_free_index,
)
from repro.alloc.naive import NaiveFreeExtentIndex
from repro.alloc.policy import (
    AllocationPolicy,
    BestFit,
    FirstFit,
    NextFit,
    WorstFit,
    allocate_contiguous,
    allocate_fragmented,
    make_policy,
)
from repro.alloc.buddy import BuddyAllocator
from repro.alloc.runcache import NtfsRunCache

__all__ = [
    "Extent",
    "FreeExtentIndex",
    "NaiveFreeExtentIndex",
    "INDEX_KINDS",
    "make_free_index",
    "AllocationPolicy",
    "FirstFit",
    "BestFit",
    "WorstFit",
    "NextFit",
    "allocate_contiguous",
    "allocate_fragmented",
    "make_policy",
    "BuddyAllocator",
    "NtfsRunCache",
]
