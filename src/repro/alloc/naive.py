"""Flat-list reference free-space index (the pre-tiered implementation).

:class:`NaiveFreeExtentIndex` is the original O(n)-per-mutation engine
kept verbatim as an executable specification.  It exists for two
reasons:

* **Parity testing** — ``tests/test_prop_freelist.py`` drives it and the
  tiered :class:`~repro.alloc.freelist.FreeExtentIndex` with identical
  operation sequences and asserts byte-identical free maps and
  placement-identical policy answers.
* **Ablation** — ``benchmarks/paperfig.py`` accepts ``--index naive`` so
  figure scripts can quantify how much of end-to-end throughput the
  allocator engine contributes (``FsConfig(index_kind="naive")``).

Do not optimise this class; its value is that it is obviously correct.
Both classes expose the same public API and raise
:class:`~repro.errors.CorruptionError` under the same conditions.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

from repro.alloc.extent import Extent
from repro.errors import CorruptionError


class NaiveFreeExtentIndex:
    """Coalescing index of free extents over ``[0, capacity)``.

    Keeps two synchronized flat views — an address-ordered list of run
    starts and a size-ordered list of ``(length, start)`` pairs — paying
    O(n) ``list.insert``/``del`` per mutation and an O(n) sum for
    :attr:`total_free`.

    Parameters
    ----------
    capacity:
        Volume size; inserts beyond it are rejected.
    initially_free:
        When true the whole volume starts as one free run.
    """

    def __init__(self, capacity: int, *, initially_free: bool = True) -> None:
        if capacity <= 0:
            raise CorruptionError("capacity must be positive")
        self.capacity = capacity
        self._starts: list[int] = []
        self._len_by_start: dict[int, int] = {}
        self._by_size: list[tuple[int, int]] = []  # (length, start)
        if initially_free:
            self._insert(Extent(0, capacity))

    # ------------------------------------------------------------------
    # Internal bookkeeping (both views updated together)
    # ------------------------------------------------------------------
    def _insert(self, ext: Extent) -> None:
        idx = bisect.bisect_left(self._starts, ext.start)
        self._starts.insert(idx, ext.start)
        self._len_by_start[ext.start] = ext.length
        bisect.insort(self._by_size, (ext.length, ext.start))

    def _delete(self, start: int) -> Extent:
        length = self._len_by_start.pop(start)
        idx = bisect.bisect_left(self._starts, start)
        if idx >= len(self._starts) or self._starts[idx] != start:
            raise CorruptionError(f"free index views out of sync at {start}")
        del self._starts[idx]
        sidx = bisect.bisect_left(self._by_size, (length, start))
        if sidx >= len(self._by_size) or self._by_size[sidx] != (length, start):
            raise CorruptionError(f"size view out of sync at {start}")
        del self._by_size[sidx]
        return Extent(start, length)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, ext: Extent) -> None:
        """Return ``ext`` to the free pool, merging with free neighbours."""
        if ext.end > self.capacity:
            raise CorruptionError(f"{ext} extends past capacity {self.capacity}")
        idx = bisect.bisect_right(self._starts, ext.start)
        # Check overlap with predecessor and successor.
        if idx > 0:
            prev_start = self._starts[idx - 1]
            prev_end = prev_start + self._len_by_start[prev_start]
            if prev_end > ext.start:
                raise CorruptionError(
                    f"double free: {ext} overlaps free run at {prev_start}"
                )
        if idx < len(self._starts) and self._starts[idx] < ext.end:
            raise CorruptionError(
                f"double free: {ext} overlaps free run at {self._starts[idx]}"
            )
        merged = ext
        if idx > 0:
            prev_start = self._starts[idx - 1]
            if prev_start + self._len_by_start[prev_start] == ext.start:
                merged = self._delete(prev_start).merge(merged)
        idx = bisect.bisect_right(self._starts, merged.start)
        if idx < len(self._starts) and self._starts[idx] == merged.end:
            merged = merged.merge(self._delete(self._starts[idx]))
        self._insert(merged)

    def remove(self, ext: Extent) -> None:
        """Allocate the exact range ``ext``, which must be entirely free."""
        idx = bisect.bisect_right(self._starts, ext.start) - 1
        if idx < 0:
            raise CorruptionError(f"{ext} is not free")
        start = self._starts[idx]
        run = Extent(start, self._len_by_start[start])
        if not run.contains_extent(ext):
            raise CorruptionError(f"{ext} is not inside free run {run}")
        self._delete(start)
        if run.start < ext.start:
            self._insert(Extent(run.start, ext.start - run.start))
        if ext.end < run.end:
            self._insert(Extent(ext.end, run.end - ext.end))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run_at(self, offset: int) -> Extent | None:
        """The free run containing ``offset``, or None when allocated."""
        idx = bisect.bisect_right(self._starts, offset) - 1
        if idx < 0:
            return None
        start = self._starts[idx]
        run = Extent(start, self._len_by_start[start])
        return run if run.contains(offset) else None

    def run_starting_at(self, offset: int) -> Extent | None:
        """The free run beginning exactly at ``offset`` (extension probe)."""
        length = self._len_by_start.get(offset)
        return Extent(offset, length) if length is not None else None

    def first_fit(self, size: int, *, min_start: int = 0,
                  max_start: int | None = None) -> Extent | None:
        """Lowest-address free run of at least ``size`` bytes.

        ``min_start``/``max_start`` bound the run's *start* offset, which
        is how the banded (outer-band-first) search is expressed.
        """
        idx = bisect.bisect_left(self._starts, min_start)
        if idx > 0:
            prev = self._starts[idx - 1]
            if prev + self._len_by_start[prev] > min_start:
                usable = prev + self._len_by_start[prev] - min_start
                if usable >= size:
                    return Extent(prev, self._len_by_start[prev])
        while idx < len(self._starts):
            start = self._starts[idx]
            if max_start is not None and start > max_start:
                return None
            if self._len_by_start[start] >= size:
                return Extent(start, self._len_by_start[start])
            idx += 1
        return None

    def best_fit(self, size: int) -> Extent | None:
        """Smallest free run of at least ``size`` bytes (lowest address ties)."""
        idx = bisect.bisect_left(self._by_size, (size, -1))
        if idx >= len(self._by_size):
            return None
        length, start = self._by_size[idx]
        return Extent(start, length)

    def worst_fit(self, size: int) -> Extent | None:
        """Largest free run, provided it holds at least ``size`` bytes."""
        largest = self.largest()
        if largest is None or largest.length < size:
            return None
        return largest

    def next_fit(self, size: int, cursor: int) -> Extent | None:
        """First fit starting at ``cursor``, wrapping once past the end."""
        found = self.first_fit(size, min_start=cursor)
        if found is not None:
            return found
        return self.first_fit(size, max_start=cursor)

    def largest(self) -> Extent | None:
        """The largest free run (highest address ties)."""
        if not self._by_size:
            return None
        length, start = self._by_size[-1]
        return Extent(start, length)

    def runs_by_size_desc(self) -> Iterator[Extent]:
        """Free runs from largest to smallest (NTFS run-cache order)."""
        for length, start in reversed(self._by_size):
            yield Extent(start, length)

    def __iter__(self) -> Iterator[Extent]:
        """Free runs in address order."""
        for start in self._starts:
            yield Extent(start, self._len_by_start[start])

    def __len__(self) -> int:
        return len(self._starts)

    @property
    def total_free(self) -> int:
        # Address order, matching __iter__: the reduction order is part
        # of the bit-exactness contract (int sum, so also order-proof).
        return sum(self._len_by_start[start] for start in self._starts)

    def check_invariants(self) -> None:
        """Verify the two views agree and runs are disjoint and coalesced.

        Used by property tests; O(n log n).
        """
        if len(self._starts) != len(self._len_by_start) or \
                len(self._starts) != len(self._by_size):
            raise CorruptionError("view sizes disagree")
        if self._starts != sorted(self._starts):
            raise CorruptionError("address view is unsorted")
        prev_end: int | None = None
        for start in self._starts:
            length = self._len_by_start[start]
            if length <= 0:
                raise CorruptionError(f"non-positive run at {start}")
            if prev_end is not None and start <= prev_end:
                detail = "overlapping" if start < prev_end else "uncoalesced"
                raise CorruptionError(f"{detail} runs at {start}")
            if start + length > self.capacity:
                raise CorruptionError("run extends past capacity")
            prev_end = start + length
        expected = sorted(
            (length, start) for start, length in self._len_by_start.items()
        )
        if expected != self._by_size:
            raise CorruptionError("size view disagrees with address view")
