"""DTSS-style buddy-system allocator.

The paper's Section 3.4 describes the Dartmouth Time-Sharing System
filesystem, which laid out files with the buddy system: every block is a
power-of-two size at a power-of-two-aligned offset, frees merge with the
block's "buddy" when both halves are free.  The hard fragment limits made
it predictable but wasteful for large files — requests round up to the
next power of two (up to 50% internal fragmentation, or a hard cap when
the request exceeds the maximum order).

Exposed for the policy ablation bench: buddy trades internal
fragmentation (wasted bytes inside blocks) for zero external
fragmentation growth, the "trade capacity for predictability" option the
paper's Section 3.2 closes with.
"""

from __future__ import annotations

from repro.alloc.extent import Extent
from repro.errors import AllocationError, ConfigError, CorruptionError


def _next_pow2(value: int) -> int:
    if value <= 0:
        raise ConfigError("size must be positive")
    return 1 << (value - 1).bit_length()


class BuddyAllocator:
    """Binary buddy allocator over ``[0, capacity)``.

    Parameters
    ----------
    capacity:
        Must be a power of two times ``min_block``.
    min_block:
        Smallest allocatable block (the "cluster" size).
    max_block:
        Largest single block; requests above it raise, mirroring DTSS's
        hard limits on large files.  Defaults to the whole volume.
    """

    def __init__(self, capacity: int, *, min_block: int = 4096,
                 max_block: int | None = None) -> None:
        if min_block <= 0 or (min_block & (min_block - 1)) != 0:
            raise ConfigError("min_block must be a power of two")
        if capacity % min_block != 0:
            raise ConfigError("capacity must be a multiple of min_block")
        nblocks = capacity // min_block
        if nblocks & (nblocks - 1) != 0:
            raise ConfigError("capacity / min_block must be a power of two")
        self.capacity = capacity
        self.min_block = min_block
        self.max_block = max_block if max_block is not None else capacity
        if self.max_block < min_block:
            raise ConfigError("max_block below min_block")
        self._max_order = (capacity // min_block).bit_length() - 1
        # order -> set of free block offsets (block size = min_block << order)
        self._free: list[set[int]] = [set() for _ in range(self._max_order + 1)]
        self._free[self._max_order].add(0)
        self._allocated: dict[int, int] = {}  # offset -> order

    def _order_for(self, size: int) -> int:
        block = max(_next_pow2(size), self.min_block)
        if block > self.max_block:
            raise AllocationError(
                f"request of {size} bytes exceeds max block "
                f"{self.max_block} (DTSS-style hard limit)"
            )
        return (block // self.min_block).bit_length() - 1

    def block_size(self, order: int) -> int:
        return self.min_block << order

    def alloc(self, size: int) -> Extent:
        """Allocate one power-of-two block holding ``size`` bytes.

        The returned extent is the *block* (rounded size); callers track
        the requested size themselves — the difference is the internal
        fragmentation this allocator is famous for.
        """
        order = self._order_for(size)
        current = order
        while current <= self._max_order and not self._free[current]:
            current += 1
        if current > self._max_order:
            raise AllocationError(f"no free block of order {order}")
        offset = min(self._free[current])
        self._free[current].discard(offset)
        while current > order:
            current -= 1
            buddy = offset + self.block_size(current)
            self._free[current].add(buddy)
        self._allocated[offset] = order
        return Extent(offset, self.block_size(order))

    def free(self, ext: Extent) -> None:
        """Free a previously allocated block, merging buddies upward."""
        order = self._allocated.pop(ext.start, None)
        if order is None:
            raise CorruptionError(f"{ext} was not allocated by this buddy")
        if self.block_size(order) != ext.length:
            self._allocated[ext.start] = order
            raise CorruptionError(
                f"{ext} length does not match allocated order {order}"
            )
        offset = ext.start
        while order < self._max_order:
            buddy = offset ^ self.block_size(order)
            if buddy not in self._free[order]:
                break
            self._free[order].discard(buddy)
            offset = min(offset, buddy)
            order += 1
        self._free[order].add(offset)

    @property
    def total_free(self) -> int:
        return sum(
            len(blocks) * self.block_size(order)
            for order, blocks in enumerate(self._free)
        )

    @property
    def allocated_blocks(self) -> int:
        return len(self._allocated)

    def internal_waste(self, requested: int) -> int:
        """Bytes wasted when ``requested`` is rounded to a block."""
        order = self._order_for(requested)
        return self.block_size(order) - requested

    def check_invariants(self) -> None:
        """All free + allocated blocks tile the volume exactly once."""
        seen: list[tuple[int, int]] = []
        for order, blocks in enumerate(self._free):
            size = self.block_size(order)
            for offset in blocks:
                if offset % size != 0:
                    raise CorruptionError(f"misaligned free block {offset}")
                seen.append((offset, size))
        for offset, order in self._allocated.items():
            seen.append((offset, self.block_size(order)))
        seen.sort()
        cursor = 0
        for offset, size in seen:
            if offset != cursor:
                raise CorruptionError(f"gap/overlap at {cursor} vs {offset}")
            cursor = offset + size
        if cursor != self.capacity:
            raise CorruptionError("blocks do not cover the volume")
