"""Allocation policies over a :class:`FreeExtentIndex`.

These are the textbook policies the paper's theory section discusses
(first fit's near-optimal worst case, best fit, worst fit) plus next fit.
The filesystem and database substrates use their own specialised
allocators (:mod:`repro.alloc.runcache`, :mod:`repro.db.gam`); the plain
policies exist for the ablation bench (A1 in DESIGN.md), which asks how
much of the two systems' divergence is explained by policy alone.
"""

from __future__ import annotations

from typing import Protocol

from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.errors import AllocationError, ConfigError


class AllocationPolicy(Protocol):
    """Chooses the free run a request should be carved from."""

    name: str

    def choose(self, index: FreeExtentIndex, size: int) -> Extent | None:
        """Return a free run with ``length >= size``, or None if there is
        no single run that fits.  The caller carves from the run's front.
        """
        ...  # pragma: no cover - protocol


class FirstFit:
    """Lowest-address run that fits.

    Robson's bound in the paper (Section 3.2): first fit is nearly optimal
    in the worst case, using at most ``M log2 n`` bytes.
    """

    name = "first_fit"

    def choose(self, index: FreeExtentIndex, size: int) -> Extent | None:
        return index.first_fit(size)


class BestFit:
    """Smallest run that fits; minimizes leftover slack per allocation."""

    name = "best_fit"

    def choose(self, index: FreeExtentIndex, size: int) -> Extent | None:
        return index.best_fit(size)


class WorstFit:
    """Largest run; keeps remainders large at the cost of eroding big runs."""

    name = "worst_fit"

    def choose(self, index: FreeExtentIndex, size: int) -> Extent | None:
        return index.worst_fit(size)


class NextFit:
    """First fit resuming from a roving cursor (classic malloc variant)."""

    name = "next_fit"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, index: FreeExtentIndex, size: int) -> Extent | None:
        found = index.next_fit(size, self._cursor)
        if found is not None:
            self._cursor = found.start + size
            if self._cursor >= index.capacity:
                self._cursor = 0
        return found


_POLICIES = {
    "first_fit": FirstFit,
    "best_fit": BestFit,
    "worst_fit": WorstFit,
    "next_fit": NextFit,
}


def make_policy(name: str) -> AllocationPolicy:
    """Instantiate a policy by name (for CLI/bench parameterization)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ConfigError(
            f"unknown policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None


def policy_names() -> list[str]:
    return sorted(_POLICIES)


def allocate_contiguous(index: FreeExtentIndex, size: int,
                        policy: AllocationPolicy) -> Extent:
    """Allocate one contiguous extent of ``size`` bytes via ``policy``.

    Raises :class:`AllocationError` when no single run fits, mirroring the
    "never fragment a file" discipline of the theoretical work.
    """
    if size <= 0:
        raise ConfigError("allocation size must be positive")
    run = policy.choose(index, size)
    if run is None:
        raise AllocationError(
            f"no contiguous run of {size} bytes (largest is "
            f"{index.largest().length if index.largest() else 0})"
        )
    taken, _ = run.take_front(size)
    index.remove(taken)
    return taken


def allocate_fragmented(index: FreeExtentIndex, size: int,
                        policy: AllocationPolicy) -> list[Extent]:
    """Allocate ``size`` bytes, splitting across runs when necessary.

    Pieces are chosen by repeatedly applying ``policy``; when no run holds
    the whole remainder, the largest run is consumed and the policy is
    retried on what is left — the generic "fragment the file" fallback.
    """
    if size <= 0:
        raise ConfigError("allocation size must be positive")
    if index.total_free < size:
        raise AllocationError(
            f"volume full: need {size}, have {index.total_free} free"
        )
    pieces: list[Extent] = []
    remaining = size
    while remaining > 0:
        run = policy.choose(index, remaining)
        if run is not None:
            taken, _ = run.take_front(remaining)
            index.remove(taken)
            pieces.append(taken)
            break
        run = index.largest()
        if run is None:
            # total_free said there was space; losing it mid-loop means
            # a concurrent mutation, which the simulator never does.
            for piece in pieces:
                index.add(piece)
            raise AllocationError("free space exhausted mid-allocation")
        index.remove(run)
        pieces.append(run)
        remaining -= run.length
    return pieces
