"""Tiered O(log n) free-space index with coalescing.

:class:`FreeExtentIndex` is the "bitmap" of the simulation: the single
source of truth about which byte ranges of a volume are free.  Every
experiment — bulk load, safe-write churn, fragmentation aging — funnels
through it, so it is engineered as a tiered engine rather than the flat
sorted lists of the original implementation (preserved as
:class:`~repro.alloc.naive.NaiveFreeExtentIndex` for parity tests and
the ``--index naive`` ablation).  Both tiers are instances of the
shared :class:`~repro.struct.blockedlist.BlockedList` primitive —
see its module docstring for the block-size bounds, split/merge rules,
and the augmentation contract:

* **Address tier** — a :class:`BlockedList` of run starts, augmented
  per block with the **max run length** (and the count of runs
  attaining it) via :class:`MaxWeightAugmentation`.  Insert/delete/
  predecessor cost O(log n) directory search plus an O(load) in-block
  ``memmove``, instead of the flat list's O(n), and ``first_fit``/
  ``next_fit`` (including the ``min_start``/``max_start`` banded
  queries) use the augmentation to skip whole blocks that cannot
  satisfy a request instead of scanning run by run.
* **Size tier** — power-of-two buckets (bucket *b* holds runs whose
  length has ``bit_length() == b``), each an unaugmented
  :class:`BlockedList` of ``(length, start)`` pairs, so a skewed
  workload landing every run in one bucket still pays only O(load)
  per mutation.  ``best_fit`` bisects one bucket and falls through to
  the next non-empty one; ``worst_fit``/``largest`` read the tail of
  the highest non-empty bucket; ``runs_by_size_desc`` streams buckets
  top-down — all without maintaining one global O(n) sorted list.
* **Incremental accounting** — :attr:`total_free`, the run count, and
  the largest run are maintained under mutation, so reading them is
  O(1) (the largest-run probe scans at most ``capacity.bit_length()``
  bucket heads, a constant for any fixed volume).

Complexity of the public methods, with n free runs: ``add`` /
``remove`` are O(log n + load) — carves and merges that only move a
run boundary take the in-place :meth:`BlockedList.replace` fast path;
only a mid-run carve pays a delete plus two inserts.  ``run_at`` /
``run_starting_at`` / ``best_fit`` / ``worst_fit`` / ``largest`` are
O(log n); ``first_fit`` / ``next_fit`` are O(log n) plus one scanned
block per directory block whose max-run augmentation passes the size
filter.  ``total_free`` and ``__len__`` are O(1).

The public API and error semantics are identical to the naive engine:
:class:`~repro.errors.CorruptionError` on double frees or overlapping
inserts rather than repairing them, because an overlap means the
caller's accounting diverged.  ``tests/test_prop_freelist.py`` holds
the two engines to placement-identical answers under random operation
sequences.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

from repro.alloc.extent import Extent
from repro.alloc.naive import NaiveFreeExtentIndex
from repro.errors import ConfigError, CorruptionError
from repro.struct.blockedlist import (
    DEFAULT_LOAD, BlockedList, MaxWeightAugmentation,
)

#: Target block size of both tiers; see
#: :data:`repro.struct.blockedlist.DEFAULT_LOAD` for the trade-off.
_LOAD = DEFAULT_LOAD

#: Engine names accepted by :func:`make_free_index` (and therefore by
#: ``FsConfig.index_kind`` / the benches' ``--index`` flag).
INDEX_KINDS = ("tiered", "naive")


class FreeExtentIndex:
    """Coalescing index of free extents over ``[0, capacity)``.

    Parameters
    ----------
    capacity:
        Volume size; inserts beyond it are rejected.
    initially_free:
        When true the whole volume starts as one free run.
    """

    def __init__(self, capacity: int, *, initially_free: bool = True) -> None:
        if capacity <= 0:
            raise CorruptionError("capacity must be positive")
        self.capacity = capacity
        #: run start -> run length (the O(1) length authority).
        self._len_by_start: dict[int, int] = {}
        # Address tier: run starts, augmented with the max run length
        # per block.  Rescans pull lengths straight from the dict, so
        # every mutation updates _len_by_start before the tier.
        self._addr = BlockedList(
            load=_LOAD,
            augment=MaxWeightAugmentation(self._len_by_start.__getitem__),
        )
        # Size tier: bucket b holds (length, start) pairs, sorted, for
        # runs with length.bit_length() == b.
        self._buckets: list[BlockedList] = [
            BlockedList(load=_LOAD) for _ in range(capacity.bit_length() + 1)
        ]
        #: High-watermark bucket hint: no bucket above it is non-empty.
        #: Raised eagerly on insert, lowered lazily by :meth:`largest`.
        self._btop = 0
        self._total_free = 0
        if initially_free:
            self._insert(0, capacity)

    # ------------------------------------------------------------------
    # Size tier
    # ------------------------------------------------------------------
    def _b_insert(self, start: int, length: int) -> None:
        b = length.bit_length()
        if b > self._btop:
            self._btop = b
        self._buckets[b].insert((length, start))

    def _b_delete(self, start: int, length: int) -> None:
        if not self._buckets[length.bit_length()].remove((length, start)):
            raise CorruptionError(f"size view out of sync at {start}")

    # ------------------------------------------------------------------
    # Internal bookkeeping (all tiers updated together)
    # ------------------------------------------------------------------
    def _insert(self, start: int, length: int) -> None:
        self._len_by_start[start] = length
        self._addr.insert(start, weight=length)
        self._b_insert(start, length)
        self._total_free += length

    def _delete(self, start: int) -> int:
        length = self._len_by_start.pop(start)
        if not self._addr.remove(start, weight=length):
            raise CorruptionError(f"free index views out of sync at {start}")
        self._b_delete(start, length)
        self._total_free -= length
        return length

    def _resize(self, old_start: int, new_start: int, new_len: int) -> None:
        """Move one run's boundary in place (carve/merge fast path).

        The caller guarantees the replacement preserves address order
        (carves and merges only move a boundary between two existing
        neighbours), which is what lets the address tier rewrite the
        entry without a memmove.
        """
        lens = self._len_by_start
        old_len = lens.pop(old_start)
        lens[new_start] = new_len
        self._addr.replace(old_start, new_start,
                           old_weight=old_len, new_weight=new_len)
        self._b_delete(old_start, old_len)
        self._b_insert(new_start, new_len)
        self._total_free += new_len - old_len

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, ext: Extent) -> None:
        """Return ``ext`` to the free pool, merging with free neighbours.

        Merges are in-place boundary moves: absorbing ``ext`` into a
        neighbour rewrites that neighbour's directory entry instead of
        deleting and reinserting it.
        """
        start, end = ext.start, ext.end
        if end > self.capacity:
            raise CorruptionError(f"{ext} extends past capacity {self.capacity}")
        lens = self._len_by_start
        pred = self._addr.pred_le(start)
        if pred is not None and pred + lens[pred] > start:
            raise CorruptionError(
                f"double free: {ext} overlaps free run at {pred}"
            )
        succ = self._addr.succ_gt(start)
        if succ is not None and succ < end:
            raise CorruptionError(
                f"double free: {ext} overlaps free run at {succ}"
            )
        merge_left = pred is not None and pred + lens[pred] == start
        succ_len = lens.get(end)
        if merge_left and succ_len is not None:
            # Bridge: pred absorbs ext and the successor run.
            self._delete(end)
            self._resize(pred, pred, end + succ_len - pred)
        elif merge_left:
            self._resize(pred, pred, end - pred)
        elif succ_len is not None:
            # Successor's start slides left over ext.
            self._resize(end, start, end + succ_len - start)
        else:
            self._insert(start, end - start)

    def remove(self, ext: Extent) -> None:
        """Allocate the exact range ``ext``, which must be entirely free.

        Front and tail carves (every policy allocation carves a run's
        front) are in-place boundary moves; only a mid-run carve pays a
        delete plus two inserts.
        """
        estart, eend = ext.start, ext.end
        lens = self._len_by_start
        rstart = self._addr.pred_le(estart)
        if rstart is None:
            raise CorruptionError(f"{ext} is not free")
        rlen = lens[rstart]
        rend = rstart + rlen
        if estart < rstart or eend > rend:
            raise CorruptionError(
                f"{ext} is not inside free run {Extent(rstart, rlen)}"
            )
        if rstart < estart:
            if eend < rend:
                self._delete(rstart)
                self._insert(rstart, estart - rstart)
                self._insert(eend, rend - eend)
            else:
                self._resize(rstart, rstart, estart - rstart)
        elif eend < rend:
            self._resize(rstart, eend, rend - eend)
        else:
            self._delete(rstart)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run_at(self, offset: int) -> Extent | None:
        """The free run containing ``offset``, or None when allocated."""
        start = self._addr.pred_le(offset)
        if start is None:
            return None
        run = Extent(start, self._len_by_start[start])
        return run if run.contains(offset) else None

    def run_starting_at(self, offset: int) -> Extent | None:
        """The free run beginning exactly at ``offset`` (extension probe)."""
        length = self._len_by_start.get(offset)
        return Extent(offset, length) if length is not None else None

    def first_fit(self, size: int, *, min_start: int = 0,
                  max_start: int | None = None) -> Extent | None:
        """Lowest-address free run of at least ``size`` bytes.

        ``min_start``/``max_start`` bound the run's *start* offset, which
        is how the banded (outer-band-first) search is expressed.  A run
        straddling ``min_start`` qualifies when its tail past
        ``min_start`` still fits the request.  The search descends the
        block directory using the per-block max-run-length augmentation,
        so blocks with no fitting run are skipped without touching them.
        """
        lens = self._len_by_start
        pred = self._addr.pred_lt(min_start)
        if pred is not None:
            pred_end = pred + lens[pred]
            if pred_end > min_start and pred_end - min_start >= size:
                return Extent(pred, lens[pred])
        mins = self._addr.mins
        blocks = self._addr.blocks
        sums = self._addr.sums
        nb = len(blocks)
        bi = bisect.bisect_right(mins, min_start) - 1
        if bi < 0:
            bi, pos = 0, 0
        else:
            pos = bisect.bisect_left(blocks[bi], min_start)
            if pos >= len(blocks[bi]):
                bi, pos = bi + 1, 0
        for b in range(bi, nb):
            block = blocks[b]
            lo = pos if b == bi else 0
            if max_start is not None and block[lo] > max_start:
                return None
            if sums[b][0] < size:
                continue
            for i in range(lo, len(block)):
                s = block[i]
                if max_start is not None and s > max_start:
                    return None
                length = lens[s]
                if length >= size:
                    return Extent(s, length)
        return None

    def best_fit(self, size: int) -> Extent | None:
        """Smallest free run of at least ``size`` bytes (lowest address ties)."""
        buckets = self._buckets
        b0 = size.bit_length()
        if b0 >= len(buckets):
            return None
        pair = buckets[b0].first_ge((size, -1))
        if pair is not None:
            return Extent(pair[1], pair[0])
        for b in range(b0 + 1, len(buckets)):
            bucket = buckets[b]
            if bucket:
                length, start = bucket.first()
                return Extent(start, length)
        return None

    def worst_fit(self, size: int) -> Extent | None:
        """Largest free run, provided it holds at least ``size`` bytes."""
        largest = self.largest()
        if largest is None or largest.length < size:
            return None
        return largest

    def next_fit(self, size: int, cursor: int) -> Extent | None:
        """First fit starting at ``cursor``, wrapping once past the end."""
        found = self.first_fit(size, min_start=cursor)
        if found is not None:
            return found
        return self.first_fit(size, max_start=cursor)

    def largest(self) -> Extent | None:
        """The largest free run (highest address ties)."""
        buckets = self._buckets
        b = self._btop
        while b >= 0 and not buckets[b]:
            b -= 1
        if b < 0:
            self._btop = 0
            return None
        self._btop = b
        length, start = buckets[b].last()
        return Extent(start, length)

    def runs_by_size_desc(self) -> Iterator[Extent]:
        """Free runs from largest to smallest (NTFS run-cache order)."""
        for bucket in reversed(self._buckets):
            for length, start in bucket.iter_desc():
                yield Extent(start, length)

    def __iter__(self) -> Iterator[Extent]:
        """Free runs in address order."""
        lens = self._len_by_start
        for start in self._addr:
            yield Extent(start, lens[start])

    def __len__(self) -> int:
        return len(self._len_by_start)

    @property
    def total_free(self) -> int:
        """Free bytes, maintained incrementally — an O(1) attribute read."""
        return self._total_free

    def check_invariants(self) -> None:
        """Verify all tiers agree and runs are disjoint and coalesced.

        Used by property tests; O(n log n).
        """
        lens = self._len_by_start
        self._addr.check("address tier")
        starts = list(self._addr)
        if len(starts) != len(lens):
            raise CorruptionError("view sizes disagree")
        prev_end: int | None = None
        total = 0
        for start in starts:
            length = lens.get(start)
            if length is None:
                raise CorruptionError(f"address view has unknown run {start}")
            if length <= 0:
                raise CorruptionError(f"non-positive run at {start}")
            if prev_end is not None and start <= prev_end:
                detail = "overlapping" if start < prev_end else "uncoalesced"
                raise CorruptionError(f"{detail} runs at {start}")
            if start + length > self.capacity:
                raise CorruptionError("run extends past capacity")
            prev_end = start + length
            total += length
        if total != self._total_free:
            raise CorruptionError(
                f"total_free accounting drifted: {self._total_free} != {total}"
            )
        by_size: list[tuple[int, int]] = []
        for b, bucket in enumerate(self._buckets):
            bucket.check(f"size bucket {b}")
            for length, start in bucket:
                if length.bit_length() != b:
                    raise CorruptionError(
                        f"run ({length}, {start}) filed in bucket {b}"
                    )
                by_size.append((length, start))
        expected = sorted((length, start) for start, length in lens.items())
        if by_size != expected:
            raise CorruptionError("size view disagrees with address view")
        for b in range(self._btop + 1, len(self._buckets)):
            if self._buckets[b]:
                raise CorruptionError(f"bucket {b} above the top-bucket hint")


def make_free_index(capacity: int, *, kind: str = "tiered",
                    initially_free: bool = True,
                    ) -> FreeExtentIndex | NaiveFreeExtentIndex:
    """Instantiate a free-space engine by name.

    ``tiered`` is the production engine; ``naive`` is the flat-list
    reference model, exposed so benches and figure scripts can ablate
    the allocator's contribution (``--index naive``).
    """
    if kind == "tiered":
        return FreeExtentIndex(capacity, initially_free=initially_free)
    if kind == "naive":
        return NaiveFreeExtentIndex(capacity, initially_free=initially_free)
    raise ConfigError(
        f"unknown free-index kind {kind!r}; choose from {INDEX_KINDS}"
    )
