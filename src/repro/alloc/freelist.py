"""Tiered O(log n) free-space index with coalescing.

:class:`FreeExtentIndex` is the "bitmap" of the simulation: the single
source of truth about which byte ranges of a volume are free.  Every
experiment — bulk load, safe-write churn, fragmentation aging — funnels
through it, so it is engineered as a tiered engine rather than the flat
sorted lists of the original implementation (preserved as
:class:`~repro.alloc.naive.NaiveFreeExtentIndex` for parity tests and
the ``--index naive`` ablation):

* **Address tier** — a two-level B-tree: a block directory (sorted block
  minima) over blocks of at most ``2 * _LOAD`` sorted run starts.
  Insert/delete/predecessor cost O(log n) directory search plus an
  O(_LOAD) in-block ``memmove``, instead of the flat list's O(n).  Each
  directory entry is augmented with the **max run length** in its block,
  so ``first_fit``/``next_fit`` (including the ``min_start``/
  ``max_start`` banded queries) skip whole blocks that cannot satisfy a
  request instead of scanning run by run.
* **Size tier** — power-of-two buckets (bucket *b* holds runs whose
  length has ``bit_length() == b``), each a small sorted list of
  ``(length, start)`` pairs.  ``best_fit`` bisects one bucket and falls
  through to the next non-empty one; ``worst_fit``/``largest`` read the
  tail of the highest non-empty bucket; ``runs_by_size_desc`` streams
  buckets top-down — all without maintaining one global O(n) sorted
  list.
* **Incremental accounting** — :attr:`total_free`, the run count, and
  the largest run are maintained under mutation, so reading them is
  O(1) (the largest-run probe scans at most ``capacity.bit_length()``
  bucket heads, a constant for any fixed volume).

The public API and error semantics are identical to the naive engine:
:class:`~repro.errors.CorruptionError` on double frees or overlapping
inserts rather than repairing them, because an overlap means the
caller's accounting diverged.  ``tests/test_prop_freelist.py`` holds
the two engines to placement-identical answers under random operation
sequences.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator

from repro.alloc.extent import Extent
from repro.alloc.naive import NaiveFreeExtentIndex
from repro.errors import ConfigError, CorruptionError

#: Target block size of the address tier.  Blocks split when they reach
#: twice this.  The value trades the O(_LOAD) in-block memmove per
#: mutation against the O(n / _LOAD) block-directory scan of a failed
#: first-fit sweep; ~256 is near the optimum across 10^3..10^6 runs.
_LOAD = 256

#: Engine names accepted by :func:`make_free_index` (and therefore by
#: ``FsConfig.index_kind`` / the benches' ``--index`` flag).
INDEX_KINDS = ("tiered", "naive")


class _BlockedPairs:
    """Two-level sorted set of ``(length, start)`` pairs.

    The size tier's per-bucket structure.  A skewed workload can land
    most free runs in one power-of-two bucket (e.g. every run the same
    length), so buckets use the same blocked layout as the address
    tier: a directory of block minima over blocks of at most
    ``2 * _LOAD`` pairs, bounding every mutation's memmove to O(_LOAD)
    instead of O(bucket).
    """

    __slots__ = ("_blocks", "_mins", "_n")

    def __init__(self) -> None:
        self._blocks: list[list[tuple[int, int]]] = []
        self._mins: list[tuple[int, int]] = []
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def insert(self, pair: tuple[int, int]) -> None:
        blocks = self._blocks
        mins = self._mins
        self._n += 1
        if not blocks:
            blocks.append([pair])
            mins.append(pair)
            return
        bi = bisect.bisect_right(mins, pair) - 1
        if bi < 0:
            bi = 0
        block = blocks[bi]
        bisect.insort(block, pair)
        if block[0] != mins[bi]:
            mins[bi] = block[0]
        if len(block) >= 2 * _LOAD:
            half = len(block) // 2
            right = block[half:]
            del block[half:]
            blocks.insert(bi + 1, right)
            mins.insert(bi + 1, right[0])

    def remove(self, pair: tuple[int, int]) -> bool:
        """Drop ``pair``; False when it was not present."""
        mins = self._mins
        bi = bisect.bisect_right(mins, pair) - 1
        if bi < 0:
            return False
        block = self._blocks[bi]
        pos = bisect.bisect_left(block, pair)
        if pos >= len(block) or block[pos] != pair:
            return False
        del block[pos]
        self._n -= 1
        if not block:
            del self._blocks[bi]
            del mins[bi]
        elif pos == 0:
            mins[bi] = block[0]
        return True

    def first(self) -> tuple[int, int]:
        return self._blocks[0][0]

    def last(self) -> tuple[int, int]:
        return self._blocks[-1][-1]

    def first_ge(self, key: tuple[int, int]) -> tuple[int, int] | None:
        """Smallest pair ``>= key``, or None."""
        blocks = self._blocks
        if not blocks:
            return None
        mins = self._mins
        bi = bisect.bisect_right(mins, key) - 1
        if bi < 0:
            return blocks[0][0]
        block = blocks[bi]
        pos = bisect.bisect_left(block, key)
        if pos < len(block):
            return block[pos]
        if bi + 1 < len(blocks):
            return blocks[bi + 1][0]
        return None

    def __iter__(self):
        for block in self._blocks:
            yield from block

    def iter_desc(self):
        for block in reversed(self._blocks):
            yield from reversed(block)

    def check(self, label: str) -> None:
        """Raise :class:`CorruptionError` on internal inconsistency."""
        if len(self._blocks) != len(self._mins):
            raise CorruptionError(f"{label}: directory sizes disagree")
        flat: list[tuple[int, int]] = []
        for bi, block in enumerate(self._blocks):
            if not block:
                raise CorruptionError(f"{label}: empty block")
            if self._mins[bi] != block[0]:
                raise CorruptionError(f"{label}: stale block minimum")
            flat.extend(block)
        if flat != sorted(flat):
            raise CorruptionError(f"{label}: pairs are unsorted")
        if len(flat) != self._n:
            raise CorruptionError(f"{label}: count drifted")


class FreeExtentIndex:
    """Coalescing index of free extents over ``[0, capacity)``.

    Parameters
    ----------
    capacity:
        Volume size; inserts beyond it are rejected.
    initially_free:
        When true the whole volume starts as one free run.
    """

    def __init__(self, capacity: int, *, initially_free: bool = True) -> None:
        if capacity <= 0:
            raise CorruptionError("capacity must be positive")
        self.capacity = capacity
        #: run start -> run length (the O(1) length authority).
        self._len_by_start: dict[int, int] = {}
        # Address tier: blocks of sorted starts plus a parallel block
        # directory of (minimum start, max run length, #runs attaining
        # that max).  The count lets a delete decrement instead of
        # rescanning the block when several runs tie for longest.
        self._ablocks: list[list[int]] = []
        self._amins: list[int] = []
        self._amax: list[int] = []
        self._amaxn: list[int] = []
        # Size tier: bucket b holds (length, start) pairs, sorted, for
        # runs with length.bit_length() == b.
        self._buckets: list[_BlockedPairs] = [
            _BlockedPairs() for _ in range(capacity.bit_length() + 1)
        ]
        #: High-watermark bucket hint: no bucket above it is non-empty.
        #: Raised eagerly on insert, lowered lazily by :meth:`largest`.
        self._btop = 0
        self._total_free = 0
        if initially_free:
            self._insert(0, capacity)

    # ------------------------------------------------------------------
    # Address tier
    # ------------------------------------------------------------------
    def _block_max(self, block: list[int]) -> tuple[int, int]:
        """(max run length, #runs attaining it) for one block — O(block)."""
        lens = self._len_by_start
        mx = 0
        cnt = 0
        for s in block:
            length = lens[s]
            if length > mx:
                mx, cnt = length, 1
            elif length == mx:
                cnt += 1
        return mx, cnt

    def _a_insert(self, start: int, length: int) -> None:
        mins = self._amins
        blocks = self._ablocks
        if not blocks:
            blocks.append([start])
            mins.append(start)
            self._amax.append(length)
            self._amaxn.append(1)
            return
        bi = bisect.bisect_right(mins, start) - 1
        if bi < 0:
            bi = 0
        block = blocks[bi]
        pos = bisect.bisect_left(block, start)
        block.insert(pos, start)
        if pos == 0:
            mins[bi] = start
        amax = self._amax
        if length > amax[bi]:
            amax[bi] = length
            self._amaxn[bi] = 1
        elif length == amax[bi]:
            self._amaxn[bi] += 1
        if len(block) >= 2 * _LOAD:
            self._a_split(bi)

    def _a_split(self, bi: int) -> None:
        block = self._ablocks[bi]
        half = len(block) // 2
        right = block[half:]
        del block[half:]
        self._ablocks.insert(bi + 1, right)
        self._amins.insert(bi + 1, right[0])
        self._amax[bi], self._amaxn[bi] = self._block_max(block)
        rmax, rcnt = self._block_max(right)
        self._amax.insert(bi + 1, rmax)
        self._amaxn.insert(bi + 1, rcnt)

    def _a_delete(self, start: int, length: int) -> None:
        mins = self._amins
        bi = bisect.bisect_right(mins, start) - 1
        if bi < 0:
            raise CorruptionError(f"free index views out of sync at {start}")
        block = self._ablocks[bi]
        pos = bisect.bisect_left(block, start)
        if pos >= len(block) or block[pos] != start:
            raise CorruptionError(f"free index views out of sync at {start}")
        del block[pos]
        if not block:
            del self._ablocks[bi]
            del mins[bi]
            del self._amax[bi]
            del self._amaxn[bi]
            return
        if pos == 0:
            mins[bi] = block[0]
        if length == self._amax[bi]:
            self._amaxn[bi] -= 1
            if self._amaxn[bi] == 0:
                self._amax[bi], self._amaxn[bi] = self._block_max(block)

    def _a_update(self, old_start: int, old_len: int,
                  new_start: int, new_len: int) -> None:
        """Rewrite one run's directory entry in place (no memmove).

        The caller guarantees the replacement preserves address order
        (carves and merges only move a boundary between two existing
        neighbours) and has already updated ``_len_by_start``.
        """
        mins = self._amins
        bi = bisect.bisect_right(mins, old_start) - 1
        if bi < 0:
            raise CorruptionError(
                f"free index views out of sync at {old_start}"
            )
        block = self._ablocks[bi]
        pos = bisect.bisect_left(block, old_start)
        if pos >= len(block) or block[pos] != old_start:
            raise CorruptionError(
                f"free index views out of sync at {old_start}"
            )
        block[pos] = new_start
        if pos == 0:
            mins[bi] = new_start
        amax = self._amax[bi]
        if new_len > amax:
            self._amax[bi] = new_len
            self._amaxn[bi] = 1
        else:
            if new_len == amax:
                self._amaxn[bi] += 1
            if old_len == amax:
                self._amaxn[bi] -= 1
                if self._amaxn[bi] == 0:
                    self._amax[bi], self._amaxn[bi] = self._block_max(block)

    def _pred_le(self, offset: int) -> int | None:
        """Largest run start ``<= offset``, or None."""
        bi = bisect.bisect_right(self._amins, offset) - 1
        if bi < 0:
            return None
        block = self._ablocks[bi]
        pos = bisect.bisect_right(block, offset) - 1
        return block[pos] if pos >= 0 else None

    def _pred_lt(self, offset: int) -> int | None:
        """Largest run start ``< offset``, or None."""
        bi = bisect.bisect_left(self._amins, offset) - 1
        if bi < 0:
            return None
        block = self._ablocks[bi]
        pos = bisect.bisect_left(block, offset) - 1
        return block[pos] if pos >= 0 else None

    def _succ_gt(self, offset: int) -> int | None:
        """Smallest run start ``> offset``, or None."""
        blocks = self._ablocks
        if not blocks:
            return None
        bi = bisect.bisect_right(self._amins, offset) - 1
        if bi < 0:
            return blocks[0][0]
        block = blocks[bi]
        pos = bisect.bisect_right(block, offset)
        if pos < len(block):
            return block[pos]
        if bi + 1 < len(blocks):
            return blocks[bi + 1][0]
        return None

    # ------------------------------------------------------------------
    # Size tier
    # ------------------------------------------------------------------
    def _b_insert(self, start: int, length: int) -> None:
        b = length.bit_length()
        if b > self._btop:
            self._btop = b
        self._buckets[b].insert((length, start))

    def _b_delete(self, start: int, length: int) -> None:
        if not self._buckets[length.bit_length()].remove((length, start)):
            raise CorruptionError(f"size view out of sync at {start}")

    # ------------------------------------------------------------------
    # Internal bookkeeping (all tiers updated together)
    # ------------------------------------------------------------------
    def _insert(self, start: int, length: int) -> None:
        self._len_by_start[start] = length
        self._a_insert(start, length)
        self._b_insert(start, length)
        self._total_free += length

    def _delete(self, start: int) -> int:
        length = self._len_by_start.pop(start)
        self._a_delete(start, length)
        self._b_delete(start, length)
        self._total_free -= length
        return length

    def _resize(self, old_start: int, new_start: int, new_len: int) -> None:
        """Move one run's boundary in place (carve/merge fast path)."""
        lens = self._len_by_start
        old_len = lens.pop(old_start)
        lens[new_start] = new_len
        self._a_update(old_start, old_len, new_start, new_len)
        self._b_delete(old_start, old_len)
        self._b_insert(new_start, new_len)
        self._total_free += new_len - old_len

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, ext: Extent) -> None:
        """Return ``ext`` to the free pool, merging with free neighbours.

        Merges are in-place boundary moves: absorbing ``ext`` into a
        neighbour rewrites that neighbour's directory entry instead of
        deleting and reinserting it.
        """
        start, end = ext.start, ext.end
        if end > self.capacity:
            raise CorruptionError(f"{ext} extends past capacity {self.capacity}")
        lens = self._len_by_start
        pred = self._pred_le(start)
        if pred is not None and pred + lens[pred] > start:
            raise CorruptionError(
                f"double free: {ext} overlaps free run at {pred}"
            )
        succ = self._succ_gt(start)
        if succ is not None and succ < end:
            raise CorruptionError(
                f"double free: {ext} overlaps free run at {succ}"
            )
        merge_left = pred is not None and pred + lens[pred] == start
        succ_len = lens.get(end)
        if merge_left and succ_len is not None:
            # Bridge: pred absorbs ext and the successor run.
            self._delete(end)
            self._resize(pred, pred, end + succ_len - pred)
        elif merge_left:
            self._resize(pred, pred, end - pred)
        elif succ_len is not None:
            # Successor's start slides left over ext.
            self._resize(end, start, end + succ_len - start)
        else:
            self._insert(start, end - start)

    def remove(self, ext: Extent) -> None:
        """Allocate the exact range ``ext``, which must be entirely free.

        Front and tail carves (every policy allocation carves a run's
        front) are in-place boundary moves; only a mid-run carve pays a
        delete plus two inserts.
        """
        estart, eend = ext.start, ext.end
        lens = self._len_by_start
        rstart = self._pred_le(estart)
        if rstart is None:
            raise CorruptionError(f"{ext} is not free")
        rlen = lens[rstart]
        rend = rstart + rlen
        if estart < rstart or eend > rend:
            raise CorruptionError(
                f"{ext} is not inside free run {Extent(rstart, rlen)}"
            )
        if rstart < estart:
            if eend < rend:
                self._delete(rstart)
                self._insert(rstart, estart - rstart)
                self._insert(eend, rend - eend)
            else:
                self._resize(rstart, rstart, estart - rstart)
        elif eend < rend:
            self._resize(rstart, eend, rend - eend)
        else:
            self._delete(rstart)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def run_at(self, offset: int) -> Extent | None:
        """The free run containing ``offset``, or None when allocated."""
        start = self._pred_le(offset)
        if start is None:
            return None
        run = Extent(start, self._len_by_start[start])
        return run if run.contains(offset) else None

    def run_starting_at(self, offset: int) -> Extent | None:
        """The free run beginning exactly at ``offset`` (extension probe)."""
        length = self._len_by_start.get(offset)
        return Extent(offset, length) if length is not None else None

    def first_fit(self, size: int, *, min_start: int = 0,
                  max_start: int | None = None) -> Extent | None:
        """Lowest-address free run of at least ``size`` bytes.

        ``min_start``/``max_start`` bound the run's *start* offset, which
        is how the banded (outer-band-first) search is expressed.  A run
        straddling ``min_start`` qualifies when its tail past
        ``min_start`` still fits the request.  The search descends the
        block directory using the per-block max-run-length augmentation,
        so blocks with no fitting run are skipped without touching them.
        """
        lens = self._len_by_start
        pred = self._pred_lt(min_start)
        if pred is not None:
            pred_end = pred + lens[pred]
            if pred_end > min_start and pred_end - min_start >= size:
                return Extent(pred, lens[pred])
        mins = self._amins
        blocks = self._ablocks
        amax = self._amax
        nb = len(blocks)
        bi = bisect.bisect_right(mins, min_start) - 1
        if bi < 0:
            bi, pos = 0, 0
        else:
            pos = bisect.bisect_left(blocks[bi], min_start)
            if pos >= len(blocks[bi]):
                bi, pos = bi + 1, 0
        for b in range(bi, nb):
            block = blocks[b]
            lo = pos if b == bi else 0
            if max_start is not None and block[lo] > max_start:
                return None
            if amax[b] < size:
                continue
            for i in range(lo, len(block)):
                s = block[i]
                if max_start is not None and s > max_start:
                    return None
                length = lens[s]
                if length >= size:
                    return Extent(s, length)
        return None

    def best_fit(self, size: int) -> Extent | None:
        """Smallest free run of at least ``size`` bytes (lowest address ties)."""
        buckets = self._buckets
        b0 = size.bit_length()
        if b0 >= len(buckets):
            return None
        pair = buckets[b0].first_ge((size, -1))
        if pair is not None:
            return Extent(pair[1], pair[0])
        for b in range(b0 + 1, len(buckets)):
            bucket = buckets[b]
            if bucket:
                length, start = bucket.first()
                return Extent(start, length)
        return None

    def worst_fit(self, size: int) -> Extent | None:
        """Largest free run, provided it holds at least ``size`` bytes."""
        largest = self.largest()
        if largest is None or largest.length < size:
            return None
        return largest

    def next_fit(self, size: int, cursor: int) -> Extent | None:
        """First fit starting at ``cursor``, wrapping once past the end."""
        found = self.first_fit(size, min_start=cursor)
        if found is not None:
            return found
        return self.first_fit(size, max_start=cursor)

    def largest(self) -> Extent | None:
        """The largest free run (highest address ties)."""
        buckets = self._buckets
        b = self._btop
        while b >= 0 and not buckets[b]:
            b -= 1
        if b < 0:
            self._btop = 0
            return None
        self._btop = b
        length, start = buckets[b].last()
        return Extent(start, length)

    def runs_by_size_desc(self) -> Iterator[Extent]:
        """Free runs from largest to smallest (NTFS run-cache order)."""
        for bucket in reversed(self._buckets):
            for length, start in bucket.iter_desc():
                yield Extent(start, length)

    def __iter__(self) -> Iterator[Extent]:
        """Free runs in address order."""
        lens = self._len_by_start
        for block in self._ablocks:
            for start in block:
                yield Extent(start, lens[start])

    def __len__(self) -> int:
        return len(self._len_by_start)

    @property
    def total_free(self) -> int:
        """Free bytes, maintained incrementally — an O(1) attribute read."""
        return self._total_free

    def check_invariants(self) -> None:
        """Verify all tiers agree and runs are disjoint and coalesced.

        Used by property tests; O(n log n).
        """
        lens = self._len_by_start
        if not (len(self._ablocks) == len(self._amins) == len(self._amax)
                == len(self._amaxn)):
            raise CorruptionError("block directory sizes disagree")
        starts = [s for block in self._ablocks for s in block]
        if len(starts) != len(lens):
            raise CorruptionError("view sizes disagree")
        if starts != sorted(starts):
            raise CorruptionError("address view is unsorted")
        for bi, block in enumerate(self._ablocks):
            if not block:
                raise CorruptionError("empty address block")
            if self._amins[bi] != block[0]:
                raise CorruptionError(f"stale block minimum at block {bi}")
            if (self._amax[bi], self._amaxn[bi]) != self._block_max(block):
                raise CorruptionError(f"stale block max-run at block {bi}")
        prev_end: int | None = None
        total = 0
        for start in starts:
            length = lens.get(start)
            if length is None:
                raise CorruptionError(f"address view has unknown run {start}")
            if length <= 0:
                raise CorruptionError(f"non-positive run at {start}")
            if prev_end is not None and start <= prev_end:
                detail = "overlapping" if start < prev_end else "uncoalesced"
                raise CorruptionError(f"{detail} runs at {start}")
            if start + length > self.capacity:
                raise CorruptionError("run extends past capacity")
            prev_end = start + length
            total += length
        if total != self._total_free:
            raise CorruptionError(
                f"total_free accounting drifted: {self._total_free} != {total}"
            )
        by_size: list[tuple[int, int]] = []
        for b, bucket in enumerate(self._buckets):
            bucket.check(f"size bucket {b}")
            for length, start in bucket:
                if length.bit_length() != b:
                    raise CorruptionError(
                        f"run ({length}, {start}) filed in bucket {b}"
                    )
                by_size.append((length, start))
        expected = sorted((length, start) for start, length in lens.items())
        if by_size != expected:
            raise CorruptionError("size view disagrees with address view")
        for b in range(self._btop + 1, len(self._buckets)):
            if self._buckets[b]:
                raise CorruptionError(f"bucket {b} above the top-bucket hint")


def make_free_index(capacity: int, *, kind: str = "tiered",
                    initially_free: bool = True,
                    ) -> FreeExtentIndex | NaiveFreeExtentIndex:
    """Instantiate a free-space engine by name.

    ``tiered`` is the production engine; ``naive`` is the flat-list
    reference model, exposed so benches and figure scripts can ablate
    the allocator's contribution (``--index naive``).
    """
    if kind == "tiered":
        return FreeExtentIndex(capacity, initially_free=initially_free)
    if kind == "naive":
        return NaiveFreeExtentIndex(capacity, initially_free=initially_free)
    raise ConfigError(
        f"unknown free-index kind {kind!r}; choose from {INDEX_KINDS}"
    )
