"""Event-driven shard queue simulator with per-request tail latency.

The PR 5 overlap model (:mod:`repro.disk.schedule`) is a dispatch-round
makespan: every request in a round finishes together, so there is no
queueing, no contention, and no latency *distribution* — only wall
time.  This module layers an event simulator **under** that model:
each shard owns a FIFO request queue of bounded depth, requests carry
enqueue/dispatch/complete timestamps, and every completion records a
sojourn time (complete − enqueue) into a streaming
:class:`LatencyHistogram`, so measurement windows can report
p50/p95/p99 latency next to summed and overlapped throughput.

Two arrival modes (:class:`ArrivalSpec`):

* ``closed`` (default) — the driver's dispatch rounds *are* the
  arrivals: every lane of a round enqueues at round-local time zero
  and the round is simulated with exactly the greedy-LPT placement of
  :func:`~repro.disk.schedule.round_makespan` (same stable descending
  sort, same heap operations, same float order), so the accumulated
  wall time **equals the PR 5 makespan to the float** — the reduction
  contract the property suite pins.  Queueing shows up only when the
  ``parallelism`` cap makes lanes wait for a worker.
* ``poisson:rate=R`` — an open-loop Poisson arrival process
  (deterministic via :func:`repro.rng.substream`) re-times the
  driver's synchronous requests onto a global timeline: arrivals keep
  coming at rate ``R`` whether or not shards keep up, so saturated
  shards build queues and the sojourn tail grows.  ``clients=C``
  bounds the in-flight population (a closed set of clients feeding the
  open-loop process); a full shard FIFO (``depth``) blocks the
  submitter until completions free space, with the blocked-at-the-door
  wait counted into the request's sojourn.

Request lifecycle::

    arrival ──► [shard FIFO, bounded depth] ──► dispatch ──► complete
    enqueue_s                                   dispatch_s    complete_s
       └──────────────── sojourn = complete_s − enqueue_s ───────┘

Dispatch rules: one request in service per shard (a shard is one
device lane), a global worker cap of ``parallelism`` (0 = one worker
per shard, matching the round model), FIFO within a shard and
oldest-first across idle shards when a worker frees.

Stall/arrival timeline contract
-------------------------------
A stall (retry backoff, rebuild/rebalance/checkpoint throttle pause)
models the *submitting driver* sleeping for that long.  Two rules pin
its timeline semantics:

1. The stall advances the charged wall frontier by exactly its
   duration, so completions already scheduled inside the stall window
   overlap it and add no extra wall time (devices keep working while
   the driver sleeps; nothing is double-charged).
2. The open-loop arrival cursor is advanced to at least the new
   frontier: requests the driver submits *after* the stall cannot
   arrive inside it.  Without this, post-stall arrivals would enqueue
   "in the past" — behind queues the stall was giving time to drain —
   and throttling background work could never relieve the foreground
   tail.  (:meth:`EventScheduler.set_arrival` anchors a new arrival
   process to the frontier for the same reason.)

Arrivals between stalls still queue normally: a backlogged device with
completions beyond the cursor is exactly how open-loop saturation shows
up, and stalls are the only points where the cursor is pulled forward.

Background lane
---------------
Maintenance I/O (checkpoint write-back, migration/rebuild copies) is
dispatched with ``record_round(..., background=True)``.  Background
requests share the shard queues and devices with the foreground, but:

1. they enqueue back-to-back at the current arrival cursor without
   drawing (or consuming) open-loop inter-arrival gaps — a burst is
   driver-initiated, not an arrival, so it can genuinely saturate a
   queue instead of being silently throttled to the foreground rate;
2. their sojourns are recorded into the window's
   ``background_latency`` histogram, never its foreground ``latency``
   — so a measurement window reports the foreground tail *under*
   background interference, not a blend; the scheduler-lifetime
   ``latency`` histogram keeps every completion so the books
   (``submitted == completed == latency.count``) stay balanced.

Combined with the stall contract above, a duty-cycle throttle at rate
``R`` (``spent * (1-R)/R`` stalls between background rounds) both
spreads the burst out on the timeline and moves subsequent foreground
arrivals past the pause, which is what lets throttling visibly relieve
the foreground tail.

The histogram is a sparse log-bucketed summary (8 buckets per octave),
with nearest-rank percentile estimates clamped to the observed
min/max: exact for single-sample and all-equal inputs, within a
documented ≤5% relative error everywhere else, and monotone in the
rank by construction (p50 ≤ p95 ≤ p99 ≤ max).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from random import Random
from dataclasses import dataclass, field

from repro.disk.schedule import SchedulerWindow, ShardScheduler
from repro.errors import ConfigError
from repro.rng import substream

#: Arrival processes :class:`ArrivalSpec` understands.
ARRIVAL_MODES = ("closed", "poisson")

#: Geometric bucket growth: 8 buckets per octave.  A value is estimated
#: at its bucket's geometric midpoint, so the worst-case relative error
#: is ``sqrt(growth) - 1`` ≈ 4.4% — documented (and tested) as ≤ 5%.
HIST_GROWTH = 2.0 ** 0.125
_LOG_GROWTH = math.log(HIST_GROWTH)
#: Floor of the first bucket: one simulated nanosecond.
HIST_BASE_S = 1e-9
#: Documented relative error bound of :meth:`LatencyHistogram.percentile`.
HIST_REL_ERROR = HIST_GROWTH ** 0.5 - 1.0


# ----------------------------------------------------------------------
# Arrival process
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ArrivalSpec:
    """How requests arrive at the event queue.

    Text grammar (clause parameters split on ``:`` or ``,``, like
    :mod:`repro.disk.faults`, so the spec survives inside a
    comma-separated ``--store`` option)::

        closed
        poisson:rate=120
        poisson:rate=2e3:clients=32:seed=7
    """

    mode: str = "closed"
    #: Mean arrivals per second (poisson only; must be positive).
    rate: float = 0.0
    #: In-flight client cap (0 = unbounded; poisson only).
    clients: int = 0
    #: Root seed of the arrival substream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ARRIVAL_MODES:
            raise ConfigError(
                f"unknown arrival mode {self.mode!r}; "
                f"choose from {ARRIVAL_MODES}"
            )
        if self.mode == "poisson":
            if not (math.isfinite(self.rate) and self.rate > 0.0):
                raise ConfigError(
                    "poisson arrivals need rate=<requests/s> > 0"
                )
        elif self.rate or self.clients or self.seed:
            raise ConfigError(
                "closed arrivals take no rate/clients parameters "
                "(the driver's dispatch rounds are the arrivals)"
            )
        if self.clients < 0:
            raise ConfigError("clients must be >= 0 (0 = unbounded)")

    @classmethod
    def parse(cls, text: str) -> "ArrivalSpec":
        parts = [p.strip() for p in text.replace(",", ":").split(":")]
        parts = [p for p in parts if p]
        if not parts:
            raise ConfigError("empty arrival spec")
        mode = parts[0]
        fields: dict = {"mode": mode}
        for item in parts[1:]:
            key, eq, value = item.partition("=")
            if not eq or not value:
                raise ConfigError(
                    f"bad arrival parameter {item!r}; expected key=value"
                )
            if key == "rate":
                try:
                    fields["rate"] = float(value)
                except ValueError:
                    raise ConfigError(
                        f"bad arrival rate {value!r}"
                    ) from None
            elif key == "clients":
                try:
                    fields["clients"] = int(value)
                except ValueError:
                    raise ConfigError(
                        f"bad arrival clients {value!r}"
                    ) from None
            elif key == "seed":
                try:
                    fields["seed"] = int(value)
                except ValueError:
                    raise ConfigError(
                        f"bad arrival seed {value!r}"
                    ) from None
            else:
                raise ConfigError(
                    f"unknown arrival parameter {key!r}; "
                    "accepted: rate, clients, seed"
                )
        return cls(**fields)

    def text(self) -> str:
        """Round-trippable text form (``parse(text()) == self``)."""
        if self.mode == "closed":
            return "closed"
        out = f"poisson:rate={self.rate:g}"
        if self.clients:
            out += f":clients={self.clients}"
        if self.seed:
            out += f":seed={self.seed}"
        return out

    def make_rng(self) -> Random:
        """The deterministic inter-arrival stream for this spec."""
        return substream(self.seed, "arrivals")


# ----------------------------------------------------------------------
# Streaming latency summary
# ----------------------------------------------------------------------
class LatencyHistogram:
    """Sparse log-bucketed latency summary with clamped percentiles.

    Buckets grow geometrically by :data:`HIST_GROWTH` from
    :data:`HIST_BASE_S`; a recorded value lands in the bucket whose
    range covers it, and :meth:`percentile` answers with the
    nearest-rank bucket's geometric midpoint clamped to the observed
    ``[min_s, max_s]``.  Consequences, pinned by the estimator tests:

    * single-sample and all-equal inputs are answered **exactly**
      (the clamp collapses to the one observed value);
    * every other estimate is within :data:`HIST_REL_ERROR` (< 5%)
      relative error of the exact sorted-sample nearest-rank answer;
    * estimates are monotone non-decreasing in the rank, so
      ``p50 <= p95 <= p99 <= max_s`` always holds.
    """

    __slots__ = ("count", "sum_s", "min_s", "max_s", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.sum_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0
        self._buckets: dict[int, int] = {}

    def record(self, seconds: float) -> None:
        value = seconds if seconds > 0.0 else 0.0
        if value <= HIST_BASE_S:
            index = 0
        else:
            index = 1 + int(math.log(value / HIST_BASE_S) / _LOG_GROWTH)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.sum_s += value
        if value < self.min_s:
            self.min_s = value
        if value > self.max_s:
            self.max_s = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate in seconds (0.0 when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = min(self.count, max(1, math.ceil(q / 100.0 * self.count)))
        seen = 0
        index = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                break
        if index == 0:
            estimate = HIST_BASE_S
        else:
            estimate = HIST_BASE_S * HIST_GROWTH ** (index - 0.5)
        return min(max(estimate, self.min_s), self.max_s)

    @property
    def mean_s(self) -> float:
        return self.sum_s / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """The standard report: count, mean, p50/p95/p99, max."""
        return {
            "count": self.count,
            "mean_s": self.mean_s,
            "p50_s": self.percentile(50.0),
            "p95_s": self.percentile(95.0),
            "p99_s": self.percentile(99.0),
            "max_s": self.max_s if self.count else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.count:
            return "LatencyHistogram(empty)"
        return (f"LatencyHistogram(n={self.count}, "
                f"p50={self.percentile(50.0) * 1e3:.3f}ms, "
                f"p99={self.percentile(99.0) * 1e3:.3f}ms, "
                f"max={self.max_s * 1e3:.3f}ms)")


# ----------------------------------------------------------------------
# Requests and windows
# ----------------------------------------------------------------------
@dataclass(slots=True)
class EventRequest:
    """One simulated request and its lifecycle timestamps."""

    shard: int
    service_s: float
    enqueue_s: float
    seq: int
    dispatch_s: float = 0.0
    complete_s: float = 0.0
    #: Driver-initiated maintenance I/O riding the background lane.
    background: bool = False
    #: Tenant attribution tag (set via :meth:`EventScheduler.tagged`);
    #: stamped at submit time so deferred completions credit the tenant
    #: that issued the request, not whoever is active when it drains.
    tag: str | None = None

    @property
    def sojourn_s(self) -> float:
        return self.complete_s - self.enqueue_s


@dataclass(slots=True)
class EventWindow(SchedulerWindow):
    """A scheduler window that also collects latency histograms.

    ``latency`` holds foreground sojourns only; background-lane
    completions (checkpoint write-back, migration copies) land in
    ``background_latency`` so maintenance I/O never pollutes the
    foreground percentiles it is perturbing.
    """

    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    background_latency: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    #: Foreground sojourns split by tenant tag.  Tagged requests are
    #: recorded here *and* in ``latency``, so when every foreground
    #: request in the window carries a tag the per-tenant counts sum
    #: exactly to ``latency.count`` (the reconciliation invariant the
    #: scenario tests pin).
    tenant_latency: dict[str, LatencyHistogram] = field(
        default_factory=dict)


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------
class EventScheduler(ShardScheduler):
    """Event-driven drop-in for :class:`ShardScheduler`.

    Same interface (``record_round`` / ``record_stall`` / window
    stack / ``wall_time_s`` / ``lane_time_s``), so
    :class:`~repro.backends.sharded.ShardedStore` and
    :class:`~repro.backends.base.MeasurementWindows` drive it
    unchanged — plus per-request latency accounting (cumulative
    :attr:`latency` and per-window histograms) and the open-loop
    arrival machinery described in the module docstring.
    """

    #: Duck-typing flag for measurement plumbing (e.g. the read sweep
    #: issues per-object gets so each read is one queued request).
    is_event = True

    def __init__(self, nshards: int, *, parallelism: int = 0,
                 dispatch_overhead_s: float = 0.0, depth: int = 64,
                 arrival: "ArrivalSpec | str" = "closed") -> None:
        super().__init__(parallelism=parallelism,
                         dispatch_overhead_s=dispatch_overhead_s)
        if nshards < 1:
            raise ConfigError("EventScheduler needs nshards >= 1")
        if depth < 0:
            raise ConfigError("queue depth must be >= 0 (0 = unbounded)")
        if isinstance(arrival, str):
            arrival = ArrivalSpec.parse(arrival)
        self.nshards = nshards
        self.depth = depth
        self.arrival = arrival
        #: Cumulative sojourn histogram across the scheduler's lifetime.
        self.latency = LatencyHistogram()
        #: Lifetime foreground sojourns split by tenant tag.
        self.tenant_latency: dict[str, LatencyHistogram] = {}
        #: Active attribution tag (see :meth:`tagged`).
        self._tag: str | None = None
        self.submitted = 0
        self.completed = 0
        #: High-water mark of any shard FIFO's length.
        self.max_queue_depth = 0
        # Open-loop simulation state (absolute timeline, origin 0).
        self._rng = arrival.make_rng()
        self._seq = 0
        self._arrival_cursor = 0.0
        #: Timeline point already charged to ``wall_time_s``.
        self._charged = 0.0
        self._queues: list[deque[EventRequest]] = [
            deque() for _ in range(nshards)
        ]
        #: (complete_s, seq, request) min-heap of in-service requests.
        self._in_service: list[tuple[float, int, EventRequest]] = []
        self._busy_shards: set[int] = set()
        self._free_at = [0.0] * nshards
        #: Min-heap of the global workers' free times.  ``parallelism``
        #: caps concurrency on the *timeline*, not just the in-service
        #: count: a request admitted because a completion freed a
        #: worker starts no earlier than that worker's free time.
        cap = self.parallelism if self.parallelism > 0 else nshards
        self._worker_free = [0.0] * cap
        self._in_flight = 0

    # ------------------------------------------------------------------
    # ShardScheduler interface
    # ------------------------------------------------------------------
    def record_round(self, lane_times: Sequence[float],
                     indices: Sequence[int] | None = None, *,
                     background: bool = False) -> float:
        if indices is None:
            indices = range(len(lane_times))
        if self.arrival.mode == "closed":
            return self._record_closed_round(lane_times,
                                             background=background)
        return self._record_open_round(lane_times, indices, background)

    def record_stall(self, seconds: float) -> None:
        # The stall/arrival timeline contract (module docstring): the
        # charged frontier advances by the stall — completions already
        # scheduled inside it overlap and add no *extra* wall — and the
        # arrival cursor is pulled up to the new frontier, because the
        # submitting driver was asleep: nothing it submits afterwards
        # can arrive inside the stall window.
        if seconds <= 0.0:
            return
        self._advance_wall(seconds)
        if self._arrival_cursor < self._charged:
            self._arrival_cursor = self._charged

    @contextmanager
    def tagged(self, tag: str) -> Iterator[None]:
        """Attribute requests submitted inside the block to ``tag``.

        The tag is stamped onto each request at submit time and travels
        with it: a completion that drains later — under another
        tenant's block, in a drain, at window close — still lands in
        the submitting tenant's histogram.
        """
        prev = self._tag
        self._tag = tag
        try:
            yield
        finally:
            self._tag = prev

    def start_window(self, name: str) -> EventWindow:
        win = EventWindow(name=name)
        self._windows.append(win)
        return win

    def end_window(self, win: SchedulerWindow) -> SchedulerWindow:
        # A window's wall time and percentiles must include requests
        # still in flight when it closes, so drain first (while the
        # window is still on the stack and sees the charges).
        self.drain()
        return super().end_window(win)

    # ------------------------------------------------------------------
    # Closed mode: exact reduction to the round makespan
    # ------------------------------------------------------------------
    def _record_closed_round(self, lane_times: Sequence[float], *,
                             background: bool = False) -> float:
        """Simulate one round in round-local time with LPT placement.

        Replays :func:`~repro.disk.schedule.round_makespan`'s exact
        operation order — stable descending sort, then either the
        critical path, the left-to-right serial sum, or the greedy
        heap — so the accumulated wall time is **bit-identical** to
        the PR 5 model's, while each lane gains a completion timestamp
        (its sojourn: lanes all enqueue at round-local zero).
        """
        busy = [t for t in lane_times if t > 0.0]
        if not busy:
            return 0.0
        order = sorted(range(len(busy)), key=busy.__getitem__,
                       reverse=True)
        workers = self.parallelism if self.parallelism > 0 else len(busy)
        completions = [0.0] * len(busy)
        if workers >= len(busy):
            for i in order:
                completions[i] = busy[i]
            frontier = busy[order[0]]
        elif workers == 1:
            running = 0.0
            for i in order:
                running = running + busy[i]
                completions[i] = running
            frontier = running
        else:
            loads = [0.0] * workers
            heapq.heapify(loads)
            for i in order:
                load = heapq.heappop(loads) + busy[i]
                completions[i] = load
                heapq.heappush(loads, load)
            frontier = max(loads)
        wall = frontier + self.dispatch_overhead_s
        lane_total = sum(t for t in lane_times if t > 0.0)
        self.rounds += 1
        self.wall_time_s += wall
        self.lane_time_s += lane_total
        for win in self._windows:
            win.rounds += 1
            win.wall_time_s += wall
            win.lane_time_s += lane_total
        # Keep the absolute timeline coherent for mode switches.
        self._charged += wall
        self.submitted += len(busy)
        self.completed += len(busy)
        # Closed rounds are synchronous: the active tag at record time
        # is the tag of every lane in the round.
        for sojourn in completions:
            self._record_latency(sojourn, background=background,
                                 tag=self._tag)
        return wall

    # ------------------------------------------------------------------
    # Poisson mode: open-loop arrivals on a global timeline
    # ------------------------------------------------------------------
    def _record_open_round(self, lane_times: Sequence[float],
                           indices: Sequence[int],
                           background: bool = False) -> float:
        pairs = [(int(i) % self.nshards, t)
                 for i, t in zip(indices, lane_times) if t > 0.0]
        if not pairs:
            return 0.0
        before = self.wall_time_s
        lane_total = sum(t for t in lane_times if t > 0.0)
        self.rounds += 1
        self.lane_time_s += lane_total
        for win in self._windows:
            win.rounds += 1
            win.lane_time_s += lane_total
        if self.dispatch_overhead_s > 0.0:
            # Host-side fan-out cost is serial wall time per round.
            self._advance_wall(self.dispatch_overhead_s)
        for shard, service in pairs:
            self._submit(shard, service, background=background)
        return self.wall_time_s - before

    def _submit(self, shard: int, service_s: float, *,
                background: bool = False) -> None:
        # Background-lane requests are driver-initiated bursts: they
        # enqueue back-to-back at the current cursor without drawing
        # (or consuming) open-loop inter-arrival gaps, so a checkpoint
        # or migration burst can genuinely saturate a shard queue and
        # only its duty-cycle stalls spread it out.
        if not background:
            self._arrival_cursor += self._rng.expovariate(
                self.arrival.rate)
        enqueue_s = self._arrival_cursor
        # A closed client set blocks the submitter until one frees...
        if self.arrival.clients > 0:
            while self._in_flight >= self.arrival.clients:
                self._complete_one()
        # ...and so does a full shard FIFO.  Always makes progress: a
        # non-empty queue implies in-service work somewhere.
        if self.depth > 0:
            while len(self._queues[shard]) >= self.depth:
                self._complete_one()
        # Catch the simulation up to the arrival instant.
        while self._in_service and self._in_service[0][0] <= enqueue_s:
            self._complete_one()
        req = EventRequest(shard=shard, service_s=service_s,
                           enqueue_s=enqueue_s, seq=self._seq,
                           background=background, tag=self._tag)
        self._seq += 1
        self._queues[shard].append(req)
        self._in_flight += 1
        self.submitted += 1
        depth_now = len(self._queues[shard])
        if depth_now > self.max_queue_depth:
            self.max_queue_depth = depth_now
        self._dispatch_ready()

    def _dispatch_ready(self) -> None:
        """Start queued requests while a worker and their shard are idle.

        One request in service per shard; at most ``parallelism``
        (0 = nshards) in service overall; oldest enqueued request
        first across the idle shards.  Dispatch waits for the earliest
        free *worker* as well as the shard: completions are processed
        in completion order, so the minimum of the worker clocks is
        always a worker that has genuinely freed, and a request that
        queued behind the global cap starts when that worker did —
        not back-dated to its enqueue time.
        """
        cap = len(self._worker_free)
        while len(self._in_service) < cap:
            head: EventRequest | None = None
            for s, queue in enumerate(self._queues):
                if queue and s not in self._busy_shards:
                    candidate = queue[0]
                    if head is None or candidate.seq < head.seq:
                        head = candidate
            if head is None:
                return
            self._queues[head.shard].popleft()
            worker_free_s = heapq.heappop(self._worker_free)
            head.dispatch_s = max(head.enqueue_s,
                                  self._free_at[head.shard],
                                  worker_free_s)
            head.complete_s = head.dispatch_s + head.service_s
            heapq.heappush(self._worker_free, head.complete_s)
            self._busy_shards.add(head.shard)
            heapq.heappush(self._in_service,
                           (head.complete_s, head.seq, head))

    def _complete_one(self) -> None:
        complete_s, _, req = heapq.heappop(self._in_service)
        self._busy_shards.discard(req.shard)
        self._free_at[req.shard] = complete_s
        self._in_flight -= 1
        self.completed += 1
        self._record_latency(complete_s - req.enqueue_s,
                             background=req.background, tag=req.tag)
        if complete_s > self._charged:
            self._charge_wall(complete_s - self._charged)
        self._dispatch_ready()

    def drain(self) -> None:
        """Run every in-flight request to completion (charges wall)."""
        while self._in_service:
            self._complete_one()

    def set_arrival(self, arrival: "ArrivalSpec | str") -> None:
        """Switch the arrival process (drains in-flight work first).

        The new process starts a fresh inter-arrival stream at the
        current charged frontier, so benches can load in closed mode
        and sweep in poisson mode on one store.
        """
        if isinstance(arrival, str):
            arrival = ArrivalSpec.parse(arrival)
        self.drain()
        self.arrival = arrival
        self._rng = arrival.make_rng()
        self._arrival_cursor = self._charged

    # ------------------------------------------------------------------
    # Shared accounting
    # ------------------------------------------------------------------
    def _charge_wall(self, seconds: float) -> None:
        self.wall_time_s += seconds
        for win in self._windows:
            win.wall_time_s += seconds
        self._charged += seconds

    def _advance_wall(self, seconds: float) -> None:
        """Charge serial wall time (stall/overhead) and move the
        frontier with it."""
        self._charge_wall(seconds)

    def _record_latency(self, sojourn_s: float, *,
                        background: bool = False,
                        tag: str | None = None) -> None:
        # The lifetime histogram keeps every completion so the books
        # (submitted == completed == latency.count) stay balanced;
        # windows split by lane so foreground percentiles stay pure.
        self.latency.record(sojourn_s)
        attr = "background_latency" if background else "latency"
        if tag is not None and not background:
            hist = self.tenant_latency.get(tag)
            if hist is None:
                hist = self.tenant_latency[tag] = LatencyHistogram()
            hist.record(sojourn_s)
        for win in self._windows:
            lat = getattr(win, attr, None)
            if lat is not None:
                lat.record(sojourn_s)
            if tag is not None and not background:
                tenants = getattr(win, "tenant_latency", None)
                if tenants is not None:
                    whist = tenants.get(tag)
                    if whist is None:
                        whist = tenants[tag] = LatencyHistogram()
                    whist.record(sojourn_s)

    @property
    def queued(self) -> int:
        """Requests enqueued but not yet dispatched, right now."""
        return sum(len(q) for q in self._queues)

    @property
    def in_flight(self) -> int:
        """Requests submitted but not yet completed, right now."""
        return self._in_flight
