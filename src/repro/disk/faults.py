"""Declarative device fault injection.

The paper's aging runs assume devices never fail; at the fleet scale the
ROADMAP targets, they do.  This module turns the test-only crash device
that grew up in ``tests/crashsim.py`` into a supported runtime
primitive: a :class:`FaultProfile` parsed from spec text, applied to a
:class:`~repro.disk.device.BlockDevice` as a :class:`FaultyBlockDevice`
that injects three fault kinds plus the crash-clock semantics the
recovery matrices already rely on.

Fault spec grammar
------------------
A profile is a ``;``-separated list of clauses; each clause is a fault
kind followed by ``key=value`` parameters separated by ``:`` or ``,``
(both accepted, so the same text works inside a ``--store`` spec — whose
options split on commas — and as a standalone ``--faults`` argument)::

    transient:rate=1e-4;slow:shard=2,factor=8;loss:shard=1,at_age=3

* ``transient`` — each submitted batch independently fails with
  probability ``rate``, raising :class:`~repro.errors.TransientIoError`
  before any time is charged or content applied (the failure happens up
  front; retry cost is charged by whoever retries).  Optional
  ``ops=read|write|all`` scopes injection, ``shard=N`` restricts it to
  one shard of a composite, and ``seed=N`` picks the injection stream.
* ``slow`` — every service time on the device is multiplied by
  ``factor`` (a degraded spindle), visible in
  :class:`~repro.disk.iostats.IoStats` and the device clock.  Optional
  ``shard=N`` scope.
* ``loss`` — shard ``shard=N`` dies permanently, either immediately
  (no ``at_age``) or when the experiment reaches ``at_age=A``; the
  device raises :class:`~repro.errors.ShardLostError` on every
  subsequent I/O.  Loss clauses are resolved by the
  :class:`~repro.backends.sharded.ShardedStore` composite, never by a
  single device.

Injection is deterministic: transient draws come from a
:func:`repro.rng.substream` keyed by the clause seed, and
:meth:`FaultProfile.for_shard` re-keys the stream per shard so shards
fail independently but reproducibly.

Crash semantics (:class:`CrashClock`, ``torn=``) are unchanged from the
PR 4 harness: the clock counts write events across every device of one
system and raises :class:`~repro.errors.CrashPoint` on the armed event,
optionally after applying half of the doomed write's first extent.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, replace

from repro.disk.device import BlockDevice, IoRequest
from repro.disk.geometry import DiskGeometry
from repro.errors import (ConfigError, CrashPoint, ShardLostError,
                          TransientIoError)
from repro.rng import substream

__all__ = [
    "CrashClock",
    "DeviceFaults",
    "FaultClause",
    "FaultProfile",
    "FaultyBlockDevice",
]

#: Recognised fault kinds, in canonical rendering order.
FAULT_KINDS = ("transient", "slow", "loss")

#: Operation scopes a ``transient`` clause may target.
TRANSIENT_OPS = ("read", "write", "all")

_PARAM_SPLIT = re.compile(r"[,:]")


def _derive_seed(seed: int, label: str) -> int:
    """Stable integer sub-seed (the :func:`repro.rng.substream` recipe)."""
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Crash clock (promoted from tests/crashsim.py)
# ----------------------------------------------------------------------
class CrashClock:
    """Countdown shared by every faulty device of one system.

    ``kill_after=None`` never fires (used for the fault-free baseline
    that measures a workload's write-event count); ``kill_after=k``
    fires on the ``k``-th write event (0-based), once.
    """

    def __init__(self, kill_after: int | None = None) -> None:
        self.kill_after = kill_after
        self.events = 0
        self.fired = False

    def tick(self, label: str = "") -> None:
        """Count one write event; raise :class:`CrashPoint` when armed."""
        if (self.kill_after is not None and not self.fired
                and self.events >= self.kill_after):
            self.fired = True
            raise CrashPoint(
                f"injected crash at write event {self.events}"
                + (f" ({label})" if label else "")
            )
        self.events += 1

    def hook(self, label: str) -> None:
        """Adapter matching the ``crash_hook(label)`` signature."""
        self.tick(label)


# ----------------------------------------------------------------------
# Profile: parsed clauses
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class FaultClause:
    """One parsed clause of a fault profile."""

    kind: str                    # one of FAULT_KINDS
    shard: int | None = None     # None = applies to every shard/device
    rate: float = 0.0            # transient: per-batch failure probability
    ops: str = "all"             # transient: operation scope
    factor: float = 1.0          # slow: service-time multiplier
    at_age: float | None = None  # loss: trigger age (None = immediate)
    seed: int = 0                # transient: injection stream seed

    def text(self) -> str:
        """Canonical clause text (colon separators, re-parseable)."""
        parts = [self.kind]
        if self.shard is not None:
            parts.append(f"shard={self.shard}")
        if self.kind == "transient":
            parts.append(f"rate={self.rate!r}")
            if self.ops != "all":
                parts.append(f"ops={self.ops}")
            if self.seed:
                parts.append(f"seed={self.seed}")
        elif self.kind == "slow":
            parts.append(f"factor={self.factor!r}")
        elif self.kind == "loss":
            if self.at_age is not None:
                parts.append(f"at_age={self.at_age!r}")
        return ":".join(parts)


def _parse_clause(text: str) -> FaultClause:
    tokens = [t for t in _PARAM_SPLIT.split(text.strip()) if t]
    if not tokens:
        raise ConfigError("empty fault clause")
    kind = tokens[0].strip()
    if kind not in FAULT_KINDS:
        raise ConfigError(
            f"unknown fault kind {kind!r} (expected one of {FAULT_KINDS})")
    params: dict[str, str] = {}
    for token in tokens[1:]:
        key, sep, value = token.partition("=")
        if not sep or not value:
            raise ConfigError(f"fault parameter {token!r} is not key=value")
        params[key.strip()] = value.strip()

    def pop_int(name: str) -> int | None:
        raw = params.pop(name, None)
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError as exc:
            raise ConfigError(f"fault {kind}: bad {name}={raw!r}") from exc

    def pop_float(name: str) -> float | None:
        raw = params.pop(name, None)
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError as exc:
            raise ConfigError(f"fault {kind}: bad {name}={raw!r}") from exc

    shard = pop_int("shard")
    if kind == "transient":
        rate = pop_float("rate")
        if rate is None:
            raise ConfigError("fault transient: rate= is required")
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(f"fault transient: rate {rate} not in [0, 1]")
        ops = params.pop("ops", "all")
        if ops not in TRANSIENT_OPS:
            raise ConfigError(
                f"fault transient: ops {ops!r} not in {TRANSIENT_OPS}")
        seed = pop_int("seed") or 0
        clause = FaultClause("transient", shard=shard, rate=rate, ops=ops,
                             seed=seed)
    elif kind == "slow":
        factor = pop_float("factor")
        if factor is None:
            raise ConfigError("fault slow: factor= is required")
        if factor <= 0.0:
            raise ConfigError(f"fault slow: factor {factor} must be > 0")
        clause = FaultClause("slow", shard=shard, factor=factor)
    else:  # loss
        if shard is None:
            raise ConfigError("fault loss: shard= is required")
        clause = FaultClause("loss", shard=shard, at_age=pop_float("at_age"))
    if params:
        raise ConfigError(
            f"fault {kind}: unknown parameters {sorted(params)}")
    return clause


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """An ordered set of fault clauses parsed from spec text."""

    clauses: tuple[FaultClause, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultProfile":
        """Parse profile text (see the module docstring for the grammar)."""
        clauses = tuple(_parse_clause(part)
                        for part in text.split(";") if part.strip())
        if not clauses:
            raise ConfigError(f"fault profile {text!r} has no clauses")
        return cls(clauses)

    def text(self) -> str:
        """Canonical profile text; ``parse(text())`` round-trips."""
        return ";".join(clause.text() for clause in self.clauses)

    @property
    def losses(self) -> tuple[FaultClause, ...]:
        return tuple(c for c in self.clauses if c.kind == "loss")

    def max_shard(self) -> int | None:
        """Largest shard index referenced, or None if none is."""
        scoped = [c.shard for c in self.clauses if c.shard is not None]
        return max(scoped) if scoped else None

    def for_shard(self, index: int) -> "FaultProfile":
        """Device-level clauses as seen by shard ``index``.

        Keeps ``transient``/``slow`` clauses that target this shard (or
        every shard), strips the ``shard=`` scope, and re-keys each
        transient seed per shard so sibling shards draw independent —
        but reproducible — injection streams.  ``loss`` clauses stay at
        the composite level and are dropped here.
        """
        kept = []
        for clause in self.clauses:
            if clause.kind == "loss":
                continue
            if clause.shard is not None and clause.shard != index:
                continue
            clause = replace(clause, shard=None)
            if clause.kind == "transient":
                clause = replace(
                    clause, seed=_derive_seed(clause.seed, f"shard{index}"))
            kept.append(clause)
        return FaultProfile(tuple(kept))

    def device_faults(self) -> "DeviceFaults | None":
        """Resolve unscoped device clauses into a runtime injector.

        Shard-scoped clauses are ignored (resolve them first with
        :meth:`for_shard`); returns ``None`` when nothing applies, so
        callers can keep using a plain :class:`BlockDevice`.
        """
        rate, ops, seed, factor = 0.0, "all", 0, 1.0
        for clause in self.clauses:
            if clause.shard is not None or clause.kind == "loss":
                continue
            if clause.kind == "transient":
                rate, ops, seed = clause.rate, clause.ops, clause.seed
            else:  # slow factors compose multiplicatively
                factor *= clause.factor
        if rate == 0.0 and factor == 1.0:
            return None
        return DeviceFaults(transient_rate=rate, transient_ops=ops,
                            slow_factor=factor, seed=seed)


# ----------------------------------------------------------------------
# Runtime injector state for one device
# ----------------------------------------------------------------------
class DeviceFaults:
    """Resolved, per-device fault state with its own injection stream."""

    def __init__(self, *, transient_rate: float = 0.0,
                 transient_ops: str = "all", slow_factor: float = 1.0,
                 seed: int = 0) -> None:
        if not 0.0 <= transient_rate <= 1.0:
            raise ConfigError(f"transient rate {transient_rate} not in [0, 1]")
        if transient_ops not in TRANSIENT_OPS:
            raise ConfigError(f"transient ops {transient_ops!r} unknown")
        if slow_factor <= 0.0:
            raise ConfigError(f"slow factor {slow_factor} must be > 0")
        self.transient_rate = transient_rate
        self.transient_ops = transient_ops
        self.slow_factor = slow_factor
        self._rng = substream(seed, "transient-faults")

    def fires_on(self, is_write: bool) -> bool:
        """Draw once: does this batch fail transiently?"""
        if self.transient_rate <= 0.0:
            return False
        if self.transient_ops == "read" and is_write:
            return False
        if self.transient_ops == "write" and not is_write:
            return False
        return self._rng.random() < self.transient_rate


# ----------------------------------------------------------------------
# The faulty device
# ----------------------------------------------------------------------
class FaultyBlockDevice(BlockDevice):
    """A block device with crash, transient, latency, and loss faults.

    Crash semantics (the PR 4 recovery-matrix contract): reads never
    crash (a dying read loses nothing); every write-bearing ``submit``
    and every ``flush`` ticks the shared :class:`CrashClock` first.
    With ``torn=True`` the doomed write additionally applies the first
    half of its first extent's content (untimed, like a partial transfer
    cut by power loss) before raising — so content-checked recovery sees
    a genuinely torn state, not just a missing one.

    Runtime faults (``faults=``, a :class:`DeviceFaults`): transient
    errors fail a batch up front — no time charged, no content applied —
    so a retried operation pays exactly one successful service; slow
    factors scale every modelled service time, including flush.  After
    :meth:`mark_lost`, every timed operation raises
    :class:`~repro.errors.ShardLostError`; untimed inspection
    (``peek``/``poke``) still works, because recovery tooling may
    examine a dead device's platters.
    """

    def __init__(self, geometry: DiskGeometry, *,
                 clock: CrashClock | None = None,
                 torn: bool = False,
                 faults: DeviceFaults | None = None, **kwargs) -> None:
        super().__init__(geometry, **kwargs)
        self.clock = clock if clock is not None else CrashClock()
        self.torn = torn
        self.faults = faults
        self._lost = False

    # -- crash clock ---------------------------------------------------
    @property
    def write_events(self) -> int:
        return self.clock.events

    def _tick(self, label: str, batch: list[IoRequest]) -> None:
        try:
            self.clock.tick(label)
        except CrashPoint:
            if self.torn and self.stores_data:
                self._tear(batch)
            raise

    def _tear(self, batch: list[IoRequest]) -> None:
        for req in batch:
            if req.is_write and req.data is not None and req.extents:
                ext = req.extents[0]
                half = ext.length // 2
                if half:
                    self.poke(ext.start, req.data[:half])
                return

    # -- loss ----------------------------------------------------------
    @property
    def lost(self) -> bool:
        return self._lost

    def mark_lost(self) -> None:
        """Permanently fail the device; all further timed I/O raises."""
        self._lost = True

    def _check_lost(self) -> None:
        if self._lost:
            raise ShardLostError("device is permanently lost")

    # -- cost model ----------------------------------------------------
    def _cost_of(self, extents, head):
        seeks, total, head = super()._cost_of(extents, head)
        faults = self.faults
        if faults is not None and faults.slow_factor != 1.0:
            total *= faults.slow_factor
        return seeks, total, head

    # -- timed I/O -----------------------------------------------------
    def submit(self, batch: list[IoRequest], *,
               reorder: bool | None = None) -> list[bytes | None]:
        if not batch:
            return []
        self._check_lost()
        is_write = any(req.is_write for req in batch)
        if is_write:
            self._tick("write", batch)
        faults = self.faults
        if faults is not None and faults.fires_on(is_write):
            raise TransientIoError(
                "injected transient "
                + ("write" if is_write else "read") + " error")
        return super().submit(batch, reorder=reorder)

    def flush(self) -> None:
        self._check_lost()
        self._tick("flush", [])
        faults = self.faults
        if faults is None or faults.slow_factor == 1.0:
            return super().flush()
        service = self.geometry.rotation_s * faults.slow_factor
        self.stats.record(is_write=True, nbytes=0, service_s=service, seeks=0)
        self.clock_s += service
