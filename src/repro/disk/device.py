"""Simulated block device with a mechanical service-time model.

:class:`BlockDevice` is the single substrate both storage systems sit on.
It tracks the head position, charges seek + rotational latency for every
discontiguous extent touched and media transfer time for every byte, and
accumulates everything in an :class:`~repro.disk.iostats.IoStats`.

Content storage is optional.  Fragmentation experiments only need timing
and layout, so by default the device stores nothing and ``read`` returns
``None``.  With ``store_data=True`` the device keeps a sparse segment map
of written bytes, which the marker-based fragmentation analyzer and the
crash/atomicity tests use to verify byte-exact behaviour.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.disk.geometry import DiskGeometry
from repro.disk.iostats import IoStats
from repro.errors import ConfigError
from repro.alloc.extent import Extent


class _SegmentStore:
    """Sparse byte store: non-overlapping (start, bytes) segments.

    Kept simple (list + bisect) because content storage is only enabled at
    test scale.  Unwritten ranges read back as zeros, like a fresh disk.
    """

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._data: list[bytes] = []

    def write(self, offset: int, data: bytes) -> None:
        if not data:
            return
        end = offset + len(data)
        # Find all segments overlapping [offset, end) and carve them.
        idx = bisect.bisect_right(self._starts, offset) - 1
        if idx >= 0:
            seg_start = self._starts[idx]
            seg = self._data[idx]
            if seg_start + len(seg) > offset:
                # Left neighbour overlaps: keep its prefix.
                keep = seg[: offset - seg_start]
                tail = seg[offset - seg_start:]
                if keep:
                    self._data[idx] = keep
                    idx += 1
                else:
                    del self._starts[idx]
                    del self._data[idx]
                if seg_start + len(seg) > end:
                    # Segment extends past the write: keep its suffix.
                    suffix = tail[end - offset:]
                    self._starts.insert(idx, end)
                    self._data.insert(idx, suffix)
            else:
                idx += 1
        else:
            idx = 0
        # Remove fully/partially covered segments to the right.
        while idx < len(self._starts) and self._starts[idx] < end:
            seg_start = self._starts[idx]
            seg = self._data[idx]
            if seg_start + len(seg) <= end:
                del self._starts[idx]
                del self._data[idx]
            else:
                suffix = seg[end - seg_start:]
                self._starts[idx] = end
                self._data[idx] = suffix
                break
        insert_at = bisect.bisect_left(self._starts, offset)
        self._starts.insert(insert_at, offset)
        self._data.insert(insert_at, bytes(data))

    def read(self, offset: int, length: int) -> bytes:
        out = bytearray(length)
        end = offset + length
        idx = bisect.bisect_right(self._starts, offset) - 1
        if idx < 0:
            idx = 0
        while idx < len(self._starts) and self._starts[idx] < end:
            seg_start = self._starts[idx]
            seg = self._data[idx]
            seg_end = seg_start + len(seg)
            lo = max(seg_start, offset)
            hi = min(seg_end, end)
            if hi > lo:
                out[lo - offset: hi - offset] = seg[lo - seg_start: hi - seg_start]
            idx += 1
        return bytes(out)


@dataclass(slots=True)
class _RequestCost:
    seeks: int
    service_s: float


class BlockDevice:
    """A single simulated drive.

    Parameters
    ----------
    geometry:
        Mechanical and zoning parameters (see :class:`DiskGeometry`).
    store_data:
        Keep written bytes in memory for later reads.  Off by default;
        fragmentation benches only need timing.
    sequential_window:
        A new request starting within this many bytes after the previous
        request's end is treated as sequential (no seek, no rotational
        delay) — drives coalesce near-sequential access via track
        buffering.
    """

    def __init__(self, geometry: DiskGeometry, *, store_data: bool = False,
                 sequential_window: int = 64 * 1024) -> None:
        self.geometry = geometry
        self.stats = IoStats()
        self._store = _SegmentStore() if store_data else None
        self._head = 0
        self._sequential_window = sequential_window
        self.clock_s = 0.0

    # ------------------------------------------------------------------
    # Service-time model
    # ------------------------------------------------------------------
    def _cost_of(self, extents: list[Extent]) -> _RequestCost:
        # Hot path: large requests arrive as many-extent lists, so the
        # per-extent loop accumulates into locals and binds the geometry
        # callables once, touching self only at entry and exit.
        geometry = self.geometry
        transfer_time = geometry.transfer_time
        seek_time = geometry.seek_time
        rotational_s = geometry.avg_rotational_latency_s
        window = self._sequential_window
        seeks = 0
        total = geometry.per_request_overhead_s
        head = self._head
        for ext in extents:
            start = ext.start
            gap = start - head
            if 0 <= gap <= window:
                # Sequential continuation: pay only any skipped media time.
                if gap:
                    total += transfer_time(head, gap)
            else:
                seeks += 1
                total += seek_time(head, start) + rotational_s
            length = ext.length
            total += transfer_time(start, length)
            head = start + length
        return _RequestCost(seeks=seeks, service_s=total)

    def _validate(self, extents: list[Extent]) -> None:
        for ext in extents:
            if ext.start < 0 or ext.end > self.geometry.capacity:
                raise ConfigError(
                    f"extent {ext} outside volume of "
                    f"{self.geometry.capacity} bytes"
                )

    # ------------------------------------------------------------------
    # Timed I/O
    # ------------------------------------------------------------------
    def read_extents(self, extents: list[Extent]) -> bytes | None:
        """Read a list of extents as one request; returns data if stored."""
        self._validate(extents)
        cost = self._cost_of(extents)
        nbytes = sum(e.length for e in extents)
        self.stats.record(is_write=False, nbytes=nbytes,
                          service_s=cost.service_s, seeks=cost.seeks)
        self.clock_s += cost.service_s
        if extents:
            self._head = extents[-1].end
        if self._store is None:
            return None
        return b"".join(self._store.read(e.start, e.length) for e in extents)

    def write_extents(self, extents: list[Extent],
                      data: bytes | None = None) -> None:
        """Write a list of extents as one request.

        ``data`` (when content storage is on) must cover the extents in
        order; pass ``None`` to write timing-only.
        """
        self._validate(extents)
        cost = self._cost_of(extents)
        nbytes = sum(e.length for e in extents)
        self.stats.record(is_write=True, nbytes=nbytes,
                          service_s=cost.service_s, seeks=cost.seeks)
        self.clock_s += cost.service_s
        if extents:
            self._head = extents[-1].end
        if self._store is not None and data is not None:
            if len(data) != nbytes:
                raise ConfigError(
                    f"data length {len(data)} != extent bytes {nbytes}"
                )
            cursor = 0
            for ext in extents:
                self._store.write(ext.start, data[cursor: cursor + ext.length])
                cursor += ext.length

    def read(self, offset: int, length: int) -> bytes | None:
        """Timed single-extent read."""
        return self.read_extents([Extent(offset, length)])

    def write(self, offset: int, length: int,
              data: bytes | None = None) -> None:
        """Timed single-extent write."""
        self.write_extents([Extent(offset, length)], data)

    def flush(self) -> None:
        """Force outstanding writes; modelled as one rotation of latency.

        Safe writes and commit records force the platter; charging a
        rotation approximates the cache-flush cost of the era's drives.
        """
        service = self.geometry.rotation_s
        self.stats.record(is_write=True, nbytes=0, service_s=service, seeks=0)
        self.clock_s += service

    # ------------------------------------------------------------------
    # Untimed inspection (used by analyzers and tests, never by benches)
    # ------------------------------------------------------------------
    @property
    def stores_data(self) -> bool:
        return self._store is not None

    def peek(self, offset: int, length: int) -> bytes:
        """Read stored content without charging any service time."""
        if self._store is None:
            raise ConfigError("device was created with store_data=False")
        return self._store.read(offset, length)

    def poke(self, offset: int, data: bytes) -> None:
        """Write stored content without charging any service time."""
        if self._store is None:
            raise ConfigError("device was created with store_data=False")
        self._store.write(offset, data)

    @property
    def head_position(self) -> int:
        return self._head
