"""Simulated block device with a mechanical service-time model.

:class:`BlockDevice` is the single substrate both storage systems sit on.
It tracks the head position, charges seek + rotational latency for every
discontiguous extent touched and media transfer time for every byte, and
accumulates everything in an :class:`~repro.disk.iostats.IoStats`.

Submission paths
----------------
All timed I/O funnels through :meth:`BlockDevice.submit`, which takes a
batch of :class:`IoRequest` scatter/gather requests, charges the cost
model for the whole batch with the head position chaining request to
request, and records **one** :class:`IoStats` entry per batch.
:meth:`read_extents` / :meth:`write_extents` are single-request batches;
the backends' bulk paths (LFS/GFS appends) submit many requests per
call to cut host-side accounting overhead on bulk loads.  With
``reorder=True`` the batch is served in elevator (C-LOOK) order —
ascending starts from the current head, wrapping once — which models
request-scheduling effects; modelled cost with ``reorder=False`` is
exactly identical to submitting the requests one call at a time.
Content effects (stored bytes, read results) always apply in
*submission* order regardless of reordering: the elevator changes the
timing model, never the semantics.

Content storage
---------------
Content storage is optional.  Fragmentation experiments only need timing
and layout, so by default the device stores nothing and ``read`` returns
``None``.  With ``store_data=True`` the device keeps a sparse segment map
of written bytes (:class:`_SegmentStore`), which the marker-based
fragmentation analyzer and the crash/atomicity tests use to verify
byte-exact behaviour.

The segment store's invariants: segments are non-empty, non-adjacent-
overlapping byte runs keyed by start offset; a write carves away every
overlapped part of existing segments before inserting, so no byte is
ever covered twice; unwritten ranges read back as zeros, like a fresh
disk.  The store is built on the shared
:class:`~repro.struct.blockedlist.BlockedList` primitive, making
``write``/``trim`` O(log n + load + k) for k displaced segments and
``read`` O(log n + segments touched) — at paper scale (10^5+ segments
during content-checked aging runs) this replaces the seed's flat list,
whose O(n) memmove per write made content-checked runs test-scale only.
That flat implementation is preserved as :class:`_FlatSegmentStore` for
byte-parity property tests (``tests/test_disk_batch.py``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.disk.geometry import DiskGeometry
from repro.disk.iostats import IoStats
from repro.disk.policy import DEFAULT_POLICY, DevicePolicy
from repro.errors import ConfigError
from repro.alloc.extent import Extent
from repro.struct.blockedlist import BlockedList


class _SegmentStore:
    """Sparse byte store: non-overlapping ``(start, bytes)`` segments.

    A :class:`BlockedList` orders the segment starts; a dict holds the
    payloads.  Mutations carve overlapping neighbours first (keeping
    any uncovered prefix/suffix), so the non-overlap invariant holds
    after every call.
    """

    def __init__(self) -> None:
        self._index = BlockedList()
        self._data: dict[int, bytes] = {}

    def __len__(self) -> int:
        return len(self._index)

    def write(self, offset: int, data: bytes) -> None:
        """Store ``data`` at ``offset``, replacing whatever it overlaps."""
        if not data:
            return
        payloads = self._data
        # Fast path: replacing a segment with one of identical extent
        # (safe-write churn rewrites objects in place) touches only the
        # payload dict — no index mutation at all.
        seg = payloads.get(offset)
        if seg is not None and len(seg) == len(data):
            payloads[offset] = bytes(data)
            return
        # A write is a trim (carve away everything it overlaps) plus an
        # insert of the new segment into the hole.
        self.trim(offset, len(data))
        self._index.insert(offset)
        payloads[offset] = bytes(data)

    def trim(self, offset: int, length: int) -> None:
        """Discard stored bytes in ``[offset, offset + length)``.

        Trimmed ranges read back as zeros again, like TRIM/UNMAP on a
        thin-provisioned device.
        """
        if length <= 0:
            return
        end = offset + length
        index = self._index
        payloads = self._data
        # Left neighbour (strictly earlier start) may straddle offset.
        pred = index.pred_lt(offset)
        if pred is not None:
            seg = payloads[pred]
            pred_end = pred + len(seg)
            if pred_end > offset:
                payloads[pred] = seg[: offset - pred]
                if pred_end > end:
                    # Straddles the whole range: keep the suffix too.
                    # Nothing else can overlap [offset, end).
                    index.insert(end)
                    payloads[end] = seg[end - pred:]
                    return
        # Segments starting inside [offset, end) are (partially) covered.
        doomed: list[int] = []
        overhang: bytes | None = None
        for start in index.iter_from(offset):
            if start >= end:
                break
            doomed.append(start)
            seg = payloads[start]
            if start + len(seg) > end:
                overhang = seg[end - start:]
        for start in doomed:
            index.remove(start)
            del payloads[start]
        if overhang:
            index.insert(end)
            payloads[end] = overhang

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes; unwritten ranges come back as zeros."""
        payloads = self._data
        # Fast path: reading back exactly what was written — a segment
        # starting at ``offset`` that covers the whole range (nothing
        # else can overlap it, segments are disjoint).
        seg = payloads.get(offset)
        if seg is not None and len(seg) >= length:
            return seg if len(seg) == length else seg[:length]
        out = bytearray(length)
        end = offset + length
        index = self._index
        pred = index.pred_lt(offset)
        if pred is not None:
            seg = payloads[pred]
            pred_end = pred + len(seg)
            if pred_end > offset:
                hi = min(pred_end, end)
                out[: hi - offset] = seg[offset - pred: hi - pred]
        for start in index.iter_from(offset):
            if start >= end:
                break
            seg = payloads[start]
            hi = min(start + len(seg), end)
            out[start - offset: hi - offset] = seg[: hi - start]
        return bytes(out)


class _FlatSegmentStore:
    """The seed's flat-list segment store, kept as the parity model.

    Semantically identical to :class:`_SegmentStore` but pays an O(n)
    list memmove per mutation; property tests drive both with the same
    write/trim/read sequences and assert byte-identical results, and
    ``bench_scale_volume.py --segments`` measures the gap.
    """

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._data: list[bytes] = []

    def __len__(self) -> int:
        return len(self._starts)

    def write(self, offset: int, data: bytes) -> None:
        if not data:
            return
        self.trim(offset, len(data))
        insert_at = bisect.bisect_left(self._starts, offset)
        self._starts.insert(insert_at, offset)
        self._data.insert(insert_at, bytes(data))

    def trim(self, offset: int, length: int) -> None:
        if length <= 0:
            return
        end = offset + length
        # Carve the left neighbour if it overlaps [offset, end).
        idx = bisect.bisect_right(self._starts, offset) - 1
        if idx >= 0:
            seg_start = self._starts[idx]
            seg = self._data[idx]
            if seg_start + len(seg) > offset:
                keep = seg[: offset - seg_start]
                if keep:
                    self._data[idx] = keep
                    idx += 1
                else:
                    del self._starts[idx]
                    del self._data[idx]
                if seg_start + len(seg) > end:
                    # Straddles the whole range: keep the suffix too.
                    suffix = seg[end - seg_start:]
                    self._starts.insert(idx, end)
                    self._data.insert(idx, suffix)
                    return
            else:
                idx += 1
        else:
            idx = 0
        # Remove fully/partially covered segments to the right.
        while idx < len(self._starts) and self._starts[idx] < end:
            seg_start = self._starts[idx]
            seg = self._data[idx]
            if seg_start + len(seg) <= end:
                del self._starts[idx]
                del self._data[idx]
            else:
                self._data[idx] = seg[end - seg_start:]
                self._starts[idx] = end
                break

    def read(self, offset: int, length: int) -> bytes:
        out = bytearray(length)
        end = offset + length
        idx = bisect.bisect_right(self._starts, offset) - 1
        if idx < 0:
            idx = 0
        while idx < len(self._starts) and self._starts[idx] < end:
            seg_start = self._starts[idx]
            seg = self._data[idx]
            seg_end = seg_start + len(seg)
            lo = max(seg_start, offset)
            hi = min(seg_end, end)
            if hi > lo:
                out[lo - offset: hi - offset] = seg[lo - seg_start: hi - seg_start]
            idx += 1
        return bytes(out)


@dataclass(slots=True)
class IoRequest:
    """One scatter/gather request inside a :meth:`BlockDevice.submit` batch.

    ``extents`` are served in order within the request (the head chains
    through them); ``data``, when content storage is on, must cover the
    extents in logical order.
    """

    is_write: bool
    extents: list[Extent]
    data: bytes | None = None

    @classmethod
    def read(cls, extents: list[Extent]) -> "IoRequest":
        return cls(is_write=False, extents=extents)

    @classmethod
    def write(cls, extents: list[Extent],
              data: bytes | None = None) -> "IoRequest":
        return cls(is_write=True, extents=extents, data=data)


class BlockDevice:
    """A single simulated drive.

    Parameters
    ----------
    geometry:
        Mechanical and zoning parameters (see :class:`DiskGeometry`).
    store_data:
        Keep written bytes in memory for later reads.  Off by default;
        fragmentation benches only need timing.
    sequential_window:
        A new request starting within this many bytes after the previous
        request's end is treated as sequential (no seek, no rotational
        delay) — drives coalesce near-sequential access via track
        buffering.
    policy:
        Default :class:`~repro.disk.policy.DevicePolicy` for batches
        submitted without an explicit ``reorder`` argument.  The default
        policy reproduces the historical behaviour (submission order).
    """

    def __init__(self, geometry: DiskGeometry, *, store_data: bool = False,
                 sequential_window: int = 64 * 1024,
                 policy: DevicePolicy | None = None) -> None:
        self.geometry = geometry
        self.stats = IoStats()
        self.policy = policy or DEFAULT_POLICY
        self._store = _SegmentStore() if store_data else None
        self._head = 0
        self._sequential_window = sequential_window
        self.clock_s = 0.0

    # ------------------------------------------------------------------
    # Service-time model
    # ------------------------------------------------------------------
    def _cost_of(self, extents: list[Extent],
                 head: int) -> tuple[int, float, int]:
        """(seeks, service seconds, final head) for one request.

        Hot path: large requests arrive as many-extent lists, so the
        per-extent loop accumulates into locals and binds the geometry
        callables once, touching self only at entry.
        """
        geometry = self.geometry
        transfer_time = geometry.transfer_time
        seek_time = geometry.seek_time
        rotational_s = geometry.avg_rotational_latency_s
        window = self._sequential_window
        seeks = 0
        total = geometry.per_request_overhead_s
        for ext in extents:
            start = ext.start
            gap = start - head
            if 0 <= gap <= window:
                # Sequential continuation: pay only any skipped media time.
                if gap:
                    total += transfer_time(head, gap)
            else:
                seeks += 1
                total += seek_time(head, start) + rotational_s
            length = ext.length
            total += transfer_time(start, length)
            head = start + length
        return seeks, total, head

    def _validate(self, extents: list[Extent]) -> None:
        for ext in extents:
            if ext.start < 0 or ext.end > self.geometry.capacity:
                raise ConfigError(
                    f"extent {ext} outside volume of "
                    f"{self.geometry.capacity} bytes"
                )

    def _elevator(self, batch: list[IoRequest]) -> list[IoRequest]:
        """C-LOOK order: ascending starts from the head, wrapping once."""
        head = self._head

        def start_of(req: IoRequest) -> int:
            return req.extents[0].start if req.extents else head

        ahead = sorted((r for r in batch if start_of(r) >= head), key=start_of)
        behind = sorted((r for r in batch if start_of(r) < head), key=start_of)
        return ahead + behind

    # ------------------------------------------------------------------
    # Timed I/O
    # ------------------------------------------------------------------
    def submit(self, batch: list[IoRequest], *,
               reorder: bool | None = None) -> list[bytes | None]:
        """Serve a batch of requests; one ``IoStats`` record per batch.

        Costs are charged with the head chaining through the batch in
        service order (``reorder=True`` picks elevator order, otherwise
        submission order), so a non-reordered batch costs exactly what
        the same requests cost submitted one at a time.  ``reorder=None``
        (the default) defers to the device's
        :class:`~repro.disk.policy.DevicePolicy`, which is how backends
        thread a spec-level scheduling choice through every submission.
        Returns one entry per request in submission order: read results
        (when content storage is on) or ``None``.  An empty batch is a
        no-op.
        """
        if not batch:
            return []
        if reorder is None:
            reorder = self.policy.reorder_flag
        if len(batch) == 1:
            # Fast path for the single-request wrappers (read_extents /
            # write_extents sit on every experiment's hot path): same
            # accounting, none of the batch bookkeeping.
            req = batch[0]
            self._validate(req.extents)
            seeks, service, head = self._cost_of(req.extents, self._head)
            self._head = head
            nbytes = 0
            for ext in req.extents:
                nbytes += ext.length
            if req.is_write:
                self.stats.record_batch(write_bytes=nbytes, write_s=service,
                                        seeks=seeks)
            else:
                self.stats.record_batch(read_bytes=nbytes, read_s=service,
                                        seeks=seeks)
            self.clock_s += service
            return [self._apply_content(req)]
        for req in batch:
            self._validate(req.extents)
        order = self._elevator(batch) if reorder else batch
        head = self._head
        seeks = 0
        read_bytes = write_bytes = 0
        read_s = write_s = 0.0
        for req in order:
            req_seeks, service, head = self._cost_of(req.extents, head)
            seeks += req_seeks
            nbytes = 0
            for ext in req.extents:
                nbytes += ext.length
            if req.is_write:
                write_bytes += nbytes
                write_s += service
            else:
                read_bytes += nbytes
                read_s += service
        self._head = head
        self.stats.record_batch(read_bytes=read_bytes, write_bytes=write_bytes,
                                read_s=read_s, write_s=write_s, seeks=seeks)
        self.clock_s += read_s + write_s
        # Content pass, always in submission order: reordering is a
        # timing-model choice and must never change stored bytes.
        return [self._apply_content(req) for req in batch]

    def _apply_content(self, req: IoRequest) -> bytes | None:
        """Apply one request's content effect; None unless a stored read."""
        store = self._store
        if store is None:
            return None
        if not req.is_write:
            return b"".join(store.read(e.start, e.length)
                            for e in req.extents)
        if req.data is not None:
            nbytes = sum(e.length for e in req.extents)
            if len(req.data) != nbytes:
                raise ConfigError(
                    f"data length {len(req.data)} != extent bytes {nbytes}"
                )
            cursor = 0
            for ext in req.extents:
                store.write(ext.start, req.data[cursor: cursor + ext.length])
                cursor += ext.length
        return None

    def submit_policy(self, requests: list[IoRequest]) -> list[bytes | None]:
        """Submit a request stream under the device's policy.

        The policy's ``batch_size`` splits the stream into batches and
        its ``reorder`` discipline orders each batch; results come back
        aligned with ``requests``.  This is the bulk path the backends'
        appends and ``read_many`` sweeps use.
        """
        out: list[bytes | None] = []
        for chunk in self.policy.chunks(requests):
            out.extend(self.submit(list(chunk)))
        return out

    def read_extents(self, extents: list[Extent]) -> bytes | None:
        """Read a list of extents as one request; returns data if stored."""
        return self.submit([IoRequest(False, extents)])[0]

    def write_extents(self, extents: list[Extent],
                      data: bytes | None = None) -> None:
        """Write a list of extents as one request.

        ``data`` (when content storage is on) must cover the extents in
        order; pass ``None`` to write timing-only.
        """
        self.submit([IoRequest(True, extents, data)])

    def read(self, offset: int, length: int) -> bytes | None:
        """Timed single-extent read."""
        return self.submit([IoRequest(False, [Extent(offset, length)])])[0]

    def write(self, offset: int, length: int,
              data: bytes | None = None) -> None:
        """Timed single-extent write."""
        self.submit([IoRequest(True, [Extent(offset, length)], data)])

    def charge_sequential_write(self, nbytes: int) -> float:
        """Charge a background sequential write of ``nbytes``; timing only.

        Models one large streaming request: per-request overhead, the
        average rotational latency of settling onto the flush location,
        and media transfer time starting from the current head's zone
        (wrapping across the volume for writes larger than it).  The
        charge lands in :attr:`stats` as a single write and advances
        :attr:`clock_s`; stored content and the head position are
        untouched — background flush traffic (checkpoint write-back) is
        not addressable data.  Returns the seconds charged.
        """
        if nbytes <= 0:
            return 0.0
        geometry = self.geometry
        service = (geometry.per_request_overhead_s
                   + geometry.avg_rotational_latency_s)
        start = self._head
        remaining = nbytes
        while remaining > 0:
            span = min(remaining, geometry.capacity - start)
            if span <= 0:
                start = 0
                continue
            service += geometry.transfer_time(start, span)
            remaining -= span
            start = (start + span) % geometry.capacity
        self.stats.record(is_write=True, nbytes=nbytes, service_s=service,
                          seeks=1)
        self.clock_s += service
        return service

    def flush(self) -> None:
        """Force outstanding writes; modelled as one rotation of latency.

        Safe writes and commit records force the platter; charging a
        rotation approximates the cache-flush cost of the era's drives.
        """
        service = self.geometry.rotation_s
        self.stats.record(is_write=True, nbytes=0, service_s=service, seeks=0)
        self.clock_s += service

    # ------------------------------------------------------------------
    # Untimed inspection (used by analyzers and tests, never by benches)
    # ------------------------------------------------------------------
    @property
    def stores_data(self) -> bool:
        return self._store is not None

    def peek(self, offset: int, length: int) -> bytes:
        """Read stored content without charging any service time."""
        if self._store is None:
            raise ConfigError("device was created with store_data=False")
        return self._store.read(offset, length)

    def poke(self, offset: int, data: bytes) -> None:
        """Write stored content without charging any service time."""
        if self._store is None:
            raise ConfigError("device was created with store_data=False")
        self._store.write(offset, data)

    def discard(self, offset: int, length: int) -> None:
        """Drop stored content in a range (untimed TRIM); reads zeros after."""
        if self._store is None:
            raise ConfigError("device was created with store_data=False")
        self._store.trim(offset, length)

    @property
    def head_position(self) -> int:
        return self._head
