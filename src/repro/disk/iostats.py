"""I/O accounting for the simulated block device.

The paper's primary performance indicator is throughput (MB/s) measured
over phases of the workload (bulk load, each churn interval, read sweeps).
:class:`IoStats` accumulates modelled busy time and bytes, and supports
nested named windows so the experiment runner can report per-phase
throughput exactly the way Figures 1 and 4 do ("write performance between
the bulk load and storage-age-two read measurements").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import MB


@dataclass(slots=True)
class WindowStats:
    """Totals captured between ``start_window`` and ``end_window``.

    Slotted: one of these is touched on every device request for every
    open window, so the record path avoids ``__dict__`` lookups.
    """

    name: str
    read_bytes: int = 0
    write_bytes: int = 0
    read_time_s: float = 0.0
    write_time_s: float = 0.0
    cpu_time_s: float = 0.0
    seeks: int = 0
    requests: int = 0
    #: Overlapped wall time for the window, set by
    #: :class:`~repro.backends.base.MeasurementWindows` when the store
    #: runs a :class:`~repro.disk.schedule.ShardScheduler`; ``None``
    #: means no overlap model applies and wall time equals the sum.
    wall_time_s: float | None = None
    #: Per-request sojourn-latency summary, filled by
    #: :class:`~repro.backends.base.MeasurementWindows` when the store
    #: runs an event scheduler (:mod:`repro.disk.events`); ``lat_count
    #: == 0`` means no latency model applies.
    lat_count: int = 0
    lat_mean_s: float = 0.0
    lat_p50_s: float = 0.0
    lat_p95_s: float = 0.0
    lat_p99_s: float = 0.0
    lat_max_s: float = 0.0
    #: Foreground sojourn summaries split by tenant tag (scenario
    #: runs); ``None`` means nothing in the window carried a tag.  Each
    #: entry is a :meth:`LatencyHistogram.summary` dict, and when every
    #: foreground request was tagged the per-tenant counts sum to
    #: ``lat_count``.
    tenant_lat: dict[str, dict[str, float]] | None = None

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def total_time_s(self) -> float:
        """Modelled elapsed time under the *serial* model: device busy
        time summed across devices plus host CPU time.

        The workload is synchronous and single-threaded (one outstanding
        request, as in the paper's test app), so times add.  For
        multi-volume stores with an overlap scheduler, the overlapped
        alternative is :attr:`elapsed_wall_s`.
        """
        return self.read_time_s + self.write_time_s + self.cpu_time_s

    @property
    def elapsed_wall_s(self) -> float:
        """Overlapped wall time when modelled, else the summed time."""
        if self.wall_time_s is None:
            return self.total_time_s
        return self.wall_time_s

    def read_throughput(self) -> float:
        """Read bytes per second of modelled read busy time (0 if idle)."""
        if self.read_time_s <= 0:
            return 0.0
        return self.read_bytes / self.read_time_s

    def write_throughput(self) -> float:
        if self.write_time_s <= 0:
            return 0.0
        return self.write_bytes / self.write_time_s

    def throughput(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.total_bytes / self.total_time_s

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WindowStats({self.name!r}, rd={self.read_bytes / MB:.1f}MB"
            f"@{self.read_throughput() / MB:.2f}MB/s, "
            f"wr={self.write_bytes / MB:.1f}MB"
            f"@{self.write_throughput() / MB:.2f}MB/s, seeks={self.seeks})"
        )


@dataclass(slots=True)
class IoStats:
    """Cumulative counters plus a stack of open measurement windows."""

    read_bytes: int = 0
    write_bytes: int = 0
    read_time_s: float = 0.0
    write_time_s: float = 0.0
    cpu_time_s: float = 0.0
    seeks: int = 0
    requests: int = 0
    _windows: list[WindowStats] = field(default_factory=list)

    def record_cpu(self, seconds: float) -> None:
        """Account host CPU time (query parsing, file-open path, copies)."""
        self.cpu_time_s += seconds
        for win in self._windows:
            win.cpu_time_s += seconds

    def record(self, *, is_write: bool, nbytes: int, service_s: float,
               seeks: int) -> None:
        """Account one device request in the totals and all open windows."""
        if is_write:
            self.record_batch(write_bytes=nbytes, write_s=service_s,
                              seeks=seeks)
        else:
            self.record_batch(read_bytes=nbytes, read_s=service_s,
                              seeks=seeks)

    def record_batch(self, *, read_bytes: int = 0, write_bytes: int = 0,
                     read_s: float = 0.0, write_s: float = 0.0,
                     seeks: int = 0) -> None:
        """Account one scatter/gather submission as a single request.

        This is the batch path's accounting entry: a batch of many
        requests lands in the totals with identical bytes/time/seeks to
        per-request submission but bumps ``requests`` (and every open
        window's request count) exactly once — the host-side submission
        count, not the extent count.
        """
        self.requests += 1
        self.seeks += seeks
        self.read_bytes += read_bytes
        self.write_bytes += write_bytes
        self.read_time_s += read_s
        self.write_time_s += write_s
        for win in self._windows:
            win.requests += 1
            win.seeks += seeks
            win.read_bytes += read_bytes
            win.write_bytes += write_bytes
            win.read_time_s += read_s
            win.write_time_s += write_s

    def start_window(self, name: str) -> WindowStats:
        """Open a named measurement window; windows may nest."""
        win = WindowStats(name=name)
        self._windows.append(win)
        return win

    def end_window(self, win: WindowStats) -> WindowStats:
        """Close ``win`` (and any windows opened after it)."""
        while self._windows:
            top = self._windows.pop()
            if top is win:
                return win
        raise ValueError(f"window {win.name!r} is not open")

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def busy_time_s(self) -> float:
        return self.read_time_s + self.write_time_s + self.cpu_time_s

    def snapshot(self) -> WindowStats:
        """A :class:`WindowStats` view of the cumulative totals."""
        return WindowStats(
            name="total",
            read_bytes=self.read_bytes,
            write_bytes=self.write_bytes,
            read_time_s=self.read_time_s,
            write_time_s=self.write_time_s,
            cpu_time_s=self.cpu_time_s,
            seeks=self.seeks,
            requests=self.requests,
        )
