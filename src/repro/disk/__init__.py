"""Disk substrate: zoned geometry and a service-time block device model.

The paper's testbed used Seagate ST3400832AS 7200 rpm SATA drives
(Table 1).  We replace the physical drives with :class:`BlockDevice`,
which tracks a head position and charges seek, rotational, and zoned
media-transfer time for every extent it touches.  Throughput numbers in
the benches are bytes moved divided by modelled busy time.
"""

from repro.disk.geometry import DiskGeometry, Zone, PAPER_DISK, scaled_disk
from repro.disk.device import BlockDevice
from repro.disk.iostats import IoStats

__all__ = [
    "DiskGeometry",
    "Zone",
    "PAPER_DISK",
    "scaled_disk",
    "BlockDevice",
    "IoStats",
]
