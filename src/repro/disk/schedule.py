"""Overlapping device-time model for multi-volume stores.

Every :class:`~repro.disk.device.BlockDevice` keeps its own modelled
busy clock, and the synchronous driver historically *summed* those
clocks into elapsed time — correct for one volume, but it models N
shards as slower-or-equal to one (N seek streams, zero concurrency).
Real sharded repositories (SEARS, arXiv:1508.01182) spread objects
across devices precisely so independent spindles work at the same
time.  This module is that concurrency model.

The model is a **dispatch-round makespan**: the composite store
dispatches work to its shards in rounds (one fan-out call, e.g. a
``read_many`` sweep split by owning shard, is one round; a single-shard
``put``/``get`` is a degenerate one-lane round).  Within a round each
shard's device time is one *lane*, lanes run on independent devices and
overlap; the round's wall time is the makespan of scheduling the lanes
onto ``parallelism`` workers (0 = one worker per lane):

* ``parallelism >= lanes`` — critical path: ``max(lane_times)``.
* ``parallelism == 1`` — fully serial: ``sum(lane_times)`` (exactly
  the historical summed model).
* in between — greedy LPT (longest processing time first) assignment,
  the classic 4/3-approximation for multiprocessor scheduling.

Rounds themselves are sequential (the driver is synchronous between
dispatches), so a store's overlapped wall time is the sum of its round
makespans plus an optional fixed per-round dispatch overhead.  For any
round, ``max(lanes) <= makespan <= sum(lanes)`` — the property suite
holds :func:`round_makespan` to exactly that envelope.

:class:`ShardScheduler` accumulates rounds and supports named
measurement windows mirroring :class:`~repro.disk.iostats.IoStats`, so
:class:`~repro.backends.base.MeasurementWindows` can report a phase's
summed device time and overlapped wall time side by side.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigError


def round_makespan(lane_times: Sequence[float],
                   parallelism: int = 0) -> float:
    """Wall time of one dispatch round's lanes on ``parallelism`` workers.

    Greedy LPT: serve lanes longest-first, each on the least-loaded
    worker.  ``parallelism <= 0`` means one worker per lane (pure
    critical path).  Zero/negative lane times are idle lanes and are
    ignored.  Guarantees ``max(lanes) <= makespan <= sum(lanes)``, with
    equality at ``parallelism >= lanes`` and ``parallelism == 1``
    respectively.
    """
    lanes = sorted((t for t in lane_times if t > 0.0), reverse=True)
    if not lanes:
        return 0.0
    workers = parallelism if parallelism > 0 else len(lanes)
    if workers >= len(lanes):
        return lanes[0]
    if workers == 1:
        return sum(lanes)
    loads = [0.0] * workers
    heapq.heapify(loads)
    for lane in lanes:
        heapq.heappush(loads, heapq.heappop(loads) + lane)
    return max(loads)


@dataclass(slots=True)
class SchedulerWindow:
    """Overlapped wall time captured between start/end of one window."""

    name: str
    wall_time_s: float = 0.0
    lane_time_s: float = 0.0
    rounds: int = 0


@dataclass(slots=True)
class ShardScheduler:
    """Accumulates dispatch rounds into overlapped wall time.

    Parameters
    ----------
    parallelism:
        Worker cap per round (0 = one worker per lane; 1 reproduces the
        summed model exactly).
    dispatch_overhead_s:
        Fixed wall-time cost added to every round that did device work
        (host-side fan-out/join cost; 0 by default).
    """

    parallelism: int = 0
    dispatch_overhead_s: float = 0.0
    #: Overlapped wall seconds across every round so far.
    wall_time_s: float = 0.0
    #: Summed lane seconds across every round (the serial model).
    lane_time_s: float = 0.0
    rounds: int = 0
    _windows: list[SchedulerWindow] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.parallelism < 0:
            raise ConfigError("parallelism must be >= 0 (0 = unbounded)")
        if not (math.isfinite(self.dispatch_overhead_s)
                and self.dispatch_overhead_s >= 0):
            raise ConfigError(
                "dispatch_overhead_s must be a finite value >= 0"
            )

    def record_round(self, lane_times: Sequence[float],
                     indices: Sequence[int] | None = None, *,
                     background: bool = False) -> float:
        """Account one dispatch round; returns the round's wall time.

        ``indices`` names the shard behind each lane; the makespan
        model has no per-shard state so it ignores them, but the
        event-driven subclass (:class:`~repro.disk.events.
        EventScheduler`) routes each lane to that shard's FIFO queue.
        ``background`` marks driver-initiated maintenance I/O
        (checkpoint write-back, migration copies); the makespan model
        charges it like any round, but the event subclass keeps it off
        the open-loop arrival process and out of the foreground
        latency windows.
        """
        wall = round_makespan(lane_times, self.parallelism)
        if wall <= 0.0:
            return 0.0
        wall += self.dispatch_overhead_s
        lane_total = sum(t for t in lane_times if t > 0.0)
        self.rounds += 1
        self.wall_time_s += wall
        self.lane_time_s += lane_total
        for win in self._windows:
            win.rounds += 1
            win.wall_time_s += wall
            win.lane_time_s += lane_total
        return wall

    def record_stall(self, seconds: float) -> None:
        """Account wall time during which no lane did device work.

        Stalls model host-side waiting — retry backoff after a transient
        fault, or a rebuild throttle's duty-cycle pause — so they add
        wall time (and flow into open windows) without touching lane
        totals or the round count: the devices really were idle.
        """
        if seconds <= 0.0:
            return
        self.wall_time_s += seconds
        for win in self._windows:
            win.wall_time_s += seconds

    # ------------------------------------------------------------------
    # Measurement windows (mirrors IoStats' window stack)
    # ------------------------------------------------------------------
    def start_window(self, name: str) -> SchedulerWindow:
        win = SchedulerWindow(name=name)
        self._windows.append(win)
        return win

    def end_window(self, win: SchedulerWindow) -> SchedulerWindow:
        while self._windows:
            top = self._windows.pop()
            if top is win:
                return win
        raise ValueError(f"scheduler window {win.name!r} is not open")

    @property
    def overlap_speedup(self) -> float:
        """Summed lane time over overlapped wall time (1.0 when idle)."""
        if self.wall_time_s <= 0.0:
            return 1.0
        return self.lane_time_s / self.wall_time_s
