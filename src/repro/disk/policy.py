"""Device submission policy: how a backend batches and orders its I/O.

The scatter/gather path (:meth:`BlockDevice.submit`) can serve a batch
in elevator (C-LOOK) order, and bulk producers can cap how many
requests they put in one batch.  Both knobs used to be per-call-site
decisions; :class:`DevicePolicy` makes them one declarative value that
a :class:`~repro.backends.spec.StoreSpec` carries and every backend
threads into its device submissions — the handle for the paper's
request-scheduling ablations (ROADMAP: elevator scheduling study).

The default policy (unbounded batches, no reordering) is cost-identical
to the pre-policy behaviour: ``submit`` without an explicit ``reorder``
argument falls back to the device's policy, and the default policy's
``reorder_flag`` is False.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.errors import ConfigError

#: Accepted reorder disciplines: submission order, or C-LOOK elevator.
REORDER_KINDS = ("none", "clook")


@dataclass(frozen=True, slots=True)
class DevicePolicy:
    """Batching and ordering discipline for timed device submissions.

    Parameters
    ----------
    batch_size:
        Maximum requests per :meth:`BlockDevice.submit` call on bulk
        paths (appends, ``read_many`` sweeps).  ``0`` means unbounded —
        producers submit whatever batch they naturally built, which is
        the historical behaviour.
    reorder:
        ``"none"`` serves batches in submission order (cost-identical
        to one-at-a-time submission); ``"clook"`` serves each batch in
        C-LOOK elevator order, modelling a request scheduler.
    """

    batch_size: int = 0
    reorder: str = "none"

    def __post_init__(self) -> None:
        if self.batch_size < 0:
            raise ConfigError("batch_size must be >= 0 (0 = unbounded)")
        if self.reorder not in REORDER_KINDS:
            raise ConfigError(
                f"unknown reorder {self.reorder!r}; "
                f"choose from {REORDER_KINDS}"
            )

    @property
    def reorder_flag(self) -> bool:
        """The boolean :meth:`BlockDevice.submit` expects."""
        return self.reorder == "clook"

    def chunks(self, requests: Sequence) -> Iterator[Sequence]:
        """Split a request list into policy-sized batches.

        With ``batch_size == 0`` the whole list comes back as one
        batch; empty input yields nothing.
        """
        if not requests:
            return
        if self.batch_size == 0:
            yield requests
            return
        for lo in range(0, len(requests), self.batch_size):
            yield requests[lo: lo + self.batch_size]

    def to_dict(self) -> dict:
        return {"batch_size": self.batch_size, "reorder": self.reorder}

    @classmethod
    def from_dict(cls, payload: dict) -> "DevicePolicy":
        return cls(batch_size=int(payload.get("batch_size", 0)),
                   reorder=str(payload.get("reorder", "none")))


#: Shared default instance (policies are immutable, sharing is safe).
DEFAULT_POLICY = DevicePolicy()
