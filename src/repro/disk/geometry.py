"""Disk geometry: capacity, zones, and mechanical timing parameters.

Modern drives use zoned bit recording (ZBR): outer cylinders hold more
sectors per track and therefore transfer faster.  The paper's Section 3.4
notes NTFS's banded allocation is designed around this.  A
:class:`DiskGeometry` carries a list of :class:`Zone` bands mapping byte
offsets to media transfer rates, plus seek and rotation characteristics.

:data:`PAPER_DISK` approximates the Seagate ST3400832AS (Barracuda 7200.8,
400 GB) from Table 1: 7200 rpm, ~8.5 ms average seek, media rate falling
from roughly 65 MB/s on the outer band to about half that on the inner
band — the era's published figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import GB, MB, fmt_size


@dataclass(frozen=True, slots=True)
class Zone:
    """A contiguous band of the volume with a single media transfer rate.

    ``start``/``end`` are byte offsets (end exclusive); ``rate`` is the
    sustained media rate in bytes/second within the band.
    """

    start: int
    end: int
    rate: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigError(f"bad zone bounds [{self.start}, {self.end})")
        if self.rate <= 0:
            raise ConfigError("zone rate must be positive")

    @property
    def size(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Zone({fmt_size(self.start)}..{fmt_size(self.end)}, "
            f"{self.rate / MB:.1f} MB/s)"
        )


@dataclass(frozen=True, slots=True)
class DiskGeometry:
    """Capacity plus mechanical parameters of a simulated drive.

    Parameters
    ----------
    capacity:
        Usable bytes on the volume.
    zones:
        ZBR bands covering ``[0, capacity)`` exactly, outermost first
        (offset 0 is the outer edge, as drives are addressed).
    avg_seek_s:
        Average seek time in seconds (random request, third-stroke).
    full_seek_s:
        Full-stroke seek time; distance-dependent seeks interpolate
        between a fixed settle time and this.
    settle_s:
        Head settle / track-to-track time, the floor for any seek.
    rpm:
        Spindle speed; average rotational latency is half a revolution.
    per_request_overhead_s:
        Fixed controller/command overhead charged once per request.
    """

    capacity: int
    zones: tuple[Zone, ...]
    avg_seek_s: float = 0.0085
    full_seek_s: float = 0.017
    settle_s: float = 0.0008
    rpm: float = 7200.0
    per_request_overhead_s: float = 0.0002

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError("capacity must be positive")
        if not self.zones:
            raise ConfigError("at least one zone is required")
        expected = 0
        for zone in self.zones:
            if zone.start != expected:
                raise ConfigError(
                    f"zones must tile the volume; gap/overlap at {expected}"
                )
            expected = zone.end
        if expected != self.capacity:
            raise ConfigError(
                f"zones cover {expected} bytes but capacity is {self.capacity}"
            )
        if self.settle_s <= 0 or self.avg_seek_s <= 0 or self.full_seek_s <= 0:
            raise ConfigError("seek times must be positive")
        if self.full_seek_s < self.avg_seek_s:
            raise ConfigError("full-stroke seek cannot be below average seek")

    @property
    def rotation_s(self) -> float:
        """Time for one full revolution."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency_s(self) -> float:
        """Expected rotational delay for a random request (half a turn)."""
        return self.rotation_s / 2.0

    def zone_at(self, offset: int) -> Zone:
        """Return the zone containing byte ``offset`` (binary search)."""
        if offset < 0 or offset >= self.capacity:
            raise ConfigError(
                f"offset {offset} outside volume of {self.capacity} bytes"
            )
        lo, hi = 0, len(self.zones) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.zones[mid].end <= offset:
                lo = mid + 1
            else:
                hi = mid
        return self.zones[lo]

    def rate_at(self, offset: int) -> float:
        """Media transfer rate (bytes/s) at byte ``offset``."""
        return self.zone_at(offset).rate

    def seek_time(self, from_offset: int, to_offset: int) -> float:
        """Distance-dependent seek time between two byte offsets.

        A simple convex model: settle time plus a square-root law scaled
        so that a full-stroke seek costs ``full_seek_s`` and the mean over
        random pairs is close to ``avg_seek_s``.  The square-root law is
        the standard first-order fit for voice-coil actuators.
        """
        distance = abs(to_offset - from_offset)
        if distance == 0:
            return 0.0
        fraction = distance / self.capacity
        return self.settle_s + (self.full_seek_s - self.settle_s) * (fraction**0.5)

    def transfer_time(self, offset: int, length: int) -> float:
        """Media time to transfer ``length`` bytes starting at ``offset``.

        Integrates across zone boundaries so large sequential transfers
        spanning bands are charged each band's rate.
        """
        if length < 0:
            raise ConfigError("negative transfer length")
        remaining = length
        position = offset
        total = 0.0
        while remaining > 0:
            zone = self.zone_at(position)
            chunk = min(remaining, zone.end - position)
            total += chunk / zone.rate
            position += chunk
            remaining -= chunk
        return total


def _standard_zones(capacity: int, outer_rate: float, inner_rate: float,
                    nzones: int = 8) -> tuple[Zone, ...]:
    """Build ``nzones`` equal-size bands linearly interpolating the rate."""
    if nzones < 1:
        raise ConfigError("need at least one zone")
    zones: list[Zone] = []
    start = 0
    for i in range(nzones):
        end = capacity if i == nzones - 1 else capacity * (i + 1) // nzones
        if nzones == 1:
            rate = (outer_rate + inner_rate) / 2.0
        else:
            rate = outer_rate + (inner_rate - outer_rate) * i / (nzones - 1)
        zones.append(Zone(start, end, rate))
        start = end
    return tuple(zones)


def make_disk(capacity: int, *, outer_rate: float = 65.0 * MB,
              inner_rate: float = 33.0 * MB, nzones: int = 8,
              avg_seek_s: float = 0.0085, rpm: float = 7200.0) -> DiskGeometry:
    """Convenience constructor with ST3400832AS-like defaults."""
    return DiskGeometry(
        capacity=capacity,
        zones=_standard_zones(capacity, outer_rate, inner_rate, nzones),
        avg_seek_s=avg_seek_s,
        rpm=rpm,
    )


#: The Table 1 drive: 400 GB, 7200 rpm SATA.
PAPER_DISK: DiskGeometry = make_disk(400 * GB)


def scaled_disk(capacity: int) -> DiskGeometry:
    """A geometry with paper-like mechanics at an arbitrary capacity.

    Benches default to scaled volumes (Section 3 of DESIGN.md): the free
    pool ratio and request-size ratios that govern fragmentation are
    preserved, only wall-clock experiment time shrinks.
    """
    return make_disk(capacity)
