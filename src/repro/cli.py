"""Command-line interface: run aging experiments without writing code.

Examples::

    python -m repro run --backend database --object-size 10M \\
        --volume 2G --occupancy 0.5 --ages 0,2,4,6,8,10
    python -m repro run --store lfs:reorder=clook,batch=16 --shards 4 \\
        --object-size 1M --volume 1G
    python -m repro run --store lfs:shards=4,overlap=true,batch=16 \\
        --rebalance-ages 2 --object-size 1M --volume 1G --ages 0,2,4
    python -m repro compare --object-size 512K --volume 512M \\
        --occupancy 0.9 --ages 0,2,4 --json results.json
    python -m repro run --volume 4G --ages 0,2,4,6,8,10 \\
        --checkpoint-dir /tmp/aging-ck            # later: add --resume
    python -m repro run --store lfs:shards=4,overlap=true,queue=event \\
        --scenario cdn_churn:tenants=8,skew=1.1,seed=7 \\
        --volume 256M --ages 0,1,2               # per-tenant p50/p95/p99
    python -m repro backends
    python -m repro --list-backends

``--store backend:key=val,...`` describes the store declaratively (see
:class:`repro.backends.spec.StoreSpec`); spec-level keys are
``volume``, ``write_request``, ``reorder``, ``batch``, ``shards``,
``placement``, ``store_data``, ``replicas``, ``faults``,
``rebuild_rate``, ``rebalance_rate``, ``checkpoint_rate``, ``queue``,
``depth``, ``arrival`` (explicit spec
keys win over the ``--volume``/``--write-request`` flag defaults);
everything else is a backend option validated by the registry.
``queue=event`` (with ``overlap=true``) runs the event-driven shard
queue simulator, adding p50/p95/p99 read-latency tables — e.g.
``--store 'lfs:shards=4,overlap=true,queue=event,depth=64,arrival=poisson:rate=2e3'``.  ``--shards N`` stripes the
chosen store over N sub-volumes; ``--replicas K`` keeps K copies of
every object on distinct shards; ``--faults SPEC`` injects device
faults (grammar in :mod:`repro.disk.faults`), e.g.
``--faults 'loss:shard=1:at_age=2'`` with ``--rebuild-ages 4`` to
re-replicate after the loss.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.analysis.tables import render_series_table, render_table
from repro.backends.registry import backend_descriptions
from repro.backends.spec import StoreSpec
from repro.core.experiment import (
    BACKENDS,
    ExperimentConfig,
    run_experiment,
)
from repro.core.workload import ConstantSize, UniformSize
from repro.scenario.spec import ScenarioSpec, scenario_names
from repro.units import MB, fmt_size, parse_size


def _parse_ages(text: str) -> tuple[float, ...]:
    try:
        ages = tuple(float(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad ages list: {text!r}")
    if not ages or list(ages) != sorted(ages):
        raise argparse.ArgumentTypeError("ages must ascend")
    return ages


def _build_sizes(args: argparse.Namespace):
    if getattr(args, "scenario", None):
        # A scenario carries its own per-tenant size distributions; the
        # config derives the occupancy-planning mean from the spec.
        return None
    mean = parse_size(args.object_size)
    if args.uniform:
        return UniformSize.around_mean(mean, spread=args.spread)
    return ConstantSize(mean)


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--object-size", default="1M",
                        help="mean object size, e.g. 256K or 10M")
    parser.add_argument("--uniform", action="store_true",
                        help="uniform size distribution around the mean")
    parser.add_argument("--spread", type=float, default=0.8,
                        help="uniform half-width as a fraction of the mean")
    parser.add_argument("--volume", default="1G",
                        help="simulated volume size, e.g. 512M or 4G")
    parser.add_argument("--occupancy", type=float, default=0.5,
                        help="bulk-load target occupancy in (0, 1)")
    parser.add_argument("--ages", type=_parse_ages,
                        default=(0.0, 2.0, 4.0),
                        help="comma-separated storage ages to sample")
    parser.add_argument("--write-request", default="64K",
                        help="application write request size")
    parser.add_argument("--reads", type=int, default=32,
                        help="whole-object reads per sampling point")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--size-hints", action="store_true",
                        help="use the size-hint interface (filesystem)")
    parser.add_argument("--store", metavar="SPEC", default=None,
                        help="declarative store spec, e.g. "
                             "lfs:reorder=clook,batch=16 (see --help text)")
    parser.add_argument("--scenario", metavar="SPEC", default=None,
                        help="multi-tenant scenario spec, e.g. "
                             "cdn_churn:tenants=8,skew=1.1,seed=7 "
                             f"(presets: {', '.join(scenario_names())}); "
                             "replaces the uniform churn loop and the "
                             "--object-size/--uniform flags")
    parser.add_argument("--shards", type=int, default=0,
                        help="stripe the store over N sub-volumes")
    parser.add_argument("--replicas", type=int, default=0,
                        help="keep K copies of every object on distinct "
                             "shards (needs a sharded store)")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="device fault profile, e.g. "
                             "'transient:rate=1e-4;loss:shard=1:at_age=2' "
                             "(see repro.disk.faults)")
    parser.add_argument("--rebalance-ages", type=_parse_ages, default=(),
                        metavar="AGES",
                        help="rebalance a sharded store (occupancy-"
                             "levelling migration) after sampling these "
                             "ages (must be a subset of --ages)")
    parser.add_argument("--rebuild-ages", type=_parse_ages, default=(),
                        metavar="AGES",
                        help="re-replicate objects that lost copies to "
                             "dead shards after sampling these ages "
                             "(must be a subset of --ages)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="write a resumable checkpoint after every "
                             "sampled age (long aging runs can stop and "
                             "continue)")
    parser.add_argument("--resume", action="store_true",
                        help="continue from the newest valid checkpoint "
                             "in --checkpoint-dir (fresh run when none)")
    parser.add_argument("--checkpoint-keep", type=int, default=2,
                        metavar="N",
                        help="published checkpoints to retain (plus "
                             "whatever a live delta chain still needs; "
                             "default 2)")
    parser.add_argument("--checkpoint-full-interval", type=int, default=4,
                        metavar="N",
                        help="full-snapshot cadence: every Nth checkpoint "
                             "is self-contained, the ones between are "
                             "deltas against their predecessor (1 "
                             "disables deltas; default 4)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the results as JSON")


def _store_spec_from(args: argparse.Namespace,
                     backend: str) -> StoreSpec | None:
    """The StoreSpec described by --store/--shards, or None.

    An explicit backend inside ``--store`` wins over the subcommand's
    backend; ``--store :key=val`` keeps it.  ``--volume``,
    ``--write-request``, and ``--size-hints`` still apply as defaults;
    spec-text keys (``volume=``, ``write_request=``) win over them.
    """
    if (args.store is None and args.shards <= 0
            and args.replicas <= 0 and args.faults is None):
        return None
    spec = StoreSpec.parse(
        args.store if args.store is not None else backend,
        default_backend=backend,
        volume_bytes=parse_size(args.volume),
        write_request=parse_size(args.write_request),
    )
    if args.shards > 0:
        spec = replace(spec, shards=args.shards)
    if args.replicas > 0:
        spec = replace(spec, replicas=args.replicas)
    if args.faults is not None:
        spec = replace(spec, faults=args.faults)
    if args.size_hints and spec.backend == "filesystem":
        spec = spec.with_options(size_hints=True)
    return spec


def _config_from(args: argparse.Namespace,
                 backend: str) -> ExperimentConfig:
    common = dict(
        sizes=_build_sizes(args),
        scenario=(ScenarioSpec.parse(args.scenario)
                  if args.scenario else None),
        occupancy=args.occupancy,
        ages=args.ages,
        reads_per_sample=args.reads,
        seed=args.seed,
        rebalance_ages=tuple(args.rebalance_ages),
        rebuild_ages=tuple(args.rebuild_ages),
    )
    spec = _store_spec_from(args, backend)
    if spec is not None:
        return ExperimentConfig(store=spec, **common)
    return ExperimentConfig(
        backend=backend,
        volume_bytes=parse_size(args.volume),
        write_request=parse_size(args.write_request),
        size_hints=args.size_hints,
        **common,
    )


def _result_table(results: dict) -> str:
    frag = {
        name: [(s.age, s.fragments_per_object) for s in run.samples]
        for name, run in results.items()
    }
    read = {
        f"{name} rd MB/s": [(s.age, s.read_mbps / MB)
                            for s in run.samples]
        for name, run in results.items()
    }
    blocks = [
        render_series_table("Fragments per object", "age", frag),
        render_series_table("Read throughput", "age", read),
    ]
    # Overlap-modelled stores report wall-time throughput too (it only
    # differs when shard device lanes actually overlapped).
    wall = {
        f"{name} rd wall MB/s": [(s.age, s.read_wall_mbps / MB)
                                 for s in run.samples]
        for name, run in results.items()
        if any(abs(s.read_wall_mbps - s.read_mbps) > 1e-9
               for s in run.samples)
    }
    if wall:
        blocks.append(render_series_table(
            "Read throughput (overlapped wall time)", "age", wall))
    # Event-queue stores (queue=event) report per-request sojourn
    # percentiles of every read sweep next to the throughput tables.
    latency = {
        f"{name} {label}": [(s.age, getattr(s, field) * 1e3)
                            for s in run.samples]
        for name, run in results.items()
        for label, field in (("rd p50 ms", "read_lat_p50_s"),
                             ("rd p95 ms", "read_lat_p95_s"),
                             ("rd p99 ms", "read_lat_p99_s"))
        if any(s.read_lat_count for s in run.samples)
    }
    if latency:
        blocks.append(render_series_table(
            "Read latency percentiles (queue=event)", "age", latency,
            y_format="{:.3f}"))
    # Scenario runs (--scenario) split each churn interval's per-request
    # distribution by tenant; report the final sampled interval.
    tenant_rows: list[list[object]] = []
    for name, run in results.items():
        last = next((s for s in reversed(run.samples) if s.tenant_lat),
                    None)
        if last is None:
            continue
        for tenant, summ in last.tenant_lat.items():
            tenant_rows.append([
                name, tenant, f"{last.age:g}", int(summ["count"]),
                summ["p50_s"] * 1e3, summ["p95_s"] * 1e3,
                summ["p99_s"] * 1e3,
            ])
    if tenant_rows:
        blocks.append(render_table(
            "Per-tenant churn latency (ms, final interval)",
            ["store", "tenant", "age", "ops", "p50", "p95", "p99"],
            tenant_rows))
    # Fault-tolerance counters only appear once something actually
    # degraded — healthy (or unsharded) runs print the classic tables.
    counters = (("degraded rds", "degraded_reads"), ("retries", "retries"),
                ("failovers", "failovers"), ("rebuilt", "rebuilt_objects"),
                ("dead shards", "dead_shards"))
    degraded = {
        f"{name} {label}": [(s.age, getattr(s, field))
                            for s in run.samples]
        for name, run in results.items()
        for label, field in counters
        if any(getattr(s, field) for s in run.samples)
    }
    if degraded:
        blocks.append(render_series_table(
            "Degraded operation (cumulative)", "age", degraded,
            y_format="{:g}"))
    return "\n\n".join(blocks)


def _checkpoint_args(args: argparse.Namespace) -> dict:
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    return {"checkpoint_dir": args.checkpoint_dir, "resume": args.resume,
            "checkpoint_keep": args.checkpoint_keep,
            "checkpoint_full_interval": args.checkpoint_full_interval}


def cmd_run(args: argparse.Namespace) -> int:
    """Age one backend and print its fragmentation/throughput tables."""
    result = run_experiment(_config_from(args, args.backend),
                            **_checkpoint_args(args))
    print(_result_table({result.backend: result}))
    print(f"\nbulk-load write throughput: "
          f"{result.bulk_load_write_mbps / MB:.2f} MB/s "
          f"({result.objects_loaded} objects, "
          f"{fmt_size(result.live_bytes)} live)")
    if args.json:
        result.save(args.json)
        print(f"results written to {args.json}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Age several backends on one workload and print them side by side."""
    if args.store and not args.store.strip().startswith(":"):
        # A backend-naming spec would silently pin every column to one
        # store and print a comparison that never ran.
        print("compare: --store must not name a backend here; use "
              "':key=val,...' so each --against curve keeps its own "
              "backend (to pin one backend, use 'run')",
              file=sys.stderr)
        return 2
    ckpt = _checkpoint_args(args)
    results = {
        # Each curve checkpoints into its own subdirectory so resumes
        # never cross backends.
        backend: run_experiment(
            _config_from(args, backend),
            checkpoint_dir=(Path(ckpt["checkpoint_dir"]) / backend
                            if ckpt["checkpoint_dir"] else None),
            resume=ckpt["resume"],
            checkpoint_keep=ckpt["checkpoint_keep"],
            checkpoint_full_interval=ckpt["checkpoint_full_interval"],
        )
        for backend in args.against
    }
    print(_result_table(results))
    if args.json:
        payload = {name: run.to_dict() for name, run in results.items()}
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"results written to {args.json}")
    return 0


def cmd_backends(_args: argparse.Namespace) -> int:
    """List the registered storage backends."""
    rows = [[name, desc] for name, desc in backend_descriptions().items()]
    print(render_table("Available backends", ["name", "description"],
                       rows))
    return 0


def cmd_list_backends() -> int:
    """Registry self-check: one ``name: description`` line per backend."""
    for name, desc in backend_descriptions().items():
        print(f"{name}: {desc}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aging experiments from 'Fragmentation in Large "
                    "Object Repositories' (CIDR 2007).",
    )
    parser.add_argument("--list-backends", action="store_true",
                        help="print the backend registry and exit")
    sub = parser.add_subparsers(dest="command", required=False)

    run_parser = sub.add_parser("run", help="age one backend")
    run_parser.add_argument("--backend", choices=BACKENDS,
                            default="filesystem")
    _add_run_arguments(run_parser)
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser(
        "compare", help="age several backends on the same workload"
    )
    compare_parser.add_argument(
        "--against", nargs="+", choices=BACKENDS,
        default=["filesystem", "database"],
    )
    _add_run_arguments(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    backends_parser = sub.add_parser("backends",
                                     help="list available backends")
    backends_parser.set_defaults(func=cmd_backends)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_backends:
        return cmd_list_backends()
    if args.command is None:
        parser.error("a subcommand is required (run, compare, backends)")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
