"""The database facade: devices, allocation maps, tables, BLOBs, WAL.

:class:`SimDatabase` wires the substrate together the way the paper's
SQL Server instance was configured (Section 4.2): a dedicated data
device holding one page file, a dedicated log device, bulk-logged mode,
out-of-row BLOB storage, metadata heap tables in the same file, ghost
deallocation.  Operations auto-commit by default (each safe write in the
paper is one transaction); bulk loaders may batch commits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.blobstore import BlobStore
from repro.db.bufferpool import BufferPool
from repro.db.gam import GamAllocator
from repro.db.ghost import GhostCleaner
from repro.db.heap import HeapTable
from repro.db.pagefile import PageFile
from repro.db.wal import WriteAheadLog
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError
from repro.units import DEFAULT_WRITE_REQUEST, MB, PAGE_SIZE, PAGES_PER_EXTENT


@dataclass(frozen=True)
class DbConfig:
    """Tunables for the simulated database."""

    #: Application write request size (must be a multiple of the page size).
    write_request: int = DEFAULT_WRITE_REQUEST
    #: Buffer pool frames for metadata pages.
    buffer_pool_pages: int = 4096
    #: Cleaner ticks between ghost-cleanup sweeps (0 = immediate frees).
    #: A tick is one write request or one namespace operation.
    ghost_cleanup_interval_ops: int = 16
    #: Pages deallocated per sweep (None = whole eligible backlog).
    ghost_max_pages_per_sweep: int | None = 128
    #: Minimum ticks a page stays ghost before it may be freed.
    ghost_min_age_ops: int = 256
    #: LOB-tree fanout (runs per leaf / children per node).
    lob_fanout: int = 128
    #: Bulk-logged mode: BLOB payloads bypass the log (paper Section 4).
    bulk_logged: bool = True
    #: Log device capacity when the facade creates it.
    log_device_bytes: int = 64 * MB
    #: Charge device I/O for log writes (off simplifies unit tests).
    charge_log_io: bool = True

    def __post_init__(self) -> None:
        if self.write_request % PAGE_SIZE != 0:
            raise ConfigError("write_request must be a multiple of 8 KB pages")


class SimDatabase:
    """A single-database server over dedicated data and log devices."""

    def __init__(self, data_device: BlockDevice,
                 log_device: BlockDevice | None = None,
                 config: DbConfig | None = None) -> None:
        self.config = config or DbConfig()
        self.data_device = data_device
        if log_device is None:
            log_device = BlockDevice(scaled_disk(self.config.log_device_bytes))
        self.log_device = log_device

        num_pages = data_device.geometry.capacity // PAGE_SIZE
        num_extents = num_pages // PAGES_PER_EXTENT
        if num_extents < 2:
            raise ConfigError("data device too small for a page file")
        self.pagefile = PageFile(data_device, base=0,
                                 num_pages=num_extents * PAGES_PER_EXTENT)
        self.gam = GamAllocator(num_extents)
        # Extent 0 holds the boot page and allocation maps.
        system_extent = self.gam.alloc_uniform_extent()
        if system_extent != 0:
            raise ConfigError("expected extent 0 for system pages")
        self.wal = WriteAheadLog(log_device,
                                 bulk_logged=self.config.bulk_logged,
                                 charge_io=self.config.charge_log_io)
        self.ghost = GhostCleaner(
            self.gam,
            cleanup_interval_ops=self.config.ghost_cleanup_interval_ops,
            max_pages_per_sweep=self.config.ghost_max_pages_per_sweep,
            min_age_ops=self.config.ghost_min_age_ops,
        )
        # Deletes ghost their pages *through* the log: the cleaner sees
        # them only once the deleting commit is forced (Section 2's
        # deferred-free rule, enforced by construction).
        self.wal.on_publish = self.ghost.ghost_pages
        #: Pages of rolled-back (uncommitted) deletes found by crash
        #: recovery: still allocated, never freeable — the row survived.
        self.rolled_back_pages: list[int] = []
        self.pool = BufferPool(self.pagefile,
                               capacity_pages=self.config.buffer_pool_pages)
        self.blobs = BlobStore(self.gam, self.pagefile, self.wal, self.ghost,
                               lob_fanout=self.config.lob_fanout)
        self._tables: dict[str, HeapTable] = {}

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def create_table(self, name: str, **kwargs) -> HeapTable:
        if name in self._tables:
            raise ConfigError(f"table {name!r} exists")
        table = HeapTable(name, self.gam, self.pool, **kwargs)
        self._tables[name] = table
        return table

    def table(self, name: str) -> HeapTable:
        try:
            return self._tables[name]
        except KeyError:
            raise ConfigError(f"no table {name!r}") from None

    # ------------------------------------------------------------------
    # BLOB transactions
    # ------------------------------------------------------------------
    def put_blob(self, *, size: int | None = None,
                 data: bytes | None = None, commit: bool = True) -> int:
        """Insert a BLOB; bulk-logged, forced at commit."""
        blob_id = self.blobs.put(size=size, data=data,
                                 write_request=self.config.write_request)
        self.ghost.on_operation()
        if commit:
            self.commit()
        return blob_id

    def get_blob(self, blob_id: int, offset: int = 0,
                 length: int | None = None) -> bytes | None:
        return self.blobs.get(blob_id, offset, length)

    def delete_blob(self, blob_id: int, *, commit: bool = True) -> None:
        self.blobs.delete(blob_id)
        self.ghost.on_operation()
        if commit:
            self.commit()

    def replace_blob(self, blob_id: int, *, size: int | None = None,
                     data: bytes | None = None, commit: bool = True) -> int:
        """The safe-update transaction: insert new value, delete old.

        Mirrors the paper's wholesale-replacement model — SQL Server
        writes the new BLOB to freshly allocated pages, the old ones
        ghost.  Returns the new blob id.
        """
        new_id = self.blobs.put(size=size, data=data,
                                write_request=self.config.write_request)
        self.blobs.delete(blob_id)
        self.ghost.on_operation()
        if commit:
            self.commit()
        return new_id

    def commit(self) -> None:
        """Force the log, then force bulk-logged data pages (Section 4:
        "newly allocated BLOBs are written to the page file and forced
        to disk at commit")."""
        self.wal.commit()
        self.data_device.flush()

    def checkpoint(self) -> None:
        """Flush dirty metadata pages and drain ghost pages.

        The commit runs before the drain: forcing the log publishes any
        buffered ghost records to the cleaner, so the drain reclaims the
        whole durable backlog.
        """
        self.pool.flush_all()
        self.commit()
        self.ghost.drain()

    def recover_after_crash(self):
        """Restart after a crash: redo durable ghost records, roll back
        the rest.

        Ghost records whose commit forced but whose cleaner hand-off was
        lost are republished (the cleaner will deallocate them); records
        never forced are rolled back — on a real server those rows still
        exist, so their pages stay allocated and are tracked in
        :attr:`rolled_back_pages` (never freed; the invariant the
        WAL kill-point matrix asserts).  Returns the
        :class:`~repro.db.wal.WalRecoveryReport`.
        """
        report = self.wal.recover()
        self.rolled_back_pages.extend(report.discarded_pages())
        return report

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return self.gam.free_page_count * PAGE_SIZE

    @property
    def capacity(self) -> int:
        return self.pagefile.num_pages * PAGE_SIZE

    def occupancy(self) -> float:
        return 1.0 - self.gam.free_page_count / self.pagefile.num_pages

    def check_invariants(self) -> None:
        self.gam.check_invariants()
        for blob_id in self.blobs.blob_ids():
            self.blobs.tree_of(blob_id).check_invariants()
