"""Out-of-row BLOB storage over the GAM allocator and LOB trees.

The paper's database configuration (Section 4.2): BLOBs and metadata in
the same filegroup, BLOB data *out of row* so object bytes never
decluster the metadata pages.  Each BLOB is a :class:`LobTree` whose
leaves point at data pages allocated through the address-ordered GAM —
space arrives one application write request at a time (64 KB = one
extent), exactly like the filesystem's per-append allocation.

Deletes ghost their pages; the :class:`GhostCleaner` returns them to the
GAM later.  The resulting reuse pattern — lowest-address-first at extent
granularity with a deferred-free window — is what produces the near-
linear fragmentation growth of Figures 2 and 5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.alloc.extent import Extent
from repro.db.btree import LobTree
from repro.db.gam import GamAllocator
from repro.db.ghost import GhostCleaner
from repro.db.pagefile import PageFile, pages_to_extents
from repro.db.wal import WriteAheadLog
from repro.errors import AllocationError, BlobNotFoundError, ConfigError
from repro.units import PAGE_SIZE, ceil_div


@dataclass
class _BlobRecord:
    blob_id: int
    size: int
    tree: LobTree


class BlobStore:
    """BLOB create/read/delete with per-write-request allocation."""

    def __init__(self, gam: GamAllocator, pagefile: PageFile,
                 wal: WriteAheadLog, ghost: GhostCleaner, *,
                 lob_fanout: int = 128) -> None:
        self.gam = gam
        self.pagefile = pagefile
        self.wal = wal
        self.ghost = ghost
        self.lob_fanout = lob_fanout
        self._blobs: dict[int, _BlobRecord] = {}
        self._next_id = itertools.count(1)

    # ------------------------------------------------------------------
    # LOB-tree node page plumbing
    # ------------------------------------------------------------------
    def _alloc_node_page(self) -> int:
        # Interior/leaf nodes take mixed pages, interleaving with data.
        try:
            return self.gam.alloc_page()
        except AllocationError:
            self.ghost.sweep(ignore_age=True, max_pages=8192)
            try:
                return self.gam.alloc_page()
            except AllocationError:
                self.ghost.drain()
                return self.gam.alloc_page()

    def _free_node_page(self, page_no: int) -> None:
        if page_no >= 0:
            self.gam.free_page(page_no)

    def _new_tree(self) -> LobTree:
        return LobTree(
            fanout=self.lob_fanout,
            alloc_node_page=self._alloc_node_page,
            free_node_page=self._free_node_page,
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def put(self, *, size: int | None = None, data: bytes | None = None,
            write_request: int = 64 * 1024) -> int:
        """Store a new BLOB, allocating per ``write_request`` chunk.

        Returns the new blob id.  The caller (the database facade) owns
        transaction boundaries — this method logs but does not commit.
        """
        if (size is None) == (data is None):
            raise ConfigError("pass exactly one of size or data")
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        if total <= 0:
            raise ConfigError("blob size must be positive")
        if write_request % PAGE_SIZE != 0:
            raise ConfigError("write_request must be a multiple of the page size")
        record = _BlobRecord(
            blob_id=next(self._next_id), size=total, tree=self._new_tree()
        )
        cursor = 0
        while cursor < total:
            chunk = min(write_request, total - cursor)
            npages = ceil_div(chunk, PAGE_SIZE)
            try:
                pages = self.gam.alloc_pages(npages)
            except AllocationError:
                # Allocation pressure forces ghost cleanup, exactly as
                # SQL Server's cleanup task runs on demand when a scan
                # finds no free space.
                self.ghost.sweep(ignore_age=True,
                                 max_pages=max(8192, 4 * npages))
                try:
                    pages = self.gam.alloc_pages(npages)
                except AllocationError:
                    self.ghost.drain()
                    pages = self.gam.alloc_pages(npages)
            chunk_data: bytes | None = None
            if data is not None:
                chunk_data = data[cursor: cursor + chunk]
                chunk_data += b"\x00" * (npages * PAGE_SIZE - chunk)
            self._write_in_logical_order(pages, chunk_data)
            for start, count in pages_to_runs(pages):
                record.tree.append_run(start, count)
            self.wal.log_operation(payload_bytes=chunk)
            cursor += chunk
            # The background cleaner runs concurrently with the insert:
            # one tick per write request lets freed pages trickle back
            # *between* a BLOB's chunks, so successive chunks can land
            # on opposite sides of the allocation frontier — the
            # per-request scatter behind "one fragment per 64 KB".
            self.ghost.on_operation()
        self._blobs[record.blob_id] = record
        return record.blob_id

    def _write_in_logical_order(self, pages: list[int],
                                data: bytes | None) -> None:
        """One device request covering the pages in logical order."""
        extents = pages_to_extents(pages, base=self.pagefile.base)
        self.pagefile.device.write_extents(extents, data)

    def get(self, blob_id: int, offset: int = 0,
            length: int | None = None) -> bytes | None:
        """Timed read of a byte range of the BLOB."""
        record = self._lookup(blob_id)
        if length is None:
            length = record.size - offset
        if offset < 0 or length < 0 or offset + length > record.size:
            raise ConfigError(
                f"read [{offset}, {offset + length}) outside blob of "
                f"{record.size} bytes"
            )
        if length == 0:
            return b"" if self.pagefile.device.stores_data else None
        first_page = offset // PAGE_SIZE
        last_page = (offset + length - 1) // PAGE_SIZE
        runs = record.tree.runs_in_range(first_page,
                                         last_page - first_page + 1)
        extents = [
            Extent(self.pagefile.base + start * PAGE_SIZE, count * PAGE_SIZE)
            for start, count in runs
        ]
        raw = self.pagefile.device.read_extents(extents)
        if raw is None:
            return None
        skip = offset - first_page * PAGE_SIZE
        return raw[skip: skip + length]

    def delete(self, blob_id: int) -> None:
        """Delete a BLOB; its pages ghost until the cleaner sweeps.

        The pages ride the WAL's ghost record and reach the cleaner
        only when the deleting transaction's commit is forced — freed
        space is never reallocatable before the delete is durable.
        """
        record = self._blobs.pop(self._lookup(blob_id).blob_id)
        data_runs = record.tree.destroy()  # node pages free via callback
        pages: list[int] = []
        for start, count in data_runs:
            pages.extend(range(start, start + count))
        self.wal.log_ghost(pages, token=blob_id)

    def size_of(self, blob_id: int) -> int:
        return self._lookup(blob_id).size

    def exists(self, blob_id: int) -> bool:
        return blob_id in self._blobs

    def blob_ids(self) -> list[int]:
        return list(self._blobs)

    def blob_extents(self, blob_id: int) -> list[Extent]:
        """Physical byte extents of the BLOB's data pages, logical order."""
        record = self._lookup(blob_id)
        return [
            Extent(self.pagefile.base + start * PAGE_SIZE, count * PAGE_SIZE)
            for start, count in record.tree.all_runs()
        ]

    # ------------------------------------------------------------------
    # Range updates (the Exodus capability, paper Section 2)
    # ------------------------------------------------------------------
    def insert_range(self, blob_id: int, offset: int, *,
                     size: int | None = None,
                     data: bytes | None = None,
                     write_request: int = 64 * 1024) -> None:
        """Insert bytes *inside* a BLOB without rewriting its tail.

        This is the B-tree storage advantage the paper's background
        section contrasts with filesystems ("insertions and deletions
        within an object" are efficient, at the cost of fragmentation —
        the inserted pages land wherever the allocator puts them, never
        adjacent to their logical neighbours).

        ``offset`` and the inserted length must be page-aligned: SQL
        Server's LOB trees shuffle whole fragments, and modelling
        sub-page splits would add read-modify-write of neighbour pages
        without changing any layout behaviour.
        """
        if (size is None) == (data is None):
            raise ConfigError("pass exactly one of size or data")
        total = len(data) if data is not None else int(size)  # type: ignore[arg-type]
        record = self._lookup(blob_id)
        if offset % PAGE_SIZE or total % PAGE_SIZE:
            raise ConfigError(
                "insert_range requires page-aligned offset and length"
            )
        if not 0 <= offset <= record.size:
            raise ConfigError(f"offset {offset} outside blob")
        position = offset // PAGE_SIZE
        cursor = 0
        while cursor < total:
            chunk = min(write_request, total - cursor)
            npages = ceil_div(chunk, PAGE_SIZE)
            try:
                pages = self.gam.alloc_pages(npages)
            except AllocationError:
                self.ghost.sweep(ignore_age=True, max_pages=8192)
                pages = self.gam.alloc_pages(npages)
            chunk_data: bytes | None = None
            if data is not None:
                chunk_data = data[cursor: cursor + chunk]
            self._write_in_logical_order(pages, chunk_data)
            for start, count in pages_to_runs(pages):
                record.tree.insert_run(position, start, count)
                position += count
            self.wal.log_operation(payload_bytes=chunk)
            self.ghost.on_operation()
            cursor += chunk
        record.size += total

    def delete_range(self, blob_id: int, offset: int, length: int) -> None:
        """Remove a page-aligned byte range from inside a BLOB.

        The removed pages ghost like a whole-object delete; logical
        bytes after the range shift down without any page moving.
        """
        record = self._lookup(blob_id)
        if offset % PAGE_SIZE or length % PAGE_SIZE:
            raise ConfigError(
                "delete_range requires page-aligned offset and length"
            )
        if offset < 0 or length < 0 or offset + length > record.size:
            raise ConfigError("range outside blob")
        if length == 0:
            return
        removed = record.tree.delete_range(offset // PAGE_SIZE,
                                           length // PAGE_SIZE)
        pages: list[int] = []
        for start, count in removed:
            pages.extend(range(start, start + count))
        self.wal.log_ghost(pages, token=blob_id)
        self.ghost.on_operation()
        record.size -= length

    def tree_of(self, blob_id: int) -> LobTree:
        """The BLOB's LOB tree (for range-update extensions and tests)."""
        return self._lookup(blob_id).tree

    def _lookup(self, blob_id: int) -> _BlobRecord:
        try:
            return self._blobs[blob_id]
        except KeyError:
            raise BlobNotFoundError(f"no blob {blob_id}") from None

    def __len__(self) -> int:
        return len(self._blobs)


def pages_to_runs(pages: list[int]) -> list[tuple[int, int]]:
    """Group page numbers into (start, count) runs, order-preserving.

    >>> pages_to_runs([4, 5, 6, 9])
    [(4, 3), (9, 1)]
    """
    runs: list[tuple[int, int]] = []
    for page_no in pages:
        if runs and runs[-1][0] + runs[-1][1] == page_no:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((page_no, 1))
    return runs
