"""Write-ahead log with bulk-logged mode and delete-record durability.

The paper ran SQL Server in *bulk logged* mode: newly allocated BLOBs are
written to the data file and forced at commit; only allocation metadata
goes through the log, avoiding a second full copy of every object
(Section 4).  The log lives on its own device — "SQL was given a
dedicated log and data drive" — so log appends are sequential and do not
steal seeks from the data path.

Crash semantics
---------------
Deletes are the dangerous operation (the paper's Section 2 rule: freed
space must never be reallocatable before the delete that freed it is
durable).  A delete logs a *ghost record* — the pages it ghosts ride the
log entry — and those pages reach the :class:`~repro.db.ghost.
GhostCleaner` (becoming candidates for deallocation) only when the
commit that logged them is **forced**.  The force is the single
durability point, mirroring :class:`repro.fs.journal.Journal`:

* ghost records logged but not forced are *pending* — a crash discards
  them (the transaction rolled back; the row and its pages are still
  live, and recovery must never free that space);
* records whose force completed but whose hand-off to the cleaner was
  lost are *replayable* — recovery redoes the hand-off, ARIES style.

:meth:`recover` applies exactly that rule; the crash-injection matrix
(``tests/test_crash_wal.py``) holds every kill point to it.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.disk.device import BlockDevice
from repro.errors import ConfigError


@dataclass(frozen=True)
class GhostRecord:
    """One logged delete: the transaction token and the pages it ghosts."""

    token: int
    pages: tuple[int, ...]


@dataclass(frozen=True)
class WalRecoveryReport:
    """What :meth:`WriteAheadLog.recover` did on restart after a crash."""

    #: Durable ghost records whose cleaner hand-off was redone.
    replayed: tuple[GhostRecord, ...]
    #: Non-durable ghost records rolled back (pages stay allocated).
    discarded: tuple[GhostRecord, ...]

    def replayed_pages(self) -> list[int]:
        return [p for record in self.replayed for p in record.pages]

    def discarded_pages(self) -> list[int]:
        return [p for record in self.discarded for p in record.pages]


class WriteAheadLog:
    """Sequential circular log on a dedicated device."""

    #: Bytes per logged operation record (allocation metadata only).
    RECORD_BYTES = 512

    def __init__(self, device: BlockDevice, *, bulk_logged: bool = True,
                 charge_io: bool = True,
                 on_publish: Callable[[list[int]], None] | None = None
                 ) -> None:
        self.device = device
        self.bulk_logged = bulk_logged
        self._charge_io = charge_io
        self._cursor = 0
        self._pending_records = 0
        self.records = 0
        self.commits = 0
        self.logged_bytes = 0
        #: Where durable ghost records go (the cleaner's intake); set by
        #: the database facade.  None drops them (cost-only unit tests).
        self.on_publish = on_publish
        #: Ghost records logged since the last force (non-durable).
        self._pending_ghosts: list[GhostRecord] = []
        #: Durable ghost records not yet handed to the cleaner;
        #: non-empty only inside a commit's force→publish window.
        self._replayable_ghosts: list[GhostRecord] = []
        #: Optional fault-injection hook: called with a label at the
        #: commit's host-side crash point (between the force and the
        #: cleaner hand-off); raising aborts the commit there.
        self.crash_hook = None

    def _append(self, nbytes: int) -> None:
        if self._cursor + nbytes > self.device.geometry.capacity:
            self._cursor = 0
        if self._charge_io:
            self.device.write(self._cursor, nbytes)
        self._cursor += nbytes
        self.logged_bytes += nbytes

    def log_operation(self, *, payload_bytes: int = 0) -> None:
        """Log one operation.

        In bulk-logged mode BLOB payloads are *not* logged — only the
        fixed-size allocation record.  In full-recovery mode the payload
        rides the log too (the configuration the paper avoided because
        it doubles the write volume).
        """
        if payload_bytes < 0:
            raise ConfigError("payload_bytes must be >= 0")
        nbytes = self.RECORD_BYTES
        if not self.bulk_logged:
            nbytes += payload_bytes
        self._append(nbytes)
        self.records += 1
        self._pending_records += 1

    def log_ghost(self, pages: Sequence[int], *, token: int = 0) -> None:
        """Log one delete's ghost record.

        Cost-identical to :meth:`log_operation` (one fixed-size record),
        but the ghosted pages travel with the record: they reach the
        ghost cleaner only at the commit that makes this record durable
        — never before, which is exactly the deferred-free rule.
        """
        self._append(self.RECORD_BYTES)
        self.records += 1
        self._pending_records += 1
        self._pending_ghosts.append(GhostRecord(token, tuple(pages)))

    def commit(self) -> None:
        """Group-commit: force the log, then publish ghost records."""
        if (self._pending_records == 0 and not self._pending_ghosts
                and not self._replayable_ghosts):
            return
        if self._charge_io:
            self.device.flush()
        # The force is the durability point: from here the logged ghost
        # records survive a crash (they move to the replayable set)
        # even though the cleaner has not seen them yet.
        self._pending_records = 0
        self.commits += 1
        if self._pending_ghosts:
            self._replayable_ghosts.extend(self._pending_ghosts)
            self._pending_ghosts = []
        self._crash("wal-commit:after_force")
        self._publish_replayable()

    def _publish_replayable(self) -> None:
        # Pop each record only after its hand-off succeeds: a failure
        # mid-publish leaves the rest replayable, never lost.
        ghosts = self._replayable_ghosts
        while ghosts:
            record = ghosts[0]
            if self.on_publish is not None:
                self.on_publish(list(record.pages))
            ghosts.pop(0)

    def _crash(self, label: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(label)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def recover(self) -> WalRecoveryReport:
        """Restart-after-crash: replay durable ghost records, roll back
        the rest.

        Replayable records (force completed, cleaner hand-off lost) are
        redone; pending records (never forced) are discarded — their
        transactions rolled back, so the pages they name stay allocated
        and must never be freed.  The log cursor stays where it was
        (the circular log is self-describing on a real system).
        """
        replayed = tuple(self._replayable_ghosts)
        self._publish_replayable()
        discarded = tuple(self._pending_ghosts)
        self._pending_ghosts = []
        self._pending_records = 0
        return WalRecoveryReport(replayed=replayed, discarded=discarded)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_ghosts(self) -> tuple[GhostRecord, ...]:
        """Ghost records logged but not durably committed (a copy)."""
        return tuple(self._pending_ghosts)

    @property
    def replayable_ghosts(self) -> tuple[GhostRecord, ...]:
        """Durable ghost records not yet handed to the cleaner (a copy)."""
        return tuple(self._replayable_ghosts)
