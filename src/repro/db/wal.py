"""Write-ahead log with bulk-logged mode.

The paper ran SQL Server in *bulk logged* mode: newly allocated BLOBs are
written to the data file and forced at commit; only allocation metadata
goes through the log, avoiding a second full copy of every object
(Section 4).  The log lives on its own device — "SQL was given a
dedicated log and data drive" — so log appends are sequential and do not
steal seeks from the data path.
"""

from __future__ import annotations

from repro.disk.device import BlockDevice
from repro.errors import ConfigError


class WriteAheadLog:
    """Sequential circular log on a dedicated device."""

    #: Bytes per logged operation record (allocation metadata only).
    RECORD_BYTES = 512

    def __init__(self, device: BlockDevice, *, bulk_logged: bool = True,
                 charge_io: bool = True) -> None:
        self.device = device
        self.bulk_logged = bulk_logged
        self._charge_io = charge_io
        self._cursor = 0
        self._pending_records = 0
        self.records = 0
        self.commits = 0
        self.logged_bytes = 0

    def _append(self, nbytes: int) -> None:
        if self._cursor + nbytes > self.device.geometry.capacity:
            self._cursor = 0
        if self._charge_io:
            self.device.write(self._cursor, nbytes)
        self._cursor += nbytes
        self.logged_bytes += nbytes

    def log_operation(self, *, payload_bytes: int = 0) -> None:
        """Log one operation.

        In bulk-logged mode BLOB payloads are *not* logged — only the
        fixed-size allocation record.  In full-recovery mode the payload
        rides the log too (the configuration the paper avoided because
        it doubles the write volume).
        """
        if payload_bytes < 0:
            raise ConfigError("payload_bytes must be >= 0")
        nbytes = self.RECORD_BYTES
        if not self.bulk_logged:
            nbytes += payload_bytes
        self._append(nbytes)
        self.records += 1
        self._pending_records += 1

    def commit(self) -> None:
        """Group-commit: force the log (one flush per commit)."""
        if self._pending_records == 0:
            return
        if self._charge_io:
            self.device.flush()
        self._pending_records = 0
        self.commits += 1
