"""GAM/PFS-style allocation maps: address-ordered page and extent allocation.

SQL Server finds free space by scanning allocation bitmaps from the start
of the file: the GAM tracks free *extents* (8 pages, 64 KB), the PFS
tracks free *pages* within partially used extents.  The consequence the
paper measures is that space is reused **lowest address first, at
page/extent granularity, with no preference for large contiguous runs**
— the opposite of NTFS's decreasing-size run cache.  Combined with
deferred (ghost) deallocation this is the mechanism behind SQL Server's
near-linear fragmentation growth in Figures 2 and 5.

:class:`GamAllocator` implements that discipline exactly.  It is pure
bookkeeping — no I/O — so it can be unit- and property-tested in
isolation; the page file charges the device.
"""

from __future__ import annotations

import bisect

from repro.errors import AllocationError, ConfigError, CorruptionError
from repro.units import PAGES_PER_EXTENT

_FULL_MASK = (1 << PAGES_PER_EXTENT) - 1


class GamAllocator:
    """Page/extent allocator over ``num_extents`` 8-page extents.

    Internal state per extent is a bitmask of *used* pages.  Two sorted
    lists index the states for address-ordered scans: fully free extents
    (GAM) and partially free extents (PFS).
    """

    def __init__(self, num_extents: int) -> None:
        if num_extents <= 0:
            raise ConfigError("num_extents must be positive")
        self.num_extents = num_extents
        self.num_pages = num_extents * PAGES_PER_EXTENT
        self._used_mask: list[int] = [0] * num_extents
        self._free_extents: list[int] = list(range(num_extents))
        self._partial_extents: list[int] = []

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def extent_of(page_no: int) -> int:
        return page_no // PAGES_PER_EXTENT

    @staticmethod
    def page_in_extent(page_no: int) -> int:
        return page_no % PAGES_PER_EXTENT

    def _remove_from(self, lst: list[int], value: int) -> None:
        idx = bisect.bisect_left(lst, value)
        if idx >= len(lst) or lst[idx] != value:
            raise CorruptionError(f"extent {value} not in expected list")
        del lst[idx]

    def _reclassify(self, extent_id: int, old_mask: int, new_mask: int) -> None:
        """Move the extent between the free/partial/full classes."""
        def class_of(mask: int) -> str:
            if mask == 0:
                return "free"
            if mask == _FULL_MASK:
                return "full"
            return "partial"

        old_class, new_class = class_of(old_mask), class_of(new_mask)
        if old_class == new_class:
            return
        if old_class == "free":
            self._remove_from(self._free_extents, extent_id)
        elif old_class == "partial":
            self._remove_from(self._partial_extents, extent_id)
        if new_class == "free":
            bisect.insort(self._free_extents, extent_id)
        elif new_class == "partial":
            bisect.insort(self._partial_extents, extent_id)

    def _set_mask(self, extent_id: int, new_mask: int) -> None:
        old = self._used_mask[extent_id]
        self._used_mask[extent_id] = new_mask
        self._reclassify(extent_id, old, new_mask)

    # ------------------------------------------------------------------
    # Allocation (address-ordered, per the GAM scan)
    # ------------------------------------------------------------------
    def alloc_uniform_extent(self) -> int | None:
        """Allocate the lowest fully-free extent; all 8 pages become used.

        Returns the extent id, or None when no fully-free extent exists
        (the caller then falls back to page-at-a-time allocation).
        """
        if not self._free_extents:
            return None
        extent_id = self._free_extents[0]
        self._set_mask(extent_id, _FULL_MASK)
        return extent_id

    def alloc_page(self) -> int:
        """Allocate the lowest-address free page (mixed-extent style)."""
        if self._partial_extents and (
            not self._free_extents
            or self._partial_extents[0] < self._free_extents[0]
        ):
            extent_id = self._partial_extents[0]
        elif self._free_extents:
            extent_id = self._free_extents[0]
        else:
            raise AllocationError("database file is full")
        mask = self._used_mask[extent_id]
        for bit in range(PAGES_PER_EXTENT):
            if not mask & (1 << bit):
                self._set_mask(extent_id, mask | (1 << bit))
                return extent_id * PAGES_PER_EXTENT + bit
        raise CorruptionError(f"extent {extent_id} misclassified as non-full")

    def alloc_pages(self, count: int) -> list[int]:
        """Allocate ``count`` pages, preferring whole uniform extents.

        SQL Server switches an allocation unit to uniform extents once it
        exceeds 8 pages; large BLOB appends therefore consume whole
        extents while small remainders take individual pages.
        """
        if count <= 0:
            raise ConfigError("count must be positive")
        if count > self.free_page_count:
            raise AllocationError(
                f"need {count} pages, only {self.free_page_count} free"
            )
        pages: list[int] = []
        remaining = count
        while remaining >= PAGES_PER_EXTENT:
            extent_id = self.alloc_uniform_extent()
            if extent_id is None:
                break
            base = extent_id * PAGES_PER_EXTENT
            pages.extend(range(base, base + PAGES_PER_EXTENT))
            remaining -= PAGES_PER_EXTENT
        for _ in range(remaining):
            pages.append(self.alloc_page())
        return pages

    # ------------------------------------------------------------------
    # Deallocation
    # ------------------------------------------------------------------
    def free_page(self, page_no: int) -> None:
        if not 0 <= page_no < self.num_pages:
            raise CorruptionError(f"page {page_no} out of range")
        extent_id = self.extent_of(page_no)
        bit = 1 << self.page_in_extent(page_no)
        mask = self._used_mask[extent_id]
        if not mask & bit:
            raise CorruptionError(f"double free of page {page_no}")
        self._set_mask(extent_id, mask & ~bit)

    def free_pages(self, page_nos: list[int]) -> None:
        for page_no in page_nos:
            self.free_page(page_no)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_page_used(self, page_no: int) -> bool:
        extent_id = self.extent_of(page_no)
        return bool(self._used_mask[extent_id]
                    & (1 << self.page_in_extent(page_no)))

    @property
    def free_page_count(self) -> int:
        full_free = len(self._free_extents) * PAGES_PER_EXTENT
        partial_free = sum(
            PAGES_PER_EXTENT - self._used_mask[e].bit_count()
            for e in self._partial_extents
        )
        return full_free + partial_free

    @property
    def used_page_count(self) -> int:
        return self.num_pages - self.free_page_count

    @property
    def free_extent_count(self) -> int:
        return len(self._free_extents)

    @property
    def partial_extent_count(self) -> int:
        return len(self._partial_extents)

    def check_invariants(self) -> None:
        """The class lists exactly mirror the per-extent masks."""
        free = [e for e in range(self.num_extents) if self._used_mask[e] == 0]
        partial = [
            e for e in range(self.num_extents)
            if 0 < self._used_mask[e] < _FULL_MASK
        ]
        if free != self._free_extents:
            raise CorruptionError("GAM free-extent list out of sync")
        if partial != self._partial_extents:
            raise CorruptionError("PFS partial-extent list out of sync")
        for mask in self._used_mask:
            if not 0 <= mask <= _FULL_MASK:
                raise CorruptionError("extent mask out of range")
