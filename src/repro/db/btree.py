"""Exodus-style large-object B-tree (the LOB tree).

SQL Server stores large out-of-row values the way the Exodus storage
manager did (Carey et al., VLDB 1986): a B-tree keyed by *byte position*
whose leaves point at data pages.  This gives O(log n) random access into
a huge object and efficient insertion/deletion of ranges *within* the
object — the capability the paper's Section 2 contrasts with
rewrite-the-tail filesystems.

:class:`LobTree` is a counted B+-tree: leaves hold *runs* of physically
consecutive pages ``(start_page, count)``, interior nodes hold children
plus cached subtree page counts, so position lookups descend by
subtraction rather than stored keys.  Interior nodes and leaves occupy
real pages (allocated through a caller-supplied allocator), so the tree's
own pages interleave with data pages on disk exactly as in SQL Server —
one of the interleaving sources the fragmentation analyzer sees.

Complexity notes: ``append_run``/``insert_run`` are O(log n) with node
splits; ``delete_range`` extracts and rebuilds (O(n) in *runs*, which is
the object's fragment count — tens, not thousands), trading speed we do
not need for structural simplicity we can test exhaustively.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.errors import ConfigError, CorruptionError

#: A run of physically consecutive pages: (first page number, page count).
Run = tuple[int, int]


class _Node:
    __slots__ = ("leaf", "runs", "children", "page_no")

    def __init__(self, *, leaf: bool, page_no: int) -> None:
        self.leaf = leaf
        self.page_no = page_no
        self.runs: list[Run] = []        # leaf payload
        self.children: list[_Node] = []  # interior payload

    def total_pages(self) -> int:
        if self.leaf:
            return sum(count for _, count in self.runs)
        return sum(child.total_pages() for child in self.children)


class LobTree:
    """Counted B+-tree mapping logical page positions to physical runs.

    Parameters
    ----------
    fanout:
        Maximum runs per leaf and children per interior node.
    alloc_node_page / free_node_page:
        Callbacks giving each node a physical page (and returning it on
        node death).  Pass None to keep the tree purely in memory.
    """

    def __init__(self, *, fanout: int = 32,
                 alloc_node_page: Callable[[], int] | None = None,
                 free_node_page: Callable[[int], None] | None = None) -> None:
        if fanout < 4:
            raise ConfigError("fanout must be >= 4")
        self.fanout = fanout
        self._alloc_page = alloc_node_page or (lambda: -1)
        self._free_page = free_node_page or (lambda page_no: None)
        self._root = self._new_node(leaf=True)
        self._count_cache: int | None = 0

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def _new_node(self, *, leaf: bool) -> _Node:
        return _Node(leaf=leaf, page_no=self._alloc_page())

    def _drop_node(self, node: _Node) -> None:
        self._free_page(node.page_no)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_pages(self) -> int:
        if self._count_cache is None:
            self._count_cache = self._root.total_pages()
        return self._count_cache

    def all_runs(self) -> list[Run]:
        """Every run in logical order."""
        return list(self._iter_runs(self._root))

    def _iter_runs(self, node: _Node) -> Iterator[Run]:
        if node.leaf:
            yield from node.runs
        else:
            for child in node.children:
                yield from self._iter_runs(child)

    def runs_in_range(self, start: int, count: int) -> list[Run]:
        """Physical runs covering logical pages ``[start, start+count)``.

        Raises when the range extends past the object.
        """
        if start < 0 or count < 0 or start + count > self.total_pages:
            raise ConfigError(
                f"range [{start}, {start + count}) outside object of "
                f"{self.total_pages} pages"
            )
        if count == 0:
            return []
        out: list[Run] = []
        remaining = count
        skip = start
        for run_start, run_count in self._iter_runs(self._root):
            if skip >= run_count:
                skip -= run_count
                continue
            take = min(run_count - skip, remaining)
            out.append((run_start + skip, take))
            remaining -= take
            skip = 0
            if remaining == 0:
                break
        return out

    def page_at(self, position: int) -> int:
        """Physical page holding logical page ``position`` (O(log n))."""
        if not 0 <= position < self.total_pages:
            raise ConfigError(f"position {position} outside object")
        node = self._root
        while not node.leaf:
            for child in node.children:
                pages = child.total_pages()
                if position < pages:
                    node = child
                    break
                position -= pages
            else:
                raise CorruptionError("count descent fell off the tree")
        for run_start, run_count in node.runs:
            if position < run_count:
                return run_start + position
            position -= run_count
        raise CorruptionError("leaf counts disagree with descent")

    def node_pages(self) -> list[int]:
        """Physical pages occupied by the tree's own nodes."""
        pages: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            pages.append(node.page_no)
            if not node.leaf:
                stack.extend(node.children)
        return pages

    def depth(self) -> int:
        depth = 1
        node = self._root
        while not node.leaf:
            depth += 1
            node = node.children[0]
        return depth

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append_run(self, start: int, count: int) -> None:
        """Add ``count`` pages at the logical end of the object."""
        self.insert_run(self.total_pages, start, count)

    def insert_run(self, position: int, start: int, count: int) -> None:
        """Insert pages so they begin at logical page ``position``.

        The Exodus operation: bytes after ``position`` shift right
        without any data page being rewritten.
        """
        if count <= 0:
            raise ConfigError("count must be positive")
        if start < 0:
            raise ConfigError("start must be >= 0")
        if not 0 <= position <= self.total_pages:
            raise ConfigError(
                f"position {position} outside object of "
                f"{self.total_pages} pages"
            )
        self._count_cache = None
        split = self._insert(self._root, position, (start, count))
        if split is not None:
            old_root = self._root
            self._root = self._new_node(leaf=False)
            self._root.children = [old_root, split]

    def _insert(self, node: _Node, position: int, run: Run) -> _Node | None:
        """Recursive insert; returns a new right sibling when ``node`` split."""
        if node.leaf:
            self._leaf_insert(node, position, run)
        else:
            for idx, child in enumerate(node.children):
                pages = child.total_pages()
                # <= lets appends descend into the last child.
                if position <= pages and not (
                    position == pages and idx + 1 < len(node.children)
                ):
                    split = self._insert(child, position, run)
                    if split is not None:
                        node.children.insert(idx + 1, split)
                    break
                position -= pages
            else:
                raise CorruptionError("insert descent fell off the tree")
        if node.leaf and len(node.runs) > self.fanout:
            return self._split_leaf(node)
        if not node.leaf and len(node.children) > self.fanout:
            return self._split_interior(node)
        return None

    def _leaf_insert(self, node: _Node, position: int, run: Run) -> None:
        start, count = run
        # Find the run containing `position`, splitting it if interior.
        for idx, (run_start, run_count) in enumerate(node.runs):
            if position == 0:
                break
            if position < run_count:
                node.runs[idx: idx + 1] = [
                    (run_start, position),
                    (run_start + position, run_count - position),
                ]
                idx += 1
                break
            position -= run_count
        else:
            idx = len(node.runs)
        # Merge with physical neighbours where possible.
        if idx > 0:
            prev_start, prev_count = node.runs[idx - 1]
            if prev_start + prev_count == start:
                node.runs[idx - 1] = (prev_start, prev_count + count)
                self._try_merge_at(node, idx - 1)
                return
        node.runs.insert(idx, (start, count))
        self._try_merge_at(node, idx)

    @staticmethod
    def _try_merge_at(node: _Node, idx: int) -> None:
        """Merge runs[idx] with runs[idx+1] when physically consecutive."""
        if idx + 1 >= len(node.runs):
            return
        start, count = node.runs[idx]
        nxt_start, nxt_count = node.runs[idx + 1]
        if start + count == nxt_start:
            node.runs[idx: idx + 2] = [(start, count + nxt_count)]

    def _split_leaf(self, node: _Node) -> _Node:
        sibling = self._new_node(leaf=True)
        half = len(node.runs) // 2
        sibling.runs = node.runs[half:]
        node.runs = node.runs[:half]
        return sibling

    def _split_interior(self, node: _Node) -> _Node:
        sibling = self._new_node(leaf=False)
        half = len(node.children) // 2
        sibling.children = node.children[half:]
        node.children = node.children[:half]
        return sibling

    def delete_range(self, start: int, count: int) -> list[Run]:
        """Remove logical pages ``[start, start+count)``.

        Returns the physical runs removed (the caller ghosts them).
        Implemented as extract-and-rebuild: runs number in the tens for
        even the paper's most fragmented objects.
        """
        if count == 0:
            return []
        removed_runs = self.runs_in_range(start, count)
        keep_before = self.runs_in_range(0, start)
        tail_start = start + count
        keep_after = self.runs_in_range(
            tail_start, self.total_pages - tail_start
        )
        self._rebuild(keep_before + keep_after)
        return removed_runs

    def clear(self) -> list[Run]:
        """Remove everything; returns all physical runs.

        The tree stays usable (a fresh empty root is built).  Use
        :meth:`destroy` when the object is going away for good —
        ``clear`` would leak the new root's page.
        """
        runs = self.all_runs()
        self._rebuild([])
        return runs

    def destroy(self) -> list[Run]:
        """Tear the tree down completely, freeing every node page.

        Returns the data runs the leaves pointed at.  The tree must not
        be used afterwards.
        """
        runs = self.all_runs()
        self._drop_all(self._root)
        self._root = _Node(leaf=True, page_no=-1)  # inert sentinel
        self._count_cache = 0
        return runs

    def _rebuild(self, runs: list[Run]) -> None:
        self._drop_all(self._root)
        self._root = self._new_node(leaf=True)
        self._count_cache = None
        merged: list[Run] = []
        for run in runs:
            if merged and merged[-1][0] + merged[-1][1] == run[0]:
                merged[-1] = (merged[-1][0], merged[-1][1] + run[1])
            else:
                merged.append(run)
        # Bulk load: build leaves left to right via ordinary appends.
        for start, count in merged:
            self.append_run(start, count)

    def _drop_all(self, node: _Node) -> None:
        if not node.leaf:
            for child in node.children:
                self._drop_all(child)
        self._drop_node(node)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Structure checks used by property tests."""
        self._check_node(self._root, is_root=True)

    def _check_node(self, node: _Node, *, is_root: bool) -> int:
        if node.leaf:
            for idx, (start, count) in enumerate(node.runs):
                if count <= 0 or start < 0:
                    raise CorruptionError(f"bad run ({start}, {count})")
            if len(node.runs) > self.fanout:
                raise CorruptionError("leaf overflow")
            return 1
        if not node.children:
            raise CorruptionError("empty interior node")
        if len(node.children) > self.fanout:
            raise CorruptionError("interior overflow")
        depths = {
            self._check_node(child, is_root=False)
            for child in node.children
        }
        if len(depths) != 1:
            raise CorruptionError("leaves at unequal depth")
        return depths.pop() + 1
