"""Buffer pool with clock (second-chance) eviction.

Metadata pages — heap rows, indexes, allocation maps, LOB-tree interior
nodes — are small and hot, so they live in the buffer pool and most
accesses are memory hits.  This is the database's structural advantage
for small objects in the paper's folklore ("database queries are faster
than file opens").  Out-of-row BLOB *data* pages bypass the pool: at the
paper's scale (hundreds of GB of objects, 2 GB of RAM) their hit rate is
negligible, and SQL Server's read-ahead for LOBs streams past the cache
anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.pagefile import PageFile
from repro.errors import ConfigError


@dataclass
class _Frame:
    page_no: int
    dirty: bool = False
    referenced: bool = True


class BufferPool:
    """Fixed-capacity page cache over a :class:`PageFile`."""

    def __init__(self, pagefile: PageFile, *, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ConfigError("capacity_pages must be >= 1")
        self.pagefile = pagefile
        self.capacity_pages = capacity_pages
        self._frames: dict[int, _Frame] = {}
        self._clock: list[int] = []
        self._hand = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _evict_one(self) -> None:
        """Advance the clock hand until a victim with ref bit clear."""
        while True:
            if self._hand >= len(self._clock):
                self._hand = 0
            page_no = self._clock[self._hand]
            frame = self._frames.get(page_no)
            if frame is None:
                # Stale clock slot from an earlier invalidate.
                del self._clock[self._hand]
                continue
            if frame.referenced:
                frame.referenced = False
                self._hand += 1
                continue
            if frame.dirty:
                self.pagefile.write_pages([page_no])
            del self._frames[page_no]
            del self._clock[self._hand]
            self.evictions += 1
            return

    def access(self, page_no: int, *, for_write: bool = False) -> None:
        """Touch a page: free on hit, one device read on miss."""
        frame = self._frames.get(page_no)
        if frame is not None:
            self.hits += 1
            frame.referenced = True
            frame.dirty = frame.dirty or for_write
            return
        self.misses += 1
        while len(self._frames) >= self.capacity_pages:
            self._evict_one()
        if not for_write:
            self.pagefile.read_pages([page_no])
        self._frames[page_no] = _Frame(page_no, dirty=for_write)
        self._clock.append(page_no)

    def invalidate(self, page_no: int) -> None:
        """Drop a page (it was deallocated); dirty state is discarded."""
        self._frames.pop(page_no, None)

    def flush_all(self) -> None:
        """Write back every dirty frame (checkpoint)."""
        dirty = sorted(
            page_no for page_no, f in self._frames.items() if f.dirty
        )
        if dirty:
            self.pagefile.write_pages(dirty)
        for page_no in dirty:
            self._frames[page_no].dirty = False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._frames)
