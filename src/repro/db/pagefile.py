"""The database data file: page-number addressing over a device region.

The paper gave SQL Server a dedicated data drive; we model the data file
as a preallocated region covering (most of) its device, so allocation
*within* the file — the GAM's business — is the only layout decision,
exactly as in the testbed.

Reads and writes take lists of page numbers; consecutive numbers are
batched into extents so sequential page runs cost sequential I/O.
"""

from __future__ import annotations

from repro.alloc.extent import Extent
from repro.disk.device import BlockDevice
from repro.errors import ConfigError
from repro.units import PAGE_SIZE


def pages_to_extents(page_nos: list[int], *, base: int,
                     page_size: int = PAGE_SIZE) -> list[Extent]:
    """Group page numbers into maximal physically contiguous extents.

    Order is preserved: the extents cover the pages in the order given,
    which is the logical byte order of the object being transferred.

    >>> pages_to_extents([0, 1, 2, 7], base=0)
    [Extent(0, +24576), Extent(57344, +8192)]
    """
    extents: list[Extent] = []
    run_start: int | None = None
    run_len = 0
    prev = None
    for page_no in page_nos:
        if prev is not None and page_no == prev + 1:
            run_len += 1
        else:
            if run_start is not None:
                extents.append(
                    Extent(base + run_start * page_size, run_len * page_size)
                )
            run_start = page_no
            run_len = 1
        prev = page_no
    if run_start is not None:
        extents.append(
            Extent(base + run_start * page_size, run_len * page_size)
        )
    return extents


class PageFile:
    """Fixed-size page store at ``base`` on ``device``."""

    def __init__(self, device: BlockDevice, *, base: int,
                 num_pages: int) -> None:
        if num_pages <= 0:
            raise ConfigError("num_pages must be positive")
        end = base + num_pages * PAGE_SIZE
        if end > device.geometry.capacity:
            raise ConfigError(
                f"page file end {end} exceeds device capacity "
                f"{device.geometry.capacity}"
            )
        self.device = device
        self.base = base
        self.num_pages = num_pages

    def _check(self, page_nos: list[int]) -> None:
        for page_no in page_nos:
            if not 0 <= page_no < self.num_pages:
                raise ConfigError(f"page {page_no} outside file")

    def page_offset(self, page_no: int) -> int:
        """Device byte offset of a page."""
        self._check([page_no])
        return self.base + page_no * PAGE_SIZE

    def extents_for(self, page_nos: list[int]) -> list[Extent]:
        self._check(page_nos)
        return pages_to_extents(page_nos, base=self.base)

    def read_pages(self, page_nos: list[int]) -> bytes | None:
        """Timed read of the pages as one request (batched extents)."""
        if not page_nos:
            return b"" if self.device.stores_data else None
        return self.device.read_extents(self.extents_for(page_nos))

    def write_pages(self, page_nos: list[int],
                    data: bytes | None = None) -> None:
        """Timed write; ``data`` must be page-padded when provided."""
        if not page_nos:
            return
        self.device.write_extents(self.extents_for(page_nos), data)

    def flush(self) -> None:
        self.device.flush()
