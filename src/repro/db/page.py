"""Page identities and types.

Pages are identified by an integer page number within the database file;
the :class:`~repro.db.pagefile.PageFile` maps them to byte offsets on the
device.  We track page *types* the way SQL Server's PFS does, because the
fragmentation analyzer distinguishes BLOB data pages from the LOB-tree
index pages interleaved with them.
"""

from __future__ import annotations

import enum

from repro.units import PAGE_SIZE, PAGES_PER_EXTENT

__all__ = ["PageType", "PAGE_SIZE", "PAGES_PER_EXTENT"]


class PageType(enum.Enum):
    """What a page currently holds."""

    FREE = "free"
    HEAP = "heap"            # metadata table rows
    INDEX = "index"          # heap/LOB B-tree interior pages
    LOB_DATA = "lob_data"    # out-of-row BLOB bytes
    GHOST = "ghost"          # deallocated, awaiting ghost cleanup
    SYSTEM = "system"        # allocation maps, boot page, ...
