"""Heap metadata table with a hash index.

Both of the paper's configurations keep object *metadata* (names, paths
or blob pointers, sizes) in database tables; only the object bytes move
between filesystem and BLOB storage.  :class:`HeapTable` models that
metadata path: rows live ``rows_per_page`` to a page, lookups touch one
index page and one heap page through the buffer pool (hot, so they hit
memory — the database's small-object advantage in the folklore), and
page allocations come from the GAM's mixed pages.
"""

from __future__ import annotations

from typing import Any

from repro.db.bufferpool import BufferPool
from repro.db.gam import GamAllocator
from repro.errors import ConfigError, RowNotFoundError


class HeapTable:
    """Key → payload rows with page-level cost accounting."""

    def __init__(self, name: str, gam: GamAllocator, pool: BufferPool, *,
                 rows_per_page: int = 64,
                 index_fanout: int = 512) -> None:
        if rows_per_page < 1:
            raise ConfigError("rows_per_page must be >= 1")
        self.name = name
        self.gam = gam
        self.pool = pool
        self.rows_per_page = rows_per_page
        self.index_fanout = index_fanout
        self._rows: dict[Any, dict[str, Any]] = {}
        self._row_page: dict[Any, int] = {}
        self._page_slots: dict[int, int] = {}  # page -> used slot count
        self._open_page: int | None = None
        self._index_pages: list[int] = []

    # ------------------------------------------------------------------
    # Internal page management
    # ------------------------------------------------------------------
    def _page_for_insert(self) -> int:
        if (self._open_page is not None
                and self._page_slots[self._open_page] < self.rows_per_page):
            return self._open_page
        page_no = self.gam.alloc_page()
        self._page_slots[page_no] = 0
        self._open_page = page_no
        return page_no

    def _touch_index(self, key: Any, *, for_write: bool = False) -> None:
        """Charge the index descent: root plus the key's leaf page."""
        needed_leaves = max(1, -(-len(self._rows) // self.index_fanout))
        while len(self._index_pages) < needed_leaves:
            self._index_pages.append(self.gam.alloc_page())
        # The first index page stands in for the root.
        self.pool.access(self._index_pages[0], for_write=for_write)
        if len(self._index_pages) > 1:
            leaf = self._index_pages[hash(key) % len(self._index_pages)]
            self.pool.access(leaf, for_write=for_write)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def insert(self, key: Any, payload: dict[str, Any]) -> None:
        if key in self._rows:
            raise ConfigError(f"duplicate key {key!r} in {self.name}")
        page_no = self._page_for_insert()
        self._rows[key] = dict(payload)
        self._row_page[key] = page_no
        self._page_slots[page_no] += 1
        self._touch_index(key, for_write=True)
        self.pool.access(page_no, for_write=True)

    def get(self, key: Any) -> dict[str, Any]:
        row = self._rows.get(key)
        if row is None:
            raise RowNotFoundError(f"no row {key!r} in {self.name}")
        self._touch_index(key)
        self.pool.access(self._row_page[key])
        return dict(row)

    def update(self, key: Any, payload: dict[str, Any]) -> None:
        if key not in self._rows:
            raise RowNotFoundError(f"no row {key!r} in {self.name}")
        self._rows[key].update(payload)
        self._touch_index(key)
        self.pool.access(self._row_page[key], for_write=True)

    def delete(self, key: Any) -> None:
        if key not in self._rows:
            raise RowNotFoundError(f"no row {key!r} in {self.name}")
        page_no = self._row_page.pop(key)
        del self._rows[key]
        self._page_slots[page_no] -= 1
        self._touch_index(key, for_write=True)
        self.pool.access(page_no, for_write=True)

    def contains(self, key: Any) -> bool:
        return key in self._rows

    def keys(self) -> list[Any]:
        return list(self._rows)

    def scan(self) -> list[tuple[Any, dict[str, Any]]]:
        """Full scan; touches every heap page once."""
        for page_no in sorted(self._page_slots):
            self.pool.access(page_no)
        return [(k, dict(v)) for k, v in self._rows.items()]

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def page_count(self) -> int:
        return len(self._page_slots) + len(self._index_pages)
