"""SQL-Server-like database substrate.

Implements the storage behaviours the paper attributes to SQL Server
2005: 8 KB pages grouped into 64 KB extents, allocation maps scanned in
address order (GAM/PFS style), Exodus-style B-tree storage of large
objects with out-of-row data pages, bulk-logged mode (BLOB data forced
at commit, not logged), and ghost-record deferred deallocation.
"""

from repro.db.database import SimDatabase, DbConfig
from repro.db.blobstore import BlobStore
from repro.db.gam import GamAllocator
from repro.db.heap import HeapTable
from repro.db.btree import LobTree
from repro.db.bufferpool import BufferPool
from repro.db.wal import WriteAheadLog

__all__ = [
    "SimDatabase",
    "DbConfig",
    "BlobStore",
    "GamAllocator",
    "HeapTable",
    "LobTree",
    "BufferPool",
    "WriteAheadLog",
]
