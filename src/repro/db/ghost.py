"""Ghost-record deferred deallocation.

SQL Server deletes do not immediately return space: rows and LOB pages
are marked *ghost* and a background task deallocates them later — and,
crucially, it works through the backlog **incrementally**, a bounded
batch of pages per wakeup, not object by object.  Two consequences the
paper measures:

* Freed space is unavailable for a window after every delete, so a
  replacement's allocation cannot reuse the replaced object's space and
  must advance into older holes or fresh extents.
* Reclaimed space returns to the GAM as a *mixture* of partial ranges
  from many deleted objects.  Combined with the GAM's lowest-address-
  first scan, new BLOBs get spliced from fragments of several old holes
  — the interleaving that drives the database's near-linear
  fragmentation growth (Figures 2 and 5).

Ablation A4 varies the cleanup interval and batch size to quantify both
effects.
"""

from __future__ import annotations

from collections import deque

from repro.db.gam import GamAllocator
from repro.errors import ConfigError


class GhostCleaner:
    """Deferred, batched page deallocation.

    Parameters
    ----------
    gam:
        The allocator pages are eventually returned to.
    cleanup_interval_ops:
        Operations between cleanup wakeups (0 = free immediately).
    max_pages_per_sweep:
        Pages deallocated per wakeup.  SQL Server's ghost cleanup
        processes a small batch per run; a bound below the workload's
        delete rate lets the backlog blend pages of many objects.
        ``None`` = unbounded (whole backlog per sweep).
    min_age_ops:
        A page must have been ghosted at least this many operations ago
        before it may be freed (the version/scan-safety window).
    """

    def __init__(self, gam: GamAllocator, *,
                 cleanup_interval_ops: int = 4,
                 max_pages_per_sweep: int | None = 512,
                 min_age_ops: int = 8) -> None:
        if cleanup_interval_ops < 0:
            raise ConfigError("cleanup_interval_ops must be >= 0")
        if max_pages_per_sweep is not None and max_pages_per_sweep < 1:
            raise ConfigError("max_pages_per_sweep must be >= 1")
        if min_age_ops < 0:
            raise ConfigError("min_age_ops must be >= 0")
        self.gam = gam
        self.cleanup_interval_ops = cleanup_interval_ops
        self.max_pages_per_sweep = max_pages_per_sweep
        self.min_age_ops = min_age_ops
        self._ops = 0
        self._queue: deque[tuple[int, int]] = deque()  # (stamp, page_no)
        self.ghosted_pages = 0
        self.cleaned_pages = 0
        self.sweeps = 0
        #: Optional fault-injection hook called at the top of every
        #: sweep (the ghost-record deallocation boundary); raising
        #: aborts the sweep before any page is freed.
        self.crash_hook = None

    # ------------------------------------------------------------------
    def ghost_pages(self, page_nos: list[int]) -> None:
        """Mark pages ghost; they stay unavailable until cleaned."""
        if self.cleanup_interval_ops == 0:
            self.gam.free_pages(page_nos)
            self.cleaned_pages += len(page_nos)
            return
        stamp = self._ops
        self._queue.extend((stamp, page_no) for page_no in page_nos)
        self.ghosted_pages += len(page_nos)

    def on_operation(self) -> None:
        """Advance the operation clock; sweep when the interval elapses."""
        if self.cleanup_interval_ops == 0:
            return
        self._ops += 1
        if self._ops % self.cleanup_interval_ops == 0:
            self.sweep()

    def sweep(self, *, ignore_age: bool = False,
              max_pages: int | None = None) -> int:
        """Deallocate one batch from the backlog head; returns count."""
        if self.crash_hook is not None:
            self.crash_hook("ghost:sweep")
        budget = max_pages if max_pages is not None \
            else self.max_pages_per_sweep
        released = 0
        while self._queue:
            stamp, page_no = self._queue[0]
            if not ignore_age and self._ops - stamp < self.min_age_ops:
                break
            if budget is not None and released >= budget:
                break
            self._queue.popleft()
            self.gam.free_page(page_no)
            released += 1
        if released:
            self.cleaned_pages += released
        self.sweeps += 1
        return released

    def drain(self) -> None:
        """Free everything immediately (checkpoint / allocation pressure)."""
        while self._queue:
            _, page_no = self._queue.popleft()
            self.gam.free_page(page_no)
            self.cleaned_pages += 1

    @property
    def pending_pages(self) -> int:
        return len(self._queue)

    def queued_page_numbers(self) -> set[int]:
        """The ghosted-not-yet-freed pages (for invariant checks)."""
        return {page_no for _, page_no in self._queue}
