"""Extension A5 — layouts from the related-work section, measured.

Section 3.4 surveys designs that sidestep external fragmentation: GFS's
fixed 64 MB chunks with record append + padding, and LFS's log
structure with a cleaner.  This bench runs the paper's 10 MB-object
churn against all four backends and reports what each trades:

* filesystem / database — external fragmentation (the paper's story);
* gfs — zero external fragmentation, but internal fragmentation
  (padding + dead records) until whole-chunk GC;
* lfs — near-zero external fragmentation, but cleaner write
  amplification that rises with occupancy.
"""

from repro.analysis.compare import ShapeCheck, check_between, check_faster
from repro.analysis.tables import render_table
from repro.core.experiment import ExperimentRunner, ExperimentConfig
from repro.core.workload import ConstantSize
from repro.units import MB

import paperfig

OBJECT = 10 * MB
AGES = (0.0, 4.0, 8.0)


def compute():
    results = {}
    for backend in ("filesystem", "database", "gfs", "lfs"):
        config = ExperimentConfig(
            backend=backend,
            sizes=ConstantSize(OBJECT),
            volume_bytes=paperfig.scaled(paperfig.DEFAULT_VOLUME),
            occupancy=0.5,
            ages=AGES,
            reads_per_sample=16,
            seed=7,
        )
        runner = ExperimentRunner(config)
        run = runner.run()
        extra = ""
        store = runner.store
        if backend == "gfs":
            extra = (f"internal frag {store.internal_fragmentation():.0%}, "
                     f"{store.gc_runs} GC runs")
        elif backend == "lfs":
            extra = (f"write amplification "
                     f"{store.write_amplification():.2f}, "
                     f"{store.cleaner_runs} cleanings")
        results[backend] = (run, extra)
    return results


def render(results) -> str:
    rows = []
    for backend, (run, extra) in results.items():
        final = run.sample_at(8.0)
        rows.append([
            backend,
            final.fragments_per_object,
            final.read_mbps / MB,
            final.write_mbps / MB,
            extra or "-",
        ])
    return render_table(
        "Extension A5: alternative layouts under 10 MB-object churn "
        "(age 8, 50% full)",
        ["Backend", "Frags/object", "Read MB/s", "Write MB/s",
         "Hidden cost"],
        rows,
        footer=("GFS and LFS hold external fragmentation near 1 by "
                "paying internal fragmentation / cleaning instead — the "
                "paper's 'trade capacity for predictability'."),
    )


def checks(results) -> list[ShapeCheck]:
    fs_frag = results["filesystem"][0].sample_at(8.0).fragments_per_object
    db_frag = results["database"][0].sample_at(8.0).fragments_per_object
    gfs_frag = results["gfs"][0].sample_at(8.0).fragments_per_object
    lfs_frag = results["lfs"][0].sample_at(8.0).fragments_per_object
    return [
        check_between("gfs objects never fragment externally",
                      gfs_frag, 1.0, 1.05),
        # A 10 MB object spans up to ceil(10/4)=3 of the 4 MB log
        # segments; that bound, not churn, sets LFS's fragment count.
        check_between("lfs fragments bounded by segment spans, not churn",
                      lfs_frag, 1.0, 3.2),
        check_faster("the database fragments worst of all four",
                     db_frag, max(fs_frag, gfs_frag, lfs_frag),
                     min_ratio=1.2),
        check_faster("aged gfs reads beat aged database reads",
                     results["gfs"][0].sample_at(8.0).read_mbps,
                     results["database"][0].sample_at(8.0).read_mbps),
    ]


def test_extension_backends(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
