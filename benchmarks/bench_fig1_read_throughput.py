"""Figure 1 — read throughput after bulk load, two, and four overwrites.

Three panels in the paper (bulk load / age 2 / age 4), each comparing
database and filesystem read throughput for 256 KB, 512 KB, and 1 MB
objects.  Claims reproduced:

* Immediately after bulk load, SQL Server is faster on small objects;
  objects up to about 1 MB are best stored as BLOBs.
* As objects are overwritten, fragmentation degrades SQL Server:
  "fragmentation eventually halves SQL Server's throughput" and the
  break-even point declines from ~1 MB to ~256 KB.
"""

from repro.analysis.compare import ShapeCheck, check_faster
from repro.analysis.tables import render_table
from repro.core.workload import ConstantSize
from repro.units import KB, MB

import paperfig

SIZES = {"256K": 256 * KB, "512K": 512 * KB, "1M": 1 * MB}


def compute():
    results = {}
    for label, size in SIZES.items():
        for backend in ("database", "filesystem"):
            results[(label, backend)] = paperfig.run_curve(
                backend, ConstantSize(size),
                volume=paperfig.THROUGHPUT_VOLUME,
                occupancy=0.9,
                ages=paperfig.SHORT_AGES,
                reads_per_sample=48,
                seed=11,
            )
    return results


def render(results) -> str:
    blocks = []
    for age, title in ((0.0, "After Bulk Load"),
                       (2.0, "After Two Overwrites"),
                       (4.0, "After Four Overwrites")):
        rows = []
        for label in SIZES:
            db = results[(label, "database")].sample_at(age)
            fs = results[(label, "filesystem")].sample_at(age)
            rows.append([label, db.read_mbps / MB, fs.read_mbps / MB])
        blocks.append(render_table(
            f"Figure 1: Read Throughput {title} (MB/s)",
            ["Object Size", "Database", "Filesystem"],
            rows,
        ))
    footer = ("Paper: DB ahead at all sizes when clean; by age four the "
              "break-even falls to ~256KB and DB throughput roughly halves.")
    return "\n\n".join(blocks) + "\n" + footer


def checks(results) -> list[ShapeCheck]:
    out = []
    for label in SIZES:
        db0 = results[(label, "database")].sample_at(0.0).read_mbps
        fs0 = results[(label, "filesystem")].sample_at(0.0).read_mbps
        out.append(check_faster(
            f"clean read, {label}: database beats filesystem", db0, fs0,
        ))
    for label in ("512K", "1M"):
        db4 = results[(label, "database")].sample_at(4.0).read_mbps
        fs4 = results[(label, "filesystem")].sample_at(4.0).read_mbps
        out.append(check_faster(
            f"aged read, {label}: filesystem beats database by age 4",
            fs4, db4,
        ))
    db = results[("512K", "database")]
    out.append(check_faster(
        "aging costs the database >=35% of its 512K read throughput",
        db.sample_at(0.0).read_mbps, db.sample_at(4.0).read_mbps,
        min_ratio=1.35,
    ))
    return out


def test_fig1_read_throughput(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
