"""Figure 6 — fragmentation on 40 GB vs 400 GB volumes (three panels).

The paper varies volume size and occupancy with 10 MB objects:

* At 50% full, the filesystem benefits from a large pool of free
  objects: the 400 GB volume converges to 4-5 fragments/object while
  the 40 GB volume converges to 11-12.
* At 90% and 97.5% full, "volume size has little impact on
  fragmentation" — the ratio of free space to object size is what
  matters, and it is small in both cases.

Scaled volumes: 1 GB and 4 GB stand in for 40 GB and 400 GB (the 10x
pool ratio is preserved; see DESIGN.md §3).
"""

from repro.analysis.compare import ShapeCheck, check_between, check_faster
from repro.analysis.tables import render_series_table
from repro.core.workload import ConstantSize
from repro.units import MB

import paperfig


def compute():
    results = {}
    cells = [
        ("filesystem", paperfig.SMALL_VOLUME, 0.5),
        ("filesystem", paperfig.LARGE_VOLUME, 0.5),
        ("filesystem", paperfig.SMALL_VOLUME, 0.9),
        ("filesystem", paperfig.LARGE_VOLUME, 0.9),
        # At 97.5% the 1 GB stand-in would leave a pool of just 2.5
        # objects — the degenerate small-pool regime the paper calls
        # out separately in §5.4 — so this panel steps both volumes up
        # one notch to stay in the regime the figure plots.
        ("filesystem", paperfig.DEFAULT_VOLUME, 0.975),
        ("filesystem", paperfig.XL_VOLUME, 0.975),
        ("database", paperfig.SMALL_VOLUME, 0.5),
        ("database", paperfig.LARGE_VOLUME, 0.5),
    ]
    for backend, volume, occupancy in cells:
        # The paper's DB panel only shows 50% full; churn its curves to
        # age 5 like the figure does, the FS panels to age 10.
        ages = tuple(
            a for a in paperfig.FULL_AGES
            if backend == "filesystem" or a <= 5.0
        )
        results[(backend, volume, occupancy)] = paperfig.run_curve(
            backend, ConstantSize(10 * MB),
            volume=volume, occupancy=occupancy, ages=ages,
            reads_per_sample=8,
        )
    return results


def _label(volume: int) -> str:
    return {
        paperfig.SMALL_VOLUME: "40G-scale",
        paperfig.LARGE_VOLUME: "400G-scale",
        paperfig.DEFAULT_VOLUME: "40G-scale*",
        paperfig.XL_VOLUME: "400G-scale*",
    }[volume]


def render(results) -> str:
    blocks = []
    blocks.append(render_series_table(
        "Figure 6a: Database Fragmentation: Different Volumes "
        "(50% full, fragments/object)",
        "Storage Age",
        {
            f"50% full - {_label(vol)}": paperfig.frag_series(
                results[("database", vol, 0.5)])
            for vol in (paperfig.SMALL_VOLUME, paperfig.LARGE_VOLUME)
        },
    ))
    blocks.append(render_series_table(
        "Figure 6b: Filesystem Fragmentation: Different Volumes "
        "(50% full, fragments/object)",
        "Storage Age",
        {
            f"50% full - {_label(vol)}": paperfig.frag_series(
                results[("filesystem", vol, 0.5)])
            for vol in (paperfig.SMALL_VOLUME, paperfig.LARGE_VOLUME)
        },
    ))
    blocks.append(render_series_table(
        "Figure 6c: Filesystem Fragmentation: Different Volumes "
        "(90% / 97.5% full, fragments/object)",
        "Storage Age",
        {
            f"{occ:.1%} full - {_label(vol)}": paperfig.frag_series(
                results[("filesystem", vol, occ)])
            for occ, vols in (
                (0.9, (paperfig.SMALL_VOLUME, paperfig.LARGE_VOLUME)),
                (0.975, (paperfig.DEFAULT_VOLUME, paperfig.XL_VOLUME)),
            )
            for vol in vols
        },
    ))
    footer = ("Paper: at 50% full the large volume's big free pool keeps "
              "NTFS at 4-5 fragments while the small volume converges to "
              "11-12; at 90%+ volume size hardly matters.")
    return "\n\n".join(blocks) + "\n" + footer


def checks(results) -> list[ShapeCheck]:
    fs_small_50 = paperfig.frag_series(
        results[("filesystem", paperfig.SMALL_VOLUME, 0.5)])[-1][1]
    fs_large_50 = paperfig.frag_series(
        results[("filesystem", paperfig.LARGE_VOLUME, 0.5)])[-1][1]
    fs_small_90 = paperfig.frag_series(
        results[("filesystem", paperfig.SMALL_VOLUME, 0.9)])[-1][1]
    fs_large_90 = paperfig.frag_series(
        results[("filesystem", paperfig.LARGE_VOLUME, 0.9)])[-1][1]
    fs_small_97 = paperfig.frag_series(
        results[("filesystem", paperfig.DEFAULT_VOLUME, 0.975)])[-1][1]
    fs_large_97 = paperfig.frag_series(
        results[("filesystem", paperfig.XL_VOLUME, 0.975)])[-1][1]
    db_small = paperfig.frag_series(
        results[("database", paperfig.SMALL_VOLUME, 0.5)])[-1][1]
    db_large = paperfig.frag_series(
        results[("database", paperfig.LARGE_VOLUME, 0.5)])[-1][1]
    return [
        check_faster(
            "at 50% full the small volume fragments worse (free pool)",
            fs_small_50, fs_large_50, min_ratio=1.5,
        ),
        check_between(
            "at 90% full volume size has little impact",
            fs_small_90 / fs_large_90, 0.6, 1.8,
        ),
        check_between(
            "at 97.5% full volume size has little impact",
            fs_small_97 / fs_large_97, 0.6, 1.8,
        ),
        check_faster(
            "occupancy dominates: 90% full beats 50% full handily",
            fs_small_90, fs_small_50,
        ),
        check_between(
            "database at 50% full: volume size has modest impact",
            db_small / db_large, 0.4, 2.5,
        ),
    ]


def test_fig6_volume_size(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
