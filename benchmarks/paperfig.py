"""Shared infrastructure for the per-figure benchmarks.

Every bench in this directory regenerates one table or figure from the
paper's evaluation (Section 5) on scaled volumes (see DESIGN.md §3: the
free-object-pool and request-size ratios that the paper says govern the
curves are preserved; absolute volume sizes shrink so a bench takes
seconds instead of the paper's week).  Pass ``--paper-scale`` when
running a bench standalone to use the original 40/400 GB volumes.

Each bench is simultaneously:
* a pytest-benchmark test (``pytest benchmarks/ --benchmark-only``) that
  times the experiment once and asserts the paper's qualitative shapes;
* a standalone script (``python benchmarks/bench_figN_*.py``) that
  prints the regenerated table.
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.analysis.compare import ShapeCheck
from repro.backends.spec import StoreSpec
from repro.core.experiment import ExperimentConfig, run_experiment
from repro.core.results import RunResult
from repro.core.workload import SizeDistribution
from repro.units import GB, MB

#: Scaled stand-ins for the paper's volumes.  The paper's 40 GB and
#: 400 GB volumes at 10 MB objects hold 4 k / 40 k objects; our scaled
#: volumes preserve the tenfold pool ratio at bench-friendly sizes.
SMALL_VOLUME = 1 * GB     # plays the paper's 40 GB volume
LARGE_VOLUME = 4 * GB     # plays the paper's 400 GB volume
PAPER_SMALL_VOLUME = 40 * GB
PAPER_LARGE_VOLUME = 400 * GB

#: Default volume for single-volume figures (1, 2, 3, 4, 5).
DEFAULT_VOLUME = 2 * GB
#: Larger stand-in used where the small volume's free pool would drop
#: below ~5 objects (the degenerate regime the paper flags in §5.4:
#: "on a 4GB volume with a pool of 40 free objects, performance
#: degraded rapidly").
XL_VOLUME = 8 * GB
THROUGHPUT_VOLUME = 512 * MB

FULL_AGES = tuple(float(a) for a in range(11))   # figures 2, 3, 5, 6
SHORT_AGES = (0.0, 2.0, 4.0)                     # figures 1 and 4


def paper_scale() -> bool:
    return "--paper-scale" in sys.argv


def index_kind() -> str | None:
    """The ``--index {tiered,naive}`` allocator ablation flag.

    Returns None (use each config's default, i.e. the tiered engine)
    when the flag is absent — notably under pytest, where benches run
    without CLI arguments.  Figure scripts re-run with ``--index naive``
    to quantify how much of end-to-end throughput the free-space engine
    contributes.
    """
    return _flag_value("--index")


def _flag_value(flag: str) -> str | None:
    argv = sys.argv
    for pos, arg in enumerate(argv):
        if arg == flag and pos + 1 < len(argv):
            return argv[pos + 1]
        if arg.startswith(flag + "="):
            return arg.split("=", 1)[1]
    return None


def store_override() -> tuple[str | None, int]:
    """The ``--store SPEC`` / ``--shards N`` overrides, if given.

    Figure scripts re-run with e.g. ``--store lfs:reorder=clook
    --shards 4`` to replay a figure's workload against a declaratively
    described store (any registered backend, device policy, shard
    layout).  ``--store :reorder=clook`` keeps each curve's own
    backend and only overrides the rest.  Absent under pytest, where
    benches run without CLI arguments.
    """
    shards = _flag_value("--shards")
    return _flag_value("--store"), int(shards) if shards else 0


def scaled(volume: int) -> int:
    """Swap in the paper's full-size volume under --paper-scale."""
    if not paper_scale():
        return volume
    mapping = {
        SMALL_VOLUME: PAPER_SMALL_VOLUME,
        LARGE_VOLUME: PAPER_LARGE_VOLUME,
        DEFAULT_VOLUME: PAPER_LARGE_VOLUME,
        THROUGHPUT_VOLUME: PAPER_LARGE_VOLUME,
    }
    return mapping.get(volume, volume)


def run_curve(backend: str, sizes: SizeDistribution, *,
              volume: int = DEFAULT_VOLUME,
              occupancy: float = 0.5,
              ages: tuple[float, ...] = FULL_AGES,
              reads_per_sample: int = 32,
              seed: int = 7,
              label: str = "",
              **kwargs) -> RunResult:
    """Run one curve of one figure.

    A ``--store``/``--shards`` override on the command line replays the
    curve against that declarative spec instead of the figure's default
    backend construction (the curve's backend fills an empty backend
    part, so ``--store :reorder=clook`` applies one policy across a
    multi-backend comparison).
    """
    kwargs.setdefault("index_kind", index_kind())
    store_text, shards = store_override()
    if store_text is not None or shards > 0:
        # Figure parameters arrive as parse *defaults*: explicit
        # spec-text keys (volume=, write_request=, ...) win over them.
        parse_defaults = {"volume_bytes": scaled(volume)}
        if "write_request" in kwargs:
            parse_defaults["write_request"] = kwargs.pop("write_request")
        if kwargs.pop("store_data", False):
            parse_defaults["store_data"] = True
        spec = StoreSpec.parse(
            store_text if store_text is not None else backend,
            default_backend=backend,
            **parse_defaults,
        )
        if shards > 0:
            spec = replace(spec, shards=shards)
        # Fold the legacy per-backend knobs the figure scripts pass
        # into spec options so the two flag families compose.
        kind = kwargs.pop("index_kind", None)
        if kind is not None and spec.backend == "filesystem":
            spec = spec.with_options(index_kind=kind)
        if kwargs.pop("size_hints", False) and \
                spec.backend == "filesystem":
            spec = spec.with_options(size_hints=True)
        kwargs.pop("fs_config", None)
        kwargs.pop("db_config", None)
        config = ExperimentConfig(
            store=spec,
            sizes=sizes,
            occupancy=occupancy,
            ages=ages,
            reads_per_sample=reads_per_sample,
            seed=seed,
            label=label or f"{spec.backend}"
                  f"{'x' + str(spec.shards) if spec.shards > 1 else ''}",
            **kwargs,
        )
        return run_experiment(config)
    config = ExperimentConfig(
        backend=backend,
        sizes=sizes,
        volume_bytes=scaled(volume),
        occupancy=occupancy,
        ages=ages,
        reads_per_sample=reads_per_sample,
        seed=seed,
        label=label,
        **kwargs,
    )
    return run_experiment(config)


def frag_series(result: RunResult) -> list[tuple[float, float]]:
    return [(round(s.age), s.fragments_per_object)
            for s in result.samples]


def read_series(result: RunResult) -> list[tuple[float, float]]:
    return [(round(s.age), s.read_mbps / MB) for s in result.samples]


def write_series(result: RunResult) -> list[tuple[float, float]]:
    return [(round(s.age), s.write_mbps / MB) for s in result.samples]


def latency_series(result: RunResult,
                   quantile: str = "p99") -> list[tuple[float, float]]:
    """(age, read-sojourn milliseconds) pairs for one percentile.

    ``quantile`` is one of ``p50``/``p95``/``p99``/``max``.  All zeros
    unless the curve ran on a ``queue=event`` store (see
    :mod:`repro.disk.events`) — the round model reports wall time only.
    """
    attr = f"read_lat_{quantile}_s"
    return [(round(s.age), getattr(s, attr) * 1e3)
            for s in result.samples]


def report_checks(checks: list[ShapeCheck]) -> None:
    """Print every shape check and assert they all hold.

    Under a ``--store``/``--shards`` override the checks are reported
    but not enforced: they encode the paper's backend comparison, which
    an override deliberately replaces.
    """
    print()
    print("Shape checks against the paper:")
    for check in checks:
        print(f"  {check}")
    failed = [c for c in checks if not c.passed]
    if store_override() != (None, 0):
        if failed:
            print(f"({len(failed)} shape check(s) differ from the paper "
                  "under the store override — reported, not enforced)")
        return
    assert not failed, f"{len(failed)} shape check(s) failed: " + \
        "; ".join(c.name for c in failed)


def bench_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark.

    Aging experiments are deterministic and expensive; statistical
    repetition would only re-measure the same simulation.
    """
    if benchmark is None:
        return fn()
    return benchmark.pedantic(fn, rounds=1, iterations=1)
