"""Ablation A3 — the paper's proposed interface: size hints at create.

Conclusions section: "The ability to specify the size of the object
before initial space allocation could reduce fragmentation", and §5.4:
"systems that use deferred allocation partially address this problem by
implicitly increasing the size of file append requests".

Three filesystem variants on the same aged workload:
  * plain       — per-request allocation (the measured NTFS behaviour)
  * delayed     — XFS-style buffered appends, allocated at flush
  * size hints  — full-size preallocation at create (the proposal)
"""

from repro.analysis.compare import ShapeCheck, check_between, check_faster
from repro.analysis.tables import render_table
from repro.core.workload import ConstantSize
from repro.fs.filesystem import FsConfig
from repro.units import MB

import paperfig

OBJECT = 2 * MB


def run_variant(variant: str):
    kwargs = {}
    if variant == "delayed":
        kwargs["fs_config"] = FsConfig(delayed_allocation=True)
    elif variant == "size hints":
        kwargs["size_hints"] = True
    result = paperfig.run_curve(
        "filesystem", ConstantSize(OBJECT),
        volume=512 * MB,
        occupancy=0.9,
        ages=(0.0, 2.0, 4.0, 8.0),
        reads_per_sample=24,
        **kwargs,
    )
    return result


def compute():
    return {variant: run_variant(variant)
            for variant in ("plain", "delayed", "size hints")}


def render(results) -> str:
    rows = []
    for variant, result in results.items():
        final = result.sample_at(8.0)
        rows.append([
            variant,
            final.fragments_per_object,
            final.read_mbps / MB,
            result.sample_at(8.0).write_mbps / MB,
        ])
    return render_table(
        "Ablation A3: allocation interface vs aged performance "
        "(2 MB objects, age 8, 90% full)",
        ["Interface", "Frags/object", "Read MB/s", "Write MB/s"],
        rows,
        footer=("Paper's proposal: passing the known object size at "
                "create removes the per-append allocation that causes "
                "most filesystem fragmentation."),
    )


def checks(results) -> list[ShapeCheck]:
    plain = results["plain"].sample_at(8.0)
    delayed = results["delayed"].sample_at(8.0)
    hinted = results["size hints"].sample_at(8.0)
    return [
        check_faster(
            "plain per-request allocation fragments most",
            plain.fragments_per_object, delayed.fragments_per_object,
        ),
        check_faster(
            "delayed allocation also beats plain on reads",
            delayed.read_mbps, 0.95 * plain.read_mbps,
        ),
        check_between(
            "size hints keep objects near-contiguous",
            hinted.fragments_per_object, 1.0, 1.6,
        ),
        check_faster(
            "size hints give the best aged read throughput",
            hinted.read_mbps, plain.read_mbps,
        ),
    ]


def test_ablation_size_hints(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
