#!/usr/bin/env python
"""Volume/store scaling bench: churn, segment store, and batched I/O.

Three scenarios, all host-side wall-clock measurements (the modelled
device time is reported alongside, it does not change between
implementations):

* ``fs_churn`` — sweeps volume sizes, drives the filesystem backend
  through a bulk load plus a delete/rewrite churn loop (the workload
  shape behind the paper's aging experiments) for both free-space
  engines.  The naive flat-list engine's per-op cost grows with the
  free map while the tiered engine stays flat, which is what unlocks
  multi-hundred-GB volumes and deep aging runs.
* ``segment_store`` — the device's sparse content store, blocked
  (shared :class:`~repro.struct.blockedlist.BlockedList` layout) vs
  the seed's flat list, under random segment writes then reads.  The
  flat list pays an O(n) memmove per write; the committed baseline
  shows the blocked store ≥5× faster at 10^5 segments, which is what
  makes content-checked aging runs practical beyond test scale.
* ``batched_writes`` — the same scattered write stream submitted one
  request per call vs scatter/gather batches per
  :meth:`BlockDevice.submit`, reordering off (modelled cost is
  asserted identical), plus the modelled seek count with the elevator
  on — the knob for request-scheduling studies.
* ``sharded_aging`` — an aged get/put workload built purely from
  :class:`StoreSpec`\\ s via the backend registry: a single-volume LFS
  baseline vs a 4-shard :class:`ShardedStore` (same aggregate
  capacity) vs the same sharded store with a C-LOOK
  :class:`DevicePolicy` on batched read sweeps, vs all of that plus
  ``overlap=true``.  Reports the modelled **summed device time** and
  the overlap scheduler's **wall time** (per-shard lanes run
  concurrently; see ``repro/disk/schedule.py``): sharding shortens
  seeks, the elevator shortens them further, and overlap turns four
  lanes into an actual multiple on the aged read sweep — the
  multi-volume + request-scheduling study the ROADMAP calls for.
* ``shard_skew`` — per-shard occupancy skew under hash placement on a
  small mixed-size population, an aged read sweep either side of
  ``ShardedStore.rebalance(mode="even")``; the bench raises if the
  migration fails to reduce the max/min occupancy ratio.
* ``degraded_aging`` — the fault-tolerance story end to end: a
  4-shard overlapped store with ``replicas=2`` is aged, then shard 1
  is killed and the same whole-population read sweep is measured
  healthy, degraded (every lost-primary key served by its replica via
  the per-key failover path), *while* a throttled background
  ``rebuild(rate=0.25)`` interleaves copy slices with reads, and after
  the rebuild restored full redundancy.  The bench raises if any
  object becomes unreadable at any phase or if the rebuild leaves
  under-replicated keys — the committed baseline is the regression
  gate for degraded operation.
* ``tail_latency`` — per-request sojourn percentiles through the
  event-driven queue model (``queue=event``; see ``repro/disk/events``):
  a 4-shard overlapped store with ``replicas=2`` is loaded fresh, a
  closed-loop sweep calibrates an open-loop Poisson arrival rate at a
  fixed utilisation of the fresh store's capacity, and the same
  shuffled per-object read sweep is then measured under that fixed
  rate fresh, aged (churned to storage age 2), degraded (shard 1
  killed, failover reads), rebuilding (throttled rebuild slices
  interleaved with reads), and rebuilt.  Because the arrival rate
  never changes, every slowdown shows up as queueing: the aged store's
  p99 sits above the fresh store's, and the degraded store's above
  healthy — the bench raises if degraded p99 undercuts healthy p99.
* ``continuous_operation`` — foreground tail latency while the store
  keeps itself healthy: the ``tail_latency`` store (4 shards,
  ``replicas=2``, ``queue=event``, fixed calibrated Poisson rate) is
  swept quiescent and then under a grid of checkpoint cadence x
  rebalance duty cycle, with charged checkpoint write-backs
  (``checkpoint_rate=``, real encoded snapshot sizes) and a mid-sweep
  throttled ``rebalance(mode="placement", rate=R)`` sharing the lanes
  with the measured reads.  The bench raises unless every active p99
  exceeds the quiescent p99 and, per cadence, p99 falls as the
  rebalance throttle drops — background work must be visible, and the
  throttle must actually protect the foreground tail.
* ``checkpoint_resume`` — the persistence subsystem's parity check,
  run as a bench so CI smokes it and the committed baseline records
  the checkpoint cost: an aging run is checkpointed at every sampled
  age, killed right after the mid-run checkpoint, and resumed; the
  resumed run record must equal the uninterrupted baseline **exactly**
  (every fragmentation/throughput/occupancy sample — the bench raises
  on any divergence).  Reported numbers: checkpoint size and
  save/resume host time for the tiered and naive engines and a
  3-shard composite.
* ``scenario_matrix`` — every workload (the paper's uniform churn loop
  plus the multi-tenant scenario presets from ``repro/scenario``)
  against every store config in a 4-shard ``queue=event`` family that
  differs only in backend.  The winner per workload is the config
  with the lowest final-age read p99 — the SLA view, where the
  throughput-optimal store is not automatically the tail-optimal one.
  The bench raises unless at least one scenario's winner differs from
  the paper loop's winner (workload mix must matter — the point of
  the scenario engine), and unless every scenario sample's per-tenant
  latency counts sum to its global count (the reconciliation
  invariant).

Results go to ``BENCH_scale_volume.json`` (schema
``bench-scale-volume/9``, documented in ``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_volume.py
    PYTHONPATH=src python benchmarks/bench_scale_volume.py --quick
    PYTHONPATH=src python benchmarks/bench_scale_volume.py \
        --scenarios segment_store --segments 200000
    PYTHONPATH=src python benchmarks/bench_scale_volume.py \
        --volumes 268435456,1073741824 --index tiered
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import tempfile
import time
from pathlib import Path

from repro.backends.registry import build_store
from repro.backends.spec import StoreSpec
from repro.disk.device import (
    BlockDevice, IoRequest, _FlatSegmentStore, _SegmentStore,
)
from repro.disk.geometry import scaled_disk
from repro.disk.policy import DevicePolicy
from repro.alloc.extent import Extent
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.units import KB, MB

DEFAULT_VOLUMES = (128 * MB, 512 * MB, 2048 * MB)
QUICK_VOLUMES = (64 * MB,)
#: Small files (64 KB in 16 KB requests) maximise allocator pressure per
#: byte: every file is a fresh create/append/delete cycle.
FILE_BYTES = 64 * KB
REQUEST_BYTES = 16 * KB
OCCUPANCY = 0.5
CHURN_OPS = 400

DEFAULT_SEGMENTS = 100_000
QUICK_SEGMENTS = 20_000
SEGMENT_BYTES = 64
SEGMENT_READS = 20_000

DEFAULT_REQUESTS = 20_000
QUICK_REQUESTS = 4_000
DEFAULT_BATCH = 64

AGING_VOLUME = 512 * MB
QUICK_AGING_VOLUME = 128 * MB
AGING_OBJECT = 256 * KB
AGING_SHARDS = 4
AGING_READ_BATCH = 16
#: Overwrites per loaded object before the read sweep (storage age).
AGING_CHURN_AGE = 2

RESUME_VOLUME = 256 * MB
QUICK_RESUME_VOLUME = 64 * MB
RESUME_AGES = (0.0, 1.0, 2.0)

DEGRADED_REPLICAS = 2
DEGRADED_DEAD_SHARD = 1
DEGRADED_REBUILD_RATE = 0.25
#: Objects re-replicated per rebuild slice while reads interleave.
DEGRADED_REBUILD_SLICE = 8

#: Per-shard FIFO depth and target utilisation for ``tail_latency``.
#: The Poisson rate is calibrated as ``TAIL_UTILIZATION`` times the
#: fresh store's closed-loop sweep throughput, then held fixed across
#: every phase so aging/degradation surface as queueing delay.
TAIL_DEPTH = 64
TAIL_UTILIZATION = 0.7
TAIL_REBUILD_SLICE = 8

#: ``continuous_operation`` grid: checkpoints per sweep x rebalance
#: duty cycle, against one quiescent baseline sweep.  The checkpoint
#: write-back runs at a fixed duty cycle; the rebalance rates sweep
#: from unthrottled to heavily throttled.
CONTINUOUS_CADENCES = (1, 2)
CONTINUOUS_REBALANCE_RATES = (1.0, 0.5, 0.25)
CONTINUOUS_CHECKPOINT_RATE = 0.5
#: Fraction of the population delete/re-put across a sweep (drives
#: round-robin placement drift for the rebalance to undo), and the
#: number of churn bursts the drift is spread over — continuous
#: operation means maintenance interleaves with the foreground, not
#: one atomic pause.
CONTINUOUS_DRIFT_FRACTION = 8
CONTINUOUS_BURSTS = 8
#: Offered load for the continuous grid, as a fraction of closed-loop
#: capacity.  Lower than TAIL_UTILIZATION so the quiescent tail stays
#: close to the service time and background interference stands out.
CONTINUOUS_UTILIZATION = 0.6

#: ``scenario_matrix`` sweep: store configs (backend is the only
#: variable; every config is a 4-shard overlapped event-queue store so
#: the read sweep yields a comparable sojourn distribution) crossed
#: with workloads — the paper's uniform churn loop plus one spec per
#: scenario preset.  The winner per workload is the config with the
#: lowest final-age read p99.
SCENARIO_MATRIX_CONFIGS = (
    ("fs_event", "filesystem:shards=4,overlap=true,queue=event"),
    ("db_event", "database:shards=4,overlap=true,queue=event"),
    ("gfs_event", "gfs:shards=4,overlap=true,queue=event,chunk_size=8M"),
    ("lfs_event", "lfs:shards=4,overlap=true,queue=event"),
)
SCENARIO_MATRIX_WORKLOADS = (
    ("paper", None),
    ("video_dvr", "video_dvr:tenants=2,seed=5"),
    ("log_ingest", "log_ingest:tenants=3,seed=5"),
    ("cdn_churn", "cdn_churn:tenants=4,seed=5"),
    ("photo_sharing", "photo_sharing:tenants=4,seed=5"),
)
SCENARIO_MATRIX_AGES = (0.0, 1.0, 2.0)

SCENARIOS = ("fs_churn", "segment_store", "batched_writes",
             "sharded_aging", "shard_skew", "degraded_aging",
             "tail_latency", "continuous_operation", "checkpoint_resume",
             "scenario_matrix")


def run_volume(kind: str, volume: int, seed: int = 7) -> dict:
    device = BlockDevice(scaled_disk(volume))
    fs = SimFilesystem(device, FsConfig(index_kind=kind))
    rng = random.Random(seed)

    def write_file(name: str) -> None:
        fs.create(name)
        remaining = FILE_BYTES
        while remaining > 0:
            request = min(REQUEST_BYTES, remaining)
            fs.append(name, request)
            remaining -= request

    target = int(fs.data_capacity * OCCUPANCY)
    names: list[str] = []
    t0 = time.perf_counter()
    while fs.used_bytes < target:
        name = f"f{len(names)}"
        write_file(name)
        names.append(name)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for op in range(CHURN_OPS):
        victim = rng.randrange(len(names))
        fs.delete(names[victim])
        names[victim] = f"f{len(names) + op}"
        write_file(names[victim])
    churn_s = time.perf_counter() - t0

    fs.check_invariants()
    return {
        "scenario": "fs_churn",
        "index": kind,
        "volume_bytes": volume,
        "files": len(names),
        "build_seconds": round(build_s, 4),
        "churn_ops": CHURN_OPS,
        "churn_us_per_op": round(churn_s / CHURN_OPS * 1e6, 2),
        "free_runs": len(fs.free_index),
        "modelled_device_s": round(device.clock_s, 4),
    }


def run_segment_store(nsegments: int, seed: int = 11) -> list[dict]:
    """Random disjoint writes then random reads, blocked vs flat."""
    slots = list(range(nsegments))
    random.Random(seed).shuffle(slots)
    payload = b"\xa5" * SEGMENT_BYTES
    nreads = min(SEGMENT_READS, nsegments)
    rows = []
    for store_kind, store in (("blocked", _SegmentStore()),
                              ("flat", _FlatSegmentStore())):
        t0 = time.perf_counter()
        for slot in slots:
            store.write(slot * 2 * SEGMENT_BYTES, payload)
        write_s = time.perf_counter() - t0
        read_rng = random.Random(seed + 1)
        t0 = time.perf_counter()
        for _ in range(nreads):
            slot = read_rng.randrange(nsegments)
            store.read(slot * 2 * SEGMENT_BYTES, SEGMENT_BYTES)
        read_s = time.perf_counter() - t0
        assert len(store) == nsegments
        rows.append({
            "scenario": "segment_store",
            "store": store_kind,
            "segments": nsegments,
            "segment_bytes": SEGMENT_BYTES,
            "write_us_per_op": round(write_s / nsegments * 1e6, 3),
            "read_us_per_op": round(read_s / nreads * 1e6, 3),
            "write_seconds": round(write_s, 4),
            "read_seconds": round(read_s, 4),
        })
    return rows


def run_batched_writes(nrequests: int, batch: int,
                       seed: int = 13) -> list[dict]:
    """Per-request vs batched submission of one scattered write stream."""
    volume = 2048 * MB
    stride = volume // (nrequests + 1)
    rng = random.Random(seed)
    offsets = [i * stride for i in range(nrequests)]
    rng.shuffle(offsets)

    def requests() -> list[IoRequest]:
        return [IoRequest(True, [Extent(off, REQUEST_BYTES)])
                for off in offsets]

    rows = []
    per = BlockDevice(scaled_disk(volume))
    reqs = requests()
    t0 = time.perf_counter()
    for req in reqs:
        per.submit([req])
    per_s = time.perf_counter() - t0
    rows.append({
        "scenario": "batched_writes",
        "mode": "per_request",
        "requests": nrequests,
        "batch": 1,
        "host_us_per_op": round(per_s / nrequests * 1e6, 3),
        "modelled_device_s": round(per.clock_s, 4),
        "modelled_seeks": per.stats.seeks,
        "stats_records": per.stats.requests,
    })
    batched = BlockDevice(scaled_disk(volume))
    reqs = requests()
    t0 = time.perf_counter()
    for lo in range(0, nrequests, batch):
        batched.submit(reqs[lo: lo + batch])
    batched_s = time.perf_counter() - t0
    assert abs(batched.clock_s - per.clock_s) < 1e-9 * max(1.0, per.clock_s)
    rows.append({
        "scenario": "batched_writes",
        "mode": "batched",
        "requests": nrequests,
        "batch": batch,
        "host_us_per_op": round(batched_s / nrequests * 1e6, 3),
        "modelled_device_s": round(batched.clock_s, 4),
        "modelled_seeks": batched.stats.seeks,
        "stats_records": batched.stats.requests,
    })
    elevator = BlockDevice(scaled_disk(volume))
    reqs = requests()
    t0 = time.perf_counter()
    for lo in range(0, nrequests, batch):
        elevator.submit(reqs[lo: lo + batch], reorder=True)
    elevator_s = time.perf_counter() - t0
    rows.append({
        "scenario": "batched_writes",
        "mode": "batched_elevator",
        "requests": nrequests,
        "batch": batch,
        "host_us_per_op": round(elevator_s / nrequests * 1e6, 3),
        "modelled_device_s": round(elevator.clock_s, 4),
        "modelled_seeks": elevator.stats.seeks,
        "stats_records": elevator.stats.requests,
    })
    return rows


def run_sharded_aging(volume: int, seed: int = 17) -> list[dict]:
    """Aged read time: single vs shards vs +C-LOOK vs +overlap.

    Every store is built from a :class:`StoreSpec` through the registry
    — the bench never names a backend class.  The workload is the aging
    shape: bulk load LFS to 50 % occupancy, overwrite-churn to storage
    age ``AGING_CHURN_AGE`` (scattering objects through the log), then
    a whole-population random read sweep through ``read_many``, whose
    batching/ordering the spec's :class:`DevicePolicy` governs.

    Two time models per row: ``sweep_device_s`` sums device busy time
    across volumes (the serial model) and ``sweep_wall_s`` is the
    overlap scheduler's makespan (shard lanes run concurrently; equal
    to the sum for stores without ``overlap=true``).  The
    ``sharded_overlap`` config is the headline: four lanes plus the
    elevator make the aged sweep's modelled *wall* time a multiple
    lower than the single-volume baseline.
    """
    specs = [
        ("single", StoreSpec("lfs", volume_bytes=volume)),
        ("sharded", StoreSpec("lfs", volume_bytes=volume,
                              shards=AGING_SHARDS)),
        ("sharded_clook", StoreSpec(
            "lfs", volume_bytes=volume, shards=AGING_SHARDS,
            policy=DevicePolicy(batch_size=AGING_READ_BATCH,
                                reorder="clook"),
        )),
        ("sharded_overlap", StoreSpec(
            "lfs", volume_bytes=volume, shards=AGING_SHARDS,
            overlap=True,
            policy=DevicePolicy(batch_size=AGING_READ_BATCH,
                                reorder="clook"),
        )),
    ]
    rows = []
    for label, spec in specs:
        store = build_store(spec)
        rng = random.Random(seed)
        target = int(spec.volume_bytes * OCCUPANCY)
        keys: list[str] = []
        loaded = 0
        t0 = time.perf_counter()
        while loaded + AGING_OBJECT <= target:
            key = f"o{len(keys)}"
            store.put(key, size=AGING_OBJECT)
            keys.append(key)
            loaded += AGING_OBJECT
        for _ in range(AGING_CHURN_AGE * len(keys)):
            store.overwrite(rng.choice(keys), size=AGING_OBJECT)
        build_s = time.perf_counter() - t0
        churn_device_s = sum(d.clock_s for d in store.devices())

        sweep = list(keys)
        rng.shuffle(sweep)
        seeks_before = sum(d.stats.seeks for d in store.devices())
        scheduler = getattr(store, "scheduler", None)
        wall_before = scheduler.wall_time_s if scheduler else 0.0
        t0 = time.perf_counter()
        store.read_many(sweep)
        sweep_host_s = time.perf_counter() - t0
        sweep_device_s = sum(d.clock_s for d in store.devices()) \
            - churn_device_s
        sweep_wall_s = (scheduler.wall_time_s - wall_before
                        if scheduler else sweep_device_s)
        rows.append({
            "scenario": "sharded_aging",
            "config": label,
            "shards": spec.shards,
            "reorder": spec.policy.reorder,
            "read_batch": spec.policy.batch_size,
            "overlap": spec.overlap,
            "volume_bytes": spec.volume_bytes,
            "objects": len(keys),
            "storage_age": AGING_CHURN_AGE,
            "build_seconds": round(build_s, 4),
            "sweep_reads": len(sweep),
            "sweep_host_seconds": round(sweep_host_s, 4),
            "sweep_device_s": round(sweep_device_s, 4),
            "sweep_wall_s": round(sweep_wall_s, 4),
            "sweep_seeks": sum(d.stats.seeks for d in store.devices())
            - seeks_before,
            "modelled_device_s": round(
                sum(d.clock_s for d in store.devices()), 4),
        })
    return rows


def run_shard_skew(volume: int, seed: int = 19) -> list[dict]:
    """Occupancy skew under hash placement, before/after rebalancing.

    Hash placement spreads *many* keys evenly but a store of tens of
    large objects gets real per-shard skew (law of small numbers) — the
    production complaint rebalancing exists for.  The scenario loads a
    mixed-size population onto a 4-shard overlapped store, measures the
    max/min shard occupancy ratio and an aged whole-population read
    sweep, then runs ``rebalance(mode="even")`` and measures both
    again.  Reported: the skew ratio before/after, what migrated (all
    I/O charged through the shards' normal submit paths), and the
    sweep's summed vs overlapped time either side.
    """
    spec = StoreSpec("lfs", volume_bytes=volume, shards=AGING_SHARDS,
                     overlap=True,
                     policy=DevicePolicy(batch_size=AGING_READ_BATCH))
    store = build_store(spec)
    rng = random.Random(seed)
    # Few, large, mixed-size objects: 2-8 MB scaled to ~45 % occupancy.
    target = int(volume * 0.45)
    keys: list[str] = []
    loaded = 0
    while True:
        size = rng.randrange(8, 33) * (volume // 2048)
        if loaded + size > target:
            break
        key = f"o{len(keys)}"
        store.put(key, size=size)
        keys.append(key)
        loaded += size
    for _ in range(len(keys)):
        victim = rng.choice(keys)
        store.overwrite(victim, size=store.meta(victim).size)

    def sweep_times() -> tuple[float, float]:
        order = list(keys)
        rng.shuffle(order)
        clock0 = sum(d.clock_s for d in store.devices())
        wall0 = store.scheduler.wall_time_s
        store.read_many(order)
        return (sum(d.clock_s for d in store.devices()) - clock0,
                store.scheduler.wall_time_s - wall0)

    live_before = [s.live_bytes for s in store.shard_stats()]
    skew_before = store.occupancy_skew()
    device_before, wall_before = sweep_times()
    t0 = time.perf_counter()
    report = store.rebalance(mode="even")
    rebalance_host_s = time.perf_counter() - t0
    live_after = [s.live_bytes for s in store.shard_stats()]
    skew_after = store.occupancy_skew()
    device_after, wall_after = sweep_times()
    if skew_after > skew_before:
        raise AssertionError(
            f"shard_skew: rebalance worsened occupancy skew "
            f"({skew_before:.3f} -> {skew_after:.3f})"
        )
    return [{
        "scenario": "shard_skew",
        "shards": AGING_SHARDS,
        "placement": spec.placement,
        "volume_bytes": volume,
        "objects": len(keys),
        "live_bytes_per_shard_before": live_before,
        "live_bytes_per_shard_after": live_after,
        "occupancy_skew_before": round(skew_before, 4),
        "occupancy_skew_after": round(skew_after, 4),
        "moved_objects": report.moved_objects,
        "moved_bytes": report.moved_bytes,
        "rebalance_host_seconds": round(rebalance_host_s, 4),
        "sweep_device_s_before": round(device_before, 4),
        "sweep_wall_s_before": round(wall_before, 4),
        "sweep_device_s_after": round(device_after, 4),
        "sweep_wall_s_after": round(wall_after, 4),
    }]


def run_degraded_aging(volume: int, seed: int = 29) -> list[dict]:
    """Aged read sweeps through shard loss and charged rebuild.

    One replicated store (4 shards, ``replicas=2``, overlap + C-LOOK),
    aged the usual way, then measured through four phases of the same
    whole-population shuffled read sweep:

    * ``healthy`` — all shards up, reads served by primaries;
    * ``degraded`` — shard 1 killed; keys whose primary died fail over
      to their replica through the per-key (unbatched) path, so the
      sweep pays the degradation the counters record;
    * ``rebuilding`` — sweeps interleaved with throttled
      ``rebuild(rate=0.25, max_objects=slice)`` slices until redundancy
      is restored (copy time and throttle stall both charged through
      the normal lanes and reported);
    * ``rebuilt`` — full redundancy on the surviving shards.

    The bench raises if any phase leaves an object unreadable or the
    rebuild terminates with under-replicated keys.
    """
    spec = StoreSpec("lfs", volume_bytes=volume, shards=AGING_SHARDS,
                     overlap=True, replicas=DEGRADED_REPLICAS,
                     policy=DevicePolicy(batch_size=AGING_READ_BATCH,
                                         reorder="clook"))
    store = build_store(spec)
    rng = random.Random(seed)
    # Logical load target: each object costs ``replicas`` physical
    # copies, so halve the usual occupancy target.
    target = int(volume * OCCUPANCY) // DEGRADED_REPLICAS
    keys: list[str] = []
    loaded = 0
    t0 = time.perf_counter()
    while loaded + AGING_OBJECT <= target:
        key = f"o{len(keys)}"
        store.put(key, size=AGING_OBJECT)
        keys.append(key)
        loaded += AGING_OBJECT
    for _ in range(AGING_CHURN_AGE * len(keys)):
        store.overwrite(rng.choice(keys), size=AGING_OBJECT)
    build_s = time.perf_counter() - t0

    def sweep() -> dict:
        order = list(keys)
        rng.shuffle(order)
        clock0 = sum(d.clock_s for d in store.devices())
        wall0 = store.scheduler.wall_time_s
        deg0, fail0 = store.degraded_reads, store.failovers
        t0 = time.perf_counter()
        store.read_many(order)
        return {
            "sweep_reads": len(order),
            "sweep_host_seconds": round(time.perf_counter() - t0, 4),
            "sweep_device_s": round(
                sum(d.clock_s for d in store.devices()) - clock0, 4),
            "sweep_wall_s": round(
                store.scheduler.wall_time_s - wall0, 4),
            "degraded_reads": store.degraded_reads - deg0,
            "failovers": store.failovers - fail0,
        }

    def check_all_readable(phase: str) -> None:
        for key in keys:
            if store.meta(key).size != AGING_OBJECT:
                raise AssertionError(
                    f"degraded_aging[{phase}]: {key} unreadable or resized")

    def row(phase: str, measures: dict, **extra) -> dict:
        base = {
            "scenario": "degraded_aging",
            "phase": phase,
            "shards": AGING_SHARDS,
            "replicas": DEGRADED_REPLICAS,
            "volume_bytes": volume,
            "objects": len(keys),
            "storage_age": AGING_CHURN_AGE,
            "dead_shards": len(store.dead_shards),
        }
        base.update(measures)
        base.update(extra)
        return base

    rows = [row("healthy", sweep(), build_seconds=round(build_s, 4))]
    check_all_readable("healthy")

    store.fail_shard(DEGRADED_DEAD_SHARD)
    rows.append(row("degraded", sweep(),
                    under_replicated=len(store.under_replicated())))
    check_all_readable("degraded")

    # Interleave throttled rebuild slices with read sweeps; the read
    # cost is reported separately from the rebuild's copy/stall time.
    slices = 0
    copy_s = stall_s = 0.0
    rebuilt_objects = rebuilt_bytes = 0
    read_totals = {"sweep_reads": 0, "sweep_host_seconds": 0.0,
                   "sweep_device_s": 0.0, "sweep_wall_s": 0.0,
                   "degraded_reads": 0, "failovers": 0}
    while store.under_replicated():
        report = store.rebuild(rate=DEGRADED_REBUILD_RATE,
                               max_objects=DEGRADED_REBUILD_SLICE)
        if report.rebuilt_objects == 0:
            raise AssertionError(
                "degraded_aging: rebuild slice made no progress with "
                f"{len(store.under_replicated())} keys still hurt")
        slices += 1
        copy_s += report.copy_device_s
        stall_s += report.stall_s
        rebuilt_objects += report.rebuilt_objects
        rebuilt_bytes += report.rebuilt_bytes
        for name, value in sweep().items():
            read_totals[name] = round(read_totals[name] + value, 4) \
                if isinstance(value, float) else read_totals[name] + value
    rows.append(row("rebuilding", read_totals,
                    rebuild_slices=slices,
                    rebuild_rate=DEGRADED_REBUILD_RATE,
                    rebuilt_objects=rebuilt_objects,
                    rebuilt_bytes=rebuilt_bytes,
                    rebuild_copy_device_s=round(copy_s, 4),
                    rebuild_stall_s=round(stall_s, 4)))
    check_all_readable("rebuilding")

    rows.append(row("rebuilt", sweep()))
    check_all_readable("rebuilt")
    return rows


def run_tail_latency(volume: int, seed: int = 31) -> list[dict]:
    """Sojourn-time percentiles across aging, shard loss, and rebuild.

    One replicated store (4 shards, ``replicas=2``, ``overlap=true``,
    ``queue=event`` with depth ``TAIL_DEPTH``).  After the bulk load a
    closed-loop per-object read sweep measures the fresh store's
    capacity; the open-loop Poisson rate is then pinned at
    ``TAIL_UTILIZATION`` of it and **never changes again**.  Every
    subsequent phase replays the same shuffled per-object sweep under
    that rate, so a slower store can't hide behind a slower client:
    service times grow, the fixed arrival stream piles up behind them,
    and the sojourn tail stretches.  Reported per phase: wall/device
    time plus p50/p95/p99/max sojourn from the phase's own window
    histogram.  The bench raises if the degraded p99 undercuts the
    healthy (aged) p99 — the tail must record the damage.
    """
    spec = StoreSpec("lfs", volume_bytes=volume, shards=AGING_SHARDS,
                     overlap=True, replicas=DEGRADED_REPLICAS,
                     queue="event", queue_depth=TAIL_DEPTH)
    store = build_store(spec)
    sched = store.scheduler
    rng = random.Random(seed)
    target = int(volume * OCCUPANCY) // DEGRADED_REPLICAS
    keys: list[str] = []
    loaded = 0
    t0 = time.perf_counter()
    while loaded + AGING_OBJECT <= target:
        key = f"o{len(keys)}"
        store.put(key, size=AGING_OBJECT)
        keys.append(key)
        loaded += AGING_OBJECT
    build_s = time.perf_counter() - t0

    def sweep(phase: str) -> dict:
        """One shuffled per-object read sweep in its own window."""
        order = list(keys)
        rng.shuffle(order)
        clock0 = sum(d.clock_s for d in store.devices())
        win = sched.start_window(phase)
        t0 = time.perf_counter()
        for key in order:
            store.get(key)
        host_s = time.perf_counter() - t0
        sched.end_window(win)
        lat = win.latency
        return {
            "sweep_reads": len(order),
            "sweep_host_seconds": round(host_s, 4),
            "sweep_device_s": round(
                sum(d.clock_s for d in store.devices()) - clock0, 4),
            "sweep_wall_s": round(win.wall_time_s, 4),
            "lat_count": lat.count,
            "lat_p50_ms": round(lat.percentile(50) * 1e3, 4),
            "lat_p95_ms": round(lat.percentile(95) * 1e3, 4),
            "lat_p99_ms": round(lat.percentile(99) * 1e3, 4),
            "lat_max_ms": round(lat.max_s * 1e3, 4),
        }

    # Calibration: a closed-loop sweep of the fresh store measures the
    # zero-queueing wall per read; the Poisson rate is a fixed fraction
    # of that capacity.  The rate comes from the window's exact wall —
    # the rounded sweep report could lose precision or even round a
    # very fast calibration to a zero divisor.
    order = list(keys)
    rng.shuffle(order)
    calibration_win = sched.start_window("calibrate")
    for key in order:
        store.get(key)
    sched.end_window(calibration_win)
    closed_wall = calibration_win.wall_time_s
    if closed_wall <= 0.0:
        raise AssertionError(
            "tail_latency: calibration sweep charged no wall time")
    rate = TAIL_UTILIZATION * len(keys) / closed_wall
    arrival = f"poisson:rate={rate:g}:seed={seed}"

    def row(phase: str, measures: dict, **extra) -> dict:
        base = {
            "scenario": "tail_latency",
            "phase": phase,
            "shards": AGING_SHARDS,
            "replicas": DEGRADED_REPLICAS,
            "queue_depth": TAIL_DEPTH,
            "arrival_rate": round(rate, 2),
            "volume_bytes": volume,
            "objects": len(keys),
            "dead_shards": len(store.dead_shards),
        }
        base.update(measures)
        base.update(extra)
        return base

    sched.set_arrival(arrival)
    rows = [row("fresh", sweep("fresh"),
                build_seconds=round(build_s, 4),
                closed_wall_s=round(closed_wall, 4))]

    # Churn to storage age 2 under closed arrivals (background work,
    # not part of the measured open-loop stream), then re-measure.
    sched.set_arrival("closed")
    for _ in range(AGING_CHURN_AGE * len(keys)):
        store.overwrite(rng.choice(keys), size=AGING_OBJECT)
    sched.set_arrival(arrival)
    rows.append(row("aged", sweep("aged"), storage_age=AGING_CHURN_AGE))

    store.fail_shard(DEGRADED_DEAD_SHARD)
    deg0, fail0 = store.degraded_reads, store.failovers
    rows.append(row("degraded", sweep("degraded"),
                    degraded_reads=store.degraded_reads - deg0,
                    failovers=store.failovers - fail0,
                    under_replicated=len(store.under_replicated())))

    # Throttled rebuild slices interleaved with the same sweep; the
    # phase's histogram sees reads queued behind rebuild copy traffic
    # and the duty-cycle stalls charged through the queue frontier.
    slices = 0
    win = sched.start_window("rebuilding")
    clock0 = sum(d.clock_s for d in store.devices())
    reads = 0
    t0 = time.perf_counter()
    while store.under_replicated():
        report = store.rebuild(rate=DEGRADED_REBUILD_RATE,
                               max_objects=TAIL_REBUILD_SLICE)
        if report.rebuilt_objects == 0:
            raise AssertionError(
                "tail_latency: rebuild slice made no progress with "
                f"{len(store.under_replicated())} keys still hurt")
        slices += 1
        order = list(keys)
        rng.shuffle(order)
        for key in order:
            store.get(key)
        reads += len(order)
    host_s = time.perf_counter() - t0
    sched.end_window(win)
    lat = win.latency
    rows.append(row("rebuilding", {
        "sweep_reads": reads,
        "sweep_host_seconds": round(host_s, 4),
        "sweep_device_s": round(
            sum(d.clock_s for d in store.devices()) - clock0, 4),
        "sweep_wall_s": round(win.wall_time_s, 4),
        "lat_count": lat.count,
        "lat_p50_ms": round(lat.percentile(50) * 1e3, 4),
        "lat_p95_ms": round(lat.percentile(95) * 1e3, 4),
        "lat_p99_ms": round(lat.percentile(99) * 1e3, 4),
        "lat_max_ms": round(lat.max_s * 1e3, 4),
    }, rebuild_slices=slices, rebuild_rate=DEGRADED_REBUILD_RATE))

    rows.append(row("rebuilt", sweep("rebuilt")))

    phases = {r["phase"]: r for r in rows}
    if phases["degraded"]["lat_p99_ms"] < phases["aged"]["lat_p99_ms"]:
        raise AssertionError(
            "tail_latency: degraded p99 "
            f"({phases['degraded']['lat_p99_ms']} ms) undercuts healthy "
            f"p99 ({phases['aged']['lat_p99_ms']} ms)")
    # The queue's books must balance at the end of the scenario.
    sched.drain()
    if not (sched.submitted == sched.completed == sched.latency.count):
        raise AssertionError("tail_latency: scheduler books don't balance")
    return rows


def run_continuous_operation(volume: int, seed: int = 37) -> list[dict]:
    """Foreground tail latency while checkpoints and rebalances run.

    Every grid cell gets its own identically-built store (4 shards,
    ``replicas=2``, ``placement=round_robin``, ``queue=event``): same
    bulk load, same closed-loop calibration, same shuffled sweep
    order, same in-sweep delete/re-put churn bursts, same arrival seed
    — cells differ *only* in the background work their sweep carries,
    so the grid measures the throttles and nothing else (a shared
    store would compound LFS aging phase over phase and swamp the
    signal).  Continuous operation means maintenance interleaves with
    the foreground: the churn (``CONTINUOUS_DRIFT_FRACTION`` of the
    population, spread over ``CONTINUOUS_BURSTS`` bursts) drifts keys
    off their round-robin placement mid-sweep, and each active cell
    answers every burst with ``rebalance(mode="placement", rate=R)``
    riding the background lane, plus ``cadence`` charged checkpoint
    write-backs (real encoded snapshot + pickled-state sizes, duty
    cycle ``CONTINUOUS_CHECKPOINT_RATE``).  The quiescent cell churns
    identically but never rebalances or checkpoints.  The bench raises
    unless every active *foreground* p99 sits strictly above the
    quiescent p99 and, per cadence, p99 falls as the rebalance
    throttle drops.
    """
    import pickle

    from repro.persist import encode_free_index, encode_journal, \
        fs_components

    spec = StoreSpec("lfs", volume_bytes=volume, shards=AGING_SHARDS,
                     placement="round_robin", overlap=True,
                     replicas=DEGRADED_REPLICAS,
                     queue="event", queue_depth=TAIL_DEPTH)
    target = int(volume * OCCUPANCY) // DEGRADED_REPLICAS

    def cell(phase: str, cadence: int = 0,
             rebalance_rate: float | None = None) -> dict:
        """Build, calibrate, drift, and sweep one isolated store."""
        rng = random.Random(seed)
        store = build_store(spec)
        sched = store.scheduler
        keys: list[str] = []
        loaded = 0
        t0 = time.perf_counter()
        while loaded + AGING_OBJECT <= target:
            key = f"o{len(keys)}"
            store.put(key, size=AGING_OBJECT)
            keys.append(key)
            loaded += AGING_OBJECT
        build_s = time.perf_counter() - t0

        # What a checkpoint of this store actually costs on the wire:
        # the per-shard snapshot codecs plus the pickled store state.
        ckpt_bytes = len(pickle.dumps(store))
        for _, fs in fs_components(store):
            ckpt_bytes += len(encode_free_index(fs.free_index))
            ckpt_bytes += len(encode_journal(fs.journal))

        # Calibration (same convention as tail_latency): closed-loop
        # sweep of the fresh store, then a fixed open-loop rate.
        order = list(keys)
        rng.shuffle(order)
        calibration_win = sched.start_window("calibrate")
        for key in order:
            store.get(key)
        sched.end_window(calibration_win)
        closed_wall = calibration_win.wall_time_s
        if closed_wall <= 0.0:
            raise AssertionError(
                "continuous_operation: calibration charged no wall time")
        rate = CONTINUOUS_UTILIZATION * len(keys) / closed_wall

        # Placement drift, spread over the sweep in bursts: each burst
        # delete/re-puts a slice of the population, shifting those keys
        # off the round-robin rotation so the answering rebalance has
        # real copies to make.  Every cell churns the same keys at the
        # same sweep positions; only the active cells answer.
        drift = max(CONTINUOUS_BURSTS,
                    len(keys) // CONTINUOUS_DRIFT_FRACTION)
        drifted = rng.sample(keys, drift)
        group_size = len(drifted) / CONTINUOUS_BURSTS
        groups = [drifted[round(g * group_size):
                          round((g + 1) * group_size)]
                  for g in range(CONTINUOUS_BURSTS)]

        sched.set_arrival(f"poisson:rate={rate:g}:seed={seed}")
        order = list(keys)
        rng.shuffle(order)
        burst_at = {round((g + 1) * len(order) / (CONTINUOUS_BURSTS + 1))
                    - 1: group for g, group in enumerate(groups)}
        ckpt_at = {round((c + 1) * len(order) / (cadence + 1)) - 1
                   for c in range(cadence)}
        clock0 = sum(d.clock_s for d in store.devices())
        moved = 0
        copy_s = 0.0
        stall_s = 0.0
        ckpt_s = 0.0
        win = sched.start_window(phase)
        t0 = time.perf_counter()
        for i, key in enumerate(order):
            store.get(key)
            group = burst_at.get(i)
            if group is not None:
                for name in group:
                    store.delete(name)
                    store.put(name, size=AGING_OBJECT)
                if rebalance_rate:
                    report = store.rebalance(mode="placement",
                                             rate=rebalance_rate)
                    moved += report.moved_objects
                    copy_s += report.copy_device_s
                    stall_s += report.stall_s
            if i in ckpt_at:
                ckpt_s += store.background_write(
                    ckpt_bytes, rate=CONTINUOUS_CHECKPOINT_RATE)
        host_s = time.perf_counter() - t0
        sched.end_window(win)
        sched.drain()
        if not (sched.submitted == sched.completed
                == sched.latency.count):
            raise AssertionError(
                f"continuous_operation[{phase}]: scheduler books "
                "don't balance")
        lat = win.latency
        return {
            "scenario": "continuous_operation",
            "phase": phase,
            "shards": AGING_SHARDS,
            "replicas": DEGRADED_REPLICAS,
            "queue_depth": TAIL_DEPTH,
            "arrival_rate": round(rate, 2),
            "volume_bytes": volume,
            "objects": len(keys),
            "build_seconds": round(build_s, 4),
            "closed_wall_s": round(closed_wall, 4),
            "drift_objects": drift,
            "checkpoints": cadence,
            "checkpoint_rate": CONTINUOUS_CHECKPOINT_RATE,
            "checkpoint_bytes": ckpt_bytes,
            "checkpoint_device_s": round(ckpt_s, 4),
            "rebalance_rate": rebalance_rate,
            "churn_bursts": CONTINUOUS_BURSTS,
            "moved_objects": moved,
            "rebalance_copy_s": round(copy_s, 4),
            "rebalance_stall_s": round(stall_s, 4),
            "sweep_reads": len(order),
            "sweep_host_seconds": round(host_s, 4),
            "sweep_device_s": round(
                sum(d.clock_s for d in store.devices()) - clock0, 4),
            "sweep_wall_s": round(win.wall_time_s, 4),
            "lat_count": lat.count,
            "lat_p50_ms": round(lat.percentile(50) * 1e3, 4),
            "lat_p95_ms": round(lat.percentile(95) * 1e3, 4),
            "lat_p99_ms": round(lat.percentile(99) * 1e3, 4),
            "lat_max_ms": round(lat.max_s * 1e3, 4),
            "background_requests": win.background_latency.count,
            "background_max_ms": round(
                win.background_latency.max_s * 1e3, 4),
        }

    rows = [cell("quiescent")]
    for cadence in CONTINUOUS_CADENCES:
        for rebalance_rate in CONTINUOUS_REBALANCE_RATES:
            phase = f"ckpt_x{cadence}_rb{rebalance_rate:g}"
            print(f"    continuous_operation: {phase}", flush=True)
            row = cell(phase, cadence=cadence,
                       rebalance_rate=rebalance_rate)
            if row["moved_objects"] == 0:
                raise AssertionError(
                    f"continuous_operation[{phase}]: the placement "
                    "drift produced nothing for the rebalance to move")
            rows.append(row)

    quiescent_p99 = rows[0]["lat_p99_ms"]
    for row in rows[1:]:
        if row["lat_p99_ms"] <= quiescent_p99:
            raise AssertionError(
                f"continuous_operation[{row['phase']}]: active p99 "
                f"({row['lat_p99_ms']} ms) does not exceed the "
                f"quiescent p99 ({quiescent_p99} ms)")
    for cadence in CONTINUOUS_CADENCES:
        series = [row for row in rows[1:]
                  if row["checkpoints"] == cadence]
        p99s = [row["lat_p99_ms"] for row in series]
        if any(later > earlier for earlier, later in zip(p99s, p99s[1:])):
            raise AssertionError(
                f"continuous_operation: p99 did not fall as the "
                f"rebalance throttle dropped at cadence {cadence}: "
                f"{[(r['phase'], r['lat_p99_ms']) for r in series]}")
        if p99s[-1] >= p99s[0]:
            raise AssertionError(
                f"continuous_operation: heaviest throttle "
                f"({series[-1]['phase']}) must beat unthrottled "
                f"({series[0]['phase']}): {p99s}")
    return rows


def run_checkpoint_resume(volume: int, seed: int = 23) -> list[dict]:
    """Kill an aging run after its mid-run checkpoint and resume it.

    The resumed run record must reproduce the uninterrupted baseline
    byte for byte (``RunResult.to_dict()`` equality); a divergence
    raises, so the CI smoke of this scenario is the regression gate.
    The reported numbers are the cost side: checkpoint directory size
    and host seconds spent saving and resuming.
    """
    from repro.core.experiment import ExperimentConfig, ExperimentRunner
    from repro.core.workload import ConstantSize

    configs = [
        ("tiered", StoreSpec("filesystem", volume_bytes=volume)),
        ("naive", StoreSpec("filesystem", volume_bytes=volume,
                            options={"index_kind": "naive"})),
        ("sharded", StoreSpec("filesystem", volume_bytes=volume,
                              shards=3)),
    ]

    class _Killed(Exception):
        pass

    rows = []
    for label, spec in configs:
        print(f"    checkpoint_resume: {label}", flush=True)
        cfg = ExperimentConfig(store=spec, sizes=ConstantSize(AGING_OBJECT),
                               occupancy=0.4, ages=RESUME_AGES,
                               reads_per_sample=16, seed=seed)
        baseline = ExperimentRunner(cfg).run()
        with tempfile.TemporaryDirectory() as directory:
            kill_age = RESUME_AGES[1]

            def killer(phase: str, value: float) -> None:
                if phase == "checkpoint" and value == kill_age:
                    raise _Killed

            t0 = time.perf_counter()
            try:
                ExperimentRunner(cfg, progress=killer,
                                 checkpoint_dir=directory).run()
                raise RuntimeError("kill point never fired")
            except _Killed:
                pass
            killed_s = time.perf_counter() - t0
            checkpoint_bytes = sum(
                f.stat().st_size
                for f in Path(directory).rglob("*") if f.is_file()
            )
            t0 = time.perf_counter()
            resumed = ExperimentRunner(cfg, checkpoint_dir=directory,
                                       resume=True).run()
            resume_s = time.perf_counter() - t0
        if resumed.to_dict() != baseline.to_dict():
            raise AssertionError(
                f"checkpoint_resume[{label}]: resumed run record "
                "diverged from the uninterrupted baseline"
            )
        rows.append({
            "scenario": "checkpoint_resume",
            "config": label,
            "volume_bytes": volume,
            "ages": list(RESUME_AGES),
            "objects": baseline.objects_loaded,
            "samples": len(baseline.samples),
            "match": True,
            "checkpoint_bytes": checkpoint_bytes,
            "killed_run_seconds": round(killed_s, 4),
            "resume_seconds": round(resume_s, 4),
        })
    return rows


def run_scenario_matrix(volume: int, seed: int = 41) -> list[dict]:
    """Workloads x store configs, winner = lowest final-age read p99.

    The paper loop's single-tenant uniform churn picks one winner; the
    multi-tenant scenario presets (Zipf-popular reads, TTL churn,
    bursty tenant mixes, very different size distributions) pick their
    own.  The bench raises unless at least one scenario's winner
    differs from the paper loop's — if the workload mix never changed
    the answer, the scenario engine would be measuring nothing — and
    unless every scenario sample's per-tenant counts sum to its global
    interval count (the reconciliation invariant the scenario suite
    also pins).
    """
    from repro.core.experiment import ExperimentConfig, run_experiment
    from repro.core.workload import ConstantSize
    from repro.scenario.spec import ScenarioSpec

    rows = []
    winners: dict[str, str] = {}
    for workload, scenario_text in SCENARIO_MATRIX_WORKLOADS:
        best: tuple[str, float] | None = None
        for config, store_text in SCENARIO_MATRIX_CONFIGS:
            print(f"    scenario_matrix: {workload} on {config}",
                  flush=True)
            cfg = ExperimentConfig(
                store=StoreSpec.parse(store_text, volume_bytes=volume),
                sizes=(ConstantSize(AGING_OBJECT)
                       if scenario_text is None else None),
                scenario=(ScenarioSpec.parse(scenario_text)
                          if scenario_text else None),
                occupancy=0.4,
                ages=SCENARIO_MATRIX_AGES,
                reads_per_sample=24,
                seed=seed,
            )
            result = run_experiment(cfg)
            aged = [s for s in result.samples if s.age > 0]
            if scenario_text is not None:
                for sample in aged:
                    tenant_total = sum(
                        t["count"] for t in sample.tenant_lat.values())
                    if tenant_total != sample.scenario_lat["count"]:
                        raise AssertionError(
                            f"scenario_matrix[{workload}/{config}]: "
                            f"tenant counts ({tenant_total}) != global "
                            f"({sample.scenario_lat['count']}) at age "
                            f"{sample.age:.2f}")
            last = result.samples[-1]
            p99_ms = last.read_lat_p99_s * 1e3
            if p99_ms <= 0:
                raise AssertionError(
                    f"scenario_matrix[{workload}/{config}]: event store "
                    "reported no read-sweep p99")
            rows.append({
                "scenario": "scenario_matrix",
                "workload": workload,
                "workload_spec": (cfg.scenario.text() if cfg.scenario
                                  else "uniform-churn"),
                "config": config,
                "store": store_text,
                "volume_bytes": volume,
                "objects": result.objects_loaded,
                "final_age": round(last.age, 3),
                "read_wall_mbps": round(last.read_wall_mbps / MB, 2),
                "read_p50_ms": round(last.read_lat_p50_s * 1e3, 4),
                "read_p99_ms": round(p99_ms, 4),
                "churn_ops": (int(sum(s.scenario_lat.get("count", 0)
                                      for s in aged))
                              if scenario_text else None),
                "tenant_p99_ms": {
                    tenant: round(summ["p99_s"] * 1e3, 4)
                    for tenant, summ in last.tenant_lat.items()
                },
                "winner": False,
            })
            if best is None or p99_ms < best[1]:
                best = (config, p99_ms)
        assert best is not None
        winners[workload] = best[0]
        for row in rows:
            if (row["scenario"] == "scenario_matrix"
                    and row["workload"] == workload):
                row["winner"] = row["config"] == best[0]

    paper_winner = winners["paper"]
    divergent = [w for w, c in winners.items()
                 if w != "paper" and c != paper_winner]
    if not divergent:
        raise AssertionError(
            "scenario_matrix: every workload picked the paper-loop "
            f"winner ({paper_winner}); the tenant mixes changed nothing")
    print(f"    scenario_matrix: paper winner {paper_winner}, "
          f"divergent: {', '.join(f'{w}->{winners[w]}' for w in divergent)}",
          flush=True)
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small volume/segment counts (CI smoke)")
    parser.add_argument("--volumes", type=str, default=None,
                        help="comma-separated volume sizes in bytes")
    parser.add_argument("--index", type=str, default="tiered,naive",
                        help="comma-separated engines to measure")
    parser.add_argument("--scenarios", type=str, default=",".join(SCENARIOS),
                        help=f"comma-separated subset of {SCENARIOS}")
    parser.add_argument("--segments", type=int, default=None,
                        help="segment count for the segment_store scenario")
    parser.add_argument("--requests", type=int, default=None,
                        help="request count for the batched_writes scenario")
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH,
                        help="requests per submit() in batched_writes")
    parser.add_argument("--aging-volume", type=int, default=None,
                        help="volume size in bytes for sharded_aging")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent /
                        "BENCH_scale_volume.json")
    args = parser.parse_args(argv)

    if args.volumes:
        volumes = tuple(int(v) for v in args.volumes.split(","))
    else:
        volumes = QUICK_VOLUMES if args.quick else DEFAULT_VOLUMES
    kinds = tuple(args.index.split(","))
    scenarios = tuple(args.scenarios.split(","))
    for name in scenarios:
        if name not in SCENARIOS:
            parser.error(f"unknown scenario {name!r}; choose from {SCENARIOS}")
    nsegments = args.segments or (
        QUICK_SEGMENTS if args.quick else DEFAULT_SEGMENTS)
    nrequests = args.requests or (
        QUICK_REQUESTS if args.quick else DEFAULT_REQUESTS)

    rows = []
    if "fs_churn" in scenarios:
        for volume in volumes:
            for kind in kinds:
                print(f"... fs_churn {kind} @ {volume // MB} MB volume",
                      flush=True)
                rows.append(run_volume(kind, volume))
    if "segment_store" in scenarios:
        print(f"... segment_store @ {nsegments} segments", flush=True)
        rows.extend(run_segment_store(nsegments))
    if "batched_writes" in scenarios:
        print(f"... batched_writes @ {nrequests} requests, "
              f"batch {args.batch}", flush=True)
        rows.extend(run_batched_writes(nrequests, args.batch))
    if "sharded_aging" in scenarios:
        aging_volume = args.aging_volume or (
            QUICK_AGING_VOLUME if args.quick else AGING_VOLUME)
        print(f"... sharded_aging @ {aging_volume // MB} MB volume, "
              f"{AGING_SHARDS} shards", flush=True)
        rows.extend(run_sharded_aging(aging_volume))
    if "shard_skew" in scenarios:
        skew_volume = args.aging_volume or (
            QUICK_AGING_VOLUME if args.quick else AGING_VOLUME)
        print(f"... shard_skew @ {skew_volume // MB} MB volume, "
              f"{AGING_SHARDS} shards", flush=True)
        rows.extend(run_shard_skew(skew_volume))
    if "degraded_aging" in scenarios:
        degraded_volume = args.aging_volume or (
            QUICK_AGING_VOLUME if args.quick else AGING_VOLUME)
        print(f"... degraded_aging @ {degraded_volume // MB} MB volume, "
              f"{AGING_SHARDS} shards, replicas={DEGRADED_REPLICAS}",
              flush=True)
        rows.extend(run_degraded_aging(degraded_volume))
    if "tail_latency" in scenarios:
        tail_volume = args.aging_volume or (
            QUICK_AGING_VOLUME if args.quick else AGING_VOLUME)
        print(f"... tail_latency @ {tail_volume // MB} MB volume, "
              f"{AGING_SHARDS} shards, replicas={DEGRADED_REPLICAS}, "
              f"queue=event depth={TAIL_DEPTH}", flush=True)
        rows.extend(run_tail_latency(tail_volume))
    if "continuous_operation" in scenarios:
        continuous_volume = args.aging_volume or (
            QUICK_AGING_VOLUME if args.quick else AGING_VOLUME)
        print(f"... continuous_operation @ {continuous_volume // MB} MB "
              f"volume, {AGING_SHARDS} shards, cadence x rate grid "
              f"{CONTINUOUS_CADENCES} x {CONTINUOUS_REBALANCE_RATES}",
              flush=True)
        rows.extend(run_continuous_operation(continuous_volume))
    if "checkpoint_resume" in scenarios:
        resume_volume = QUICK_RESUME_VOLUME if args.quick else RESUME_VOLUME
        print(f"... checkpoint_resume @ {resume_volume // MB} MB volume",
              flush=True)
        rows.extend(run_checkpoint_resume(resume_volume))
    if "scenario_matrix" in scenarios:
        matrix_volume = args.aging_volume or (
            QUICK_AGING_VOLUME if args.quick else AGING_VOLUME)
        print(f"... scenario_matrix @ {matrix_volume // MB} MB volume, "
              f"{len(SCENARIO_MATRIX_WORKLOADS)} workloads x "
              f"{len(SCENARIO_MATRIX_CONFIGS)} configs", flush=True)
        rows.extend(run_scenario_matrix(matrix_volume))

    speedups: dict[str, float] = {}
    seg = {r["store"]: r for r in rows
           if r.get("scenario") == "segment_store"}
    if {"flat", "blocked"} <= seg.keys():
        for phase in ("write", "read"):
            blocked = seg["blocked"][f"{phase}_us_per_op"]
            if blocked > 0:
                speedups[f"segment_store_{phase}@{nsegments}"] = round(
                    seg["flat"][f"{phase}_us_per_op"] / blocked, 2)
    modes = {r["mode"]: r for r in rows
             if r.get("scenario") == "batched_writes"}
    if {"per_request", "batched"} <= modes.keys():
        batched_us = modes["batched"]["host_us_per_op"]
        if batched_us > 0:
            speedups[f"batched_host@{nrequests}"] = round(
                modes["per_request"]["host_us_per_op"] / batched_us, 2)
    aging = {r["config"]: r for r in rows
             if r.get("scenario") == "sharded_aging"}
    if {"single", "sharded_clook"} <= aging.keys():
        clook_s = aging["sharded_clook"]["sweep_device_s"]
        if clook_s > 0:
            speedups["sharded_clook_read_device_time"] = round(
                aging["single"]["sweep_device_s"] / clook_s, 2)
    if {"single", "sharded_overlap"} <= aging.keys():
        overlap_wall = aging["sharded_overlap"]["sweep_wall_s"]
        if overlap_wall > 0:
            speedups["sharded_overlap_read_wall_time"] = round(
                aging["single"]["sweep_device_s"] / overlap_wall, 2)
    skew = [r for r in rows if r.get("scenario") == "shard_skew"]
    if skew and skew[0]["occupancy_skew_after"] > 0:
        speedups["shard_skew_reduction"] = round(
            skew[0]["occupancy_skew_before"]
            / skew[0]["occupancy_skew_after"], 2)
    phases = {r["phase"]: r for r in rows
              if r.get("scenario") == "degraded_aging"}
    if {"healthy", "degraded"} <= phases.keys():
        healthy_wall = phases["healthy"]["sweep_wall_s"]
        if healthy_wall > 0:
            speedups["degraded_read_wall_penalty"] = round(
                phases["degraded"]["sweep_wall_s"] / healthy_wall, 2)
    if {"healthy", "rebuilt"} <= phases.keys():
        healthy_wall = phases["healthy"]["sweep_wall_s"]
        if healthy_wall > 0:
            speedups["rebuilt_read_wall_penalty"] = round(
                phases["rebuilt"]["sweep_wall_s"] / healthy_wall, 2)
    tail = {r["phase"]: r for r in rows
            if r.get("scenario") == "tail_latency"}
    if {"fresh", "aged"} <= tail.keys() and tail["fresh"]["lat_p99_ms"] > 0:
        speedups["aged_p99_inflation"] = round(
            tail["aged"]["lat_p99_ms"] / tail["fresh"]["lat_p99_ms"], 2)
    if {"aged", "degraded"} <= tail.keys() and tail["aged"]["lat_p99_ms"] > 0:
        speedups["degraded_p99_penalty"] = round(
            tail["degraded"]["lat_p99_ms"] / tail["aged"]["lat_p99_ms"], 2)
    continuous = {r["phase"]: r for r in rows
                  if r.get("scenario") == "continuous_operation"}
    if continuous:
        heavy = continuous.get("ckpt_x1_rb1")
        throttled = continuous.get("ckpt_x1_rb0.25")
        quiescent = continuous.get("quiescent")
        if heavy and quiescent and quiescent["lat_p99_ms"] > 0:
            speedups["continuous_active_p99_inflation"] = round(
                heavy["lat_p99_ms"] / quiescent["lat_p99_ms"], 2)
        if heavy and throttled and throttled["lat_p99_ms"] > 0:
            speedups["continuous_throttle_p99_relief"] = round(
                heavy["lat_p99_ms"] / throttled["lat_p99_ms"], 2)
    matrix = [r for r in rows if r.get("scenario") == "scenario_matrix"]
    if matrix:
        matrix_winners = {r["workload"]: r["config"]
                          for r in matrix if r["winner"]}
        paper_winner = matrix_winners.get("paper")
        if paper_winner:
            speedups["scenario_matrix_divergent_winners"] = sum(
                1 for w, c in matrix_winners.items()
                if w != "paper" and c != paper_winner)

    report = {
        "schema": "bench-scale-volume/9",
        "generated_by": "benchmarks/bench_scale_volume.py",
        "python": platform.python_version(),
        "config": {
            "file_bytes": FILE_BYTES,
            "request_bytes": REQUEST_BYTES,
            "occupancy": OCCUPANCY,
            "churn_ops": CHURN_OPS,
            "segments": nsegments,
            "segment_bytes": SEGMENT_BYTES,
            "requests": nrequests,
            "batch": args.batch,
            "aging_object_bytes": AGING_OBJECT,
            "aging_shards": AGING_SHARDS,
            "aging_read_batch": AGING_READ_BATCH,
            "aging_churn_age": AGING_CHURN_AGE,
            "degraded_replicas": DEGRADED_REPLICAS,
            "degraded_dead_shard": DEGRADED_DEAD_SHARD,
            "degraded_rebuild_rate": DEGRADED_REBUILD_RATE,
            "degraded_rebuild_slice": DEGRADED_REBUILD_SLICE,
            "tail_depth": TAIL_DEPTH,
            "tail_utilization": TAIL_UTILIZATION,
            "tail_rebuild_slice": TAIL_REBUILD_SLICE,
            "continuous_cadences": list(CONTINUOUS_CADENCES),
            "continuous_rebalance_rates": list(CONTINUOUS_REBALANCE_RATES),
            "continuous_checkpoint_rate": CONTINUOUS_CHECKPOINT_RATE,
            "continuous_drift_fraction": CONTINUOUS_DRIFT_FRACTION,
            "continuous_bursts": CONTINUOUS_BURSTS,
            "continuous_utilization": CONTINUOUS_UTILIZATION,
            "resume_ages": list(RESUME_AGES),
            "scenario_matrix_configs": [c for c, _ in
                                        SCENARIO_MATRIX_CONFIGS],
            "scenario_matrix_workloads": [w for w, _ in
                                          SCENARIO_MATRIX_WORKLOADS],
            "scenario_matrix_ages": list(SCENARIO_MATRIX_AGES),
            "scenarios": list(scenarios),
        },
        "results": rows,
        "speedups": speedups,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    churn = [r for r in rows if r.get("scenario") == "fs_churn"]
    if churn:
        print(f"\n{'volume':>10s} {'index':>7s} {'files':>7s} "
              f"{'build s':>8s} {'churn us/op':>12s} {'free runs':>10s}")
        for r in churn:
            print(f"{r['volume_bytes'] // MB:>8d}MB {r['index']:>7s} "
                  f"{r['files']:>7d} {r['build_seconds']:>8.2f} "
                  f"{r['churn_us_per_op']:>12.1f} {r['free_runs']:>10d}")
    if seg:
        print(f"\n{'store':>8s} {'segments':>9s} {'write us/op':>12s} "
              f"{'read us/op':>11s}")
        for r in seg.values():
            print(f"{r['store']:>8s} {r['segments']:>9d} "
                  f"{r['write_us_per_op']:>12.2f} "
                  f"{r['read_us_per_op']:>11.2f}")
    if modes:
        print(f"\n{'mode':>17s} {'batch':>6s} {'host us/op':>11s} "
              f"{'device s':>9s} {'seeks':>8s} {'records':>8s}")
        for r in modes.values():
            print(f"{r['mode']:>17s} {r['batch']:>6d} "
                  f"{r['host_us_per_op']:>11.2f} "
                  f"{r['modelled_device_s']:>9.2f} "
                  f"{r['modelled_seeks']:>8d} {r['stats_records']:>8d}")
    aging_rows = [r for r in rows if r.get("scenario") == "sharded_aging"]
    if aging_rows:
        print(f"\n{'config':>15s} {'shards':>6s} {'reorder':>8s} "
              f"{'objects':>8s} {'sweep dev s':>12s} {'sweep wall s':>13s} "
              f"{'sweep seeks':>12s}")
        for r in aging_rows:
            print(f"{r['config']:>15s} {r['shards']:>6d} "
                  f"{r['reorder']:>8s} {r['objects']:>8d} "
                  f"{r['sweep_device_s']:>12.3f} "
                  f"{r['sweep_wall_s']:>13.3f} {r['sweep_seeks']:>12d}")
    for r in (r for r in rows if r.get("scenario") == "shard_skew"):
        print(f"\nshard_skew: {r['objects']} objects on {r['shards']} "
              f"shards, skew {r['occupancy_skew_before']:.3f} -> "
              f"{r['occupancy_skew_after']:.3f} after moving "
              f"{r['moved_objects']} objects "
              f"({r['moved_bytes'] // MB} MB); aged sweep wall "
              f"{r['sweep_wall_s_before']:.3f}s -> "
              f"{r['sweep_wall_s_after']:.3f}s")
    degraded_rows = [r for r in rows
                     if r.get("scenario") == "degraded_aging"]
    if degraded_rows:
        print(f"\n{'phase':>11s} {'reads':>6s} {'sweep dev s':>12s} "
              f"{'sweep wall s':>13s} {'degraded':>9s} {'failovers':>10s}")
        for r in degraded_rows:
            print(f"{r['phase']:>11s} {r['sweep_reads']:>6d} "
                  f"{r['sweep_device_s']:>12.3f} "
                  f"{r['sweep_wall_s']:>13.3f} "
                  f"{r['degraded_reads']:>9d} {r['failovers']:>10d}")
        rebuilding = [r for r in degraded_rows
                      if r["phase"] == "rebuilding"]
        for r in rebuilding:
            print(f"rebuild: {r['rebuilt_objects']} objects "
                  f"({r['rebuilt_bytes'] // MB} MB) in "
                  f"{r['rebuild_slices']} slices at rate "
                  f"{r['rebuild_rate']}, copy "
                  f"{r['rebuild_copy_device_s']:.3f}s + stall "
                  f"{r['rebuild_stall_s']:.3f}s")
    tail_rows = [r for r in rows if r.get("scenario") == "tail_latency"]
    if tail_rows:
        print(f"\n{'phase':>11s} {'reads':>6s} {'wall s':>8s} "
              f"{'p50 ms':>8s} {'p95 ms':>8s} {'p99 ms':>8s} "
              f"{'max ms':>8s}")
        for r in tail_rows:
            print(f"{r['phase']:>11s} {r['sweep_reads']:>6d} "
                  f"{r['sweep_wall_s']:>8.3f} {r['lat_p50_ms']:>8.2f} "
                  f"{r['lat_p95_ms']:>8.2f} {r['lat_p99_ms']:>8.2f} "
                  f"{r['lat_max_ms']:>8.2f}")
    continuous_rows = [r for r in rows
                       if r.get("scenario") == "continuous_operation"]
    if continuous_rows:
        print(f"\n{'phase':>16s} {'ckpts':>6s} {'rb rate':>8s} "
              f"{'moved':>6s} {'stall s':>8s} {'wall s':>8s} "
              f"{'p50 ms':>8s} {'p99 ms':>8s}")
        for r in continuous_rows:
            rb = "-" if r["rebalance_rate"] is None \
                else f"{r['rebalance_rate']:g}"
            print(f"{r['phase']:>16s} {r['checkpoints']:>6d} {rb:>8s} "
                  f"{r['moved_objects']:>6d} "
                  f"{r['rebalance_stall_s']:>8.3f} "
                  f"{r['sweep_wall_s']:>8.3f} {r['lat_p50_ms']:>8.2f} "
                  f"{r['lat_p99_ms']:>8.2f}")
    resume_rows = [r for r in rows
                   if r.get("scenario") == "checkpoint_resume"]
    if resume_rows:
        print(f"\n{'config':>8s} {'objects':>8s} {'ckpt KB':>8s} "
              f"{'resume s':>9s} {'match':>6s}")
        for r in resume_rows:
            print(f"{r['config']:>8s} {r['objects']:>8d} "
                  f"{r['checkpoint_bytes'] // 1024:>8d} "
                  f"{r['resume_seconds']:>9.3f} {str(r['match']):>6s}")
    matrix_rows = [r for r in rows
                   if r.get("scenario") == "scenario_matrix"]
    if matrix_rows:
        print(f"\n{'workload':>14s} {'config':>10s} {'rd MB/s':>8s} "
              f"{'p50 ms':>8s} {'p99 ms':>8s} {'winner':>7s}")
        for r in matrix_rows:
            print(f"{r['workload']:>14s} {r['config']:>10s} "
                  f"{r['read_wall_mbps']:>8.2f} {r['read_p50_ms']:>8.2f} "
                  f"{r['read_p99_ms']:>8.2f} "
                  f"{'*' if r['winner'] else '':>7s}")
    if speedups:
        print("\nspeedups: " + ", ".join(
            f"{k}: {v}x" for k, v in speedups.items()))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
