#!/usr/bin/env python
"""Volume/store scaling bench: churn, segment store, and batched I/O.

Three scenarios, all host-side wall-clock measurements (the modelled
device time is reported alongside, it does not change between
implementations):

* ``fs_churn`` — sweeps volume sizes, drives the filesystem backend
  through a bulk load plus a delete/rewrite churn loop (the workload
  shape behind the paper's aging experiments) for both free-space
  engines.  The naive flat-list engine's per-op cost grows with the
  free map while the tiered engine stays flat, which is what unlocks
  multi-hundred-GB volumes and deep aging runs.
* ``segment_store`` — the device's sparse content store, blocked
  (shared :class:`~repro.struct.blockedlist.BlockedList` layout) vs
  the seed's flat list, under random segment writes then reads.  The
  flat list pays an O(n) memmove per write; the committed baseline
  shows the blocked store ≥5× faster at 10^5 segments, which is what
  makes content-checked aging runs practical beyond test scale.
* ``batched_writes`` — the same scattered write stream submitted one
  request per call vs scatter/gather batches per
  :meth:`BlockDevice.submit`, reordering off (modelled cost is
  asserted identical), plus the modelled seek count with the elevator
  on — the knob for request-scheduling studies.

Results go to ``BENCH_scale_volume.json`` (schema
``bench-scale-volume/2``, documented in ``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_volume.py
    PYTHONPATH=src python benchmarks/bench_scale_volume.py --quick
    PYTHONPATH=src python benchmarks/bench_scale_volume.py \
        --scenarios segment_store --segments 200000
    PYTHONPATH=src python benchmarks/bench_scale_volume.py \
        --volumes 268435456,1073741824 --index tiered
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.disk.device import (
    BlockDevice, IoRequest, _FlatSegmentStore, _SegmentStore,
)
from repro.disk.geometry import scaled_disk
from repro.alloc.extent import Extent
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.units import KB, MB

DEFAULT_VOLUMES = (128 * MB, 512 * MB, 2048 * MB)
QUICK_VOLUMES = (64 * MB,)
#: Small files (64 KB in 16 KB requests) maximise allocator pressure per
#: byte: every file is a fresh create/append/delete cycle.
FILE_BYTES = 64 * KB
REQUEST_BYTES = 16 * KB
OCCUPANCY = 0.5
CHURN_OPS = 400

DEFAULT_SEGMENTS = 100_000
QUICK_SEGMENTS = 20_000
SEGMENT_BYTES = 64
SEGMENT_READS = 20_000

DEFAULT_REQUESTS = 20_000
QUICK_REQUESTS = 4_000
DEFAULT_BATCH = 64
SCENARIOS = ("fs_churn", "segment_store", "batched_writes")


def run_volume(kind: str, volume: int, seed: int = 7) -> dict:
    device = BlockDevice(scaled_disk(volume))
    fs = SimFilesystem(device, FsConfig(index_kind=kind))
    rng = random.Random(seed)

    def write_file(name: str) -> None:
        fs.create(name)
        remaining = FILE_BYTES
        while remaining > 0:
            request = min(REQUEST_BYTES, remaining)
            fs.append(name, request)
            remaining -= request

    target = int(fs.data_capacity * OCCUPANCY)
    names: list[str] = []
    t0 = time.perf_counter()
    while fs.used_bytes < target:
        name = f"f{len(names)}"
        write_file(name)
        names.append(name)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for op in range(CHURN_OPS):
        victim = rng.randrange(len(names))
        fs.delete(names[victim])
        names[victim] = f"f{len(names) + op}"
        write_file(names[victim])
    churn_s = time.perf_counter() - t0

    fs.check_invariants()
    return {
        "scenario": "fs_churn",
        "index": kind,
        "volume_bytes": volume,
        "files": len(names),
        "build_seconds": round(build_s, 4),
        "churn_ops": CHURN_OPS,
        "churn_us_per_op": round(churn_s / CHURN_OPS * 1e6, 2),
        "free_runs": len(fs.free_index),
        "modelled_device_s": round(device.clock_s, 4),
    }


def run_segment_store(nsegments: int, seed: int = 11) -> list[dict]:
    """Random disjoint writes then random reads, blocked vs flat."""
    slots = list(range(nsegments))
    random.Random(seed).shuffle(slots)
    payload = b"\xa5" * SEGMENT_BYTES
    nreads = min(SEGMENT_READS, nsegments)
    rows = []
    for store_kind, store in (("blocked", _SegmentStore()),
                              ("flat", _FlatSegmentStore())):
        t0 = time.perf_counter()
        for slot in slots:
            store.write(slot * 2 * SEGMENT_BYTES, payload)
        write_s = time.perf_counter() - t0
        read_rng = random.Random(seed + 1)
        t0 = time.perf_counter()
        for _ in range(nreads):
            slot = read_rng.randrange(nsegments)
            store.read(slot * 2 * SEGMENT_BYTES, SEGMENT_BYTES)
        read_s = time.perf_counter() - t0
        assert len(store) == nsegments
        rows.append({
            "scenario": "segment_store",
            "store": store_kind,
            "segments": nsegments,
            "segment_bytes": SEGMENT_BYTES,
            "write_us_per_op": round(write_s / nsegments * 1e6, 3),
            "read_us_per_op": round(read_s / nreads * 1e6, 3),
            "write_seconds": round(write_s, 4),
            "read_seconds": round(read_s, 4),
        })
    return rows


def run_batched_writes(nrequests: int, batch: int,
                       seed: int = 13) -> list[dict]:
    """Per-request vs batched submission of one scattered write stream."""
    volume = 2048 * MB
    stride = volume // (nrequests + 1)
    rng = random.Random(seed)
    offsets = [i * stride for i in range(nrequests)]
    rng.shuffle(offsets)

    def requests() -> list[IoRequest]:
        return [IoRequest(True, [Extent(off, REQUEST_BYTES)])
                for off in offsets]

    rows = []
    per = BlockDevice(scaled_disk(volume))
    reqs = requests()
    t0 = time.perf_counter()
    for req in reqs:
        per.submit([req])
    per_s = time.perf_counter() - t0
    rows.append({
        "scenario": "batched_writes",
        "mode": "per_request",
        "requests": nrequests,
        "batch": 1,
        "host_us_per_op": round(per_s / nrequests * 1e6, 3),
        "modelled_device_s": round(per.clock_s, 4),
        "modelled_seeks": per.stats.seeks,
        "stats_records": per.stats.requests,
    })
    batched = BlockDevice(scaled_disk(volume))
    reqs = requests()
    t0 = time.perf_counter()
    for lo in range(0, nrequests, batch):
        batched.submit(reqs[lo: lo + batch])
    batched_s = time.perf_counter() - t0
    assert abs(batched.clock_s - per.clock_s) < 1e-9 * max(1.0, per.clock_s)
    rows.append({
        "scenario": "batched_writes",
        "mode": "batched",
        "requests": nrequests,
        "batch": batch,
        "host_us_per_op": round(batched_s / nrequests * 1e6, 3),
        "modelled_device_s": round(batched.clock_s, 4),
        "modelled_seeks": batched.stats.seeks,
        "stats_records": batched.stats.requests,
    })
    elevator = BlockDevice(scaled_disk(volume))
    reqs = requests()
    t0 = time.perf_counter()
    for lo in range(0, nrequests, batch):
        elevator.submit(reqs[lo: lo + batch], reorder=True)
    elevator_s = time.perf_counter() - t0
    rows.append({
        "scenario": "batched_writes",
        "mode": "batched_elevator",
        "requests": nrequests,
        "batch": batch,
        "host_us_per_op": round(elevator_s / nrequests * 1e6, 3),
        "modelled_device_s": round(elevator.clock_s, 4),
        "modelled_seeks": elevator.stats.seeks,
        "stats_records": elevator.stats.requests,
    })
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small volume/segment counts (CI smoke)")
    parser.add_argument("--volumes", type=str, default=None,
                        help="comma-separated volume sizes in bytes")
    parser.add_argument("--index", type=str, default="tiered,naive",
                        help="comma-separated engines to measure")
    parser.add_argument("--scenarios", type=str, default=",".join(SCENARIOS),
                        help=f"comma-separated subset of {SCENARIOS}")
    parser.add_argument("--segments", type=int, default=None,
                        help="segment count for the segment_store scenario")
    parser.add_argument("--requests", type=int, default=None,
                        help="request count for the batched_writes scenario")
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH,
                        help="requests per submit() in batched_writes")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent /
                        "BENCH_scale_volume.json")
    args = parser.parse_args(argv)

    if args.volumes:
        volumes = tuple(int(v) for v in args.volumes.split(","))
    else:
        volumes = QUICK_VOLUMES if args.quick else DEFAULT_VOLUMES
    kinds = tuple(args.index.split(","))
    scenarios = tuple(args.scenarios.split(","))
    for name in scenarios:
        if name not in SCENARIOS:
            parser.error(f"unknown scenario {name!r}; choose from {SCENARIOS}")
    nsegments = args.segments or (
        QUICK_SEGMENTS if args.quick else DEFAULT_SEGMENTS)
    nrequests = args.requests or (
        QUICK_REQUESTS if args.quick else DEFAULT_REQUESTS)

    rows = []
    if "fs_churn" in scenarios:
        for volume in volumes:
            for kind in kinds:
                print(f"... fs_churn {kind} @ {volume // MB} MB volume",
                      flush=True)
                rows.append(run_volume(kind, volume))
    if "segment_store" in scenarios:
        print(f"... segment_store @ {nsegments} segments", flush=True)
        rows.extend(run_segment_store(nsegments))
    if "batched_writes" in scenarios:
        print(f"... batched_writes @ {nrequests} requests, "
              f"batch {args.batch}", flush=True)
        rows.extend(run_batched_writes(nrequests, args.batch))

    speedups: dict[str, float] = {}
    seg = {r["store"]: r for r in rows
           if r.get("scenario") == "segment_store"}
    if {"flat", "blocked"} <= seg.keys():
        for phase in ("write", "read"):
            blocked = seg["blocked"][f"{phase}_us_per_op"]
            if blocked > 0:
                speedups[f"segment_store_{phase}@{nsegments}"] = round(
                    seg["flat"][f"{phase}_us_per_op"] / blocked, 2)
    modes = {r["mode"]: r for r in rows
             if r.get("scenario") == "batched_writes"}
    if {"per_request", "batched"} <= modes.keys():
        batched_us = modes["batched"]["host_us_per_op"]
        if batched_us > 0:
            speedups[f"batched_host@{nrequests}"] = round(
                modes["per_request"]["host_us_per_op"] / batched_us, 2)

    report = {
        "schema": "bench-scale-volume/2",
        "generated_by": "benchmarks/bench_scale_volume.py",
        "python": platform.python_version(),
        "config": {
            "file_bytes": FILE_BYTES,
            "request_bytes": REQUEST_BYTES,
            "occupancy": OCCUPANCY,
            "churn_ops": CHURN_OPS,
            "segments": nsegments,
            "segment_bytes": SEGMENT_BYTES,
            "requests": nrequests,
            "batch": args.batch,
            "scenarios": list(scenarios),
        },
        "results": rows,
        "speedups": speedups,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    churn = [r for r in rows if r.get("scenario") == "fs_churn"]
    if churn:
        print(f"\n{'volume':>10s} {'index':>7s} {'files':>7s} "
              f"{'build s':>8s} {'churn us/op':>12s} {'free runs':>10s}")
        for r in churn:
            print(f"{r['volume_bytes'] // MB:>8d}MB {r['index']:>7s} "
                  f"{r['files']:>7d} {r['build_seconds']:>8.2f} "
                  f"{r['churn_us_per_op']:>12.1f} {r['free_runs']:>10d}")
    if seg:
        print(f"\n{'store':>8s} {'segments':>9s} {'write us/op':>12s} "
              f"{'read us/op':>11s}")
        for r in seg.values():
            print(f"{r['store']:>8s} {r['segments']:>9d} "
                  f"{r['write_us_per_op']:>12.2f} "
                  f"{r['read_us_per_op']:>11.2f}")
    if modes:
        print(f"\n{'mode':>17s} {'batch':>6s} {'host us/op':>11s} "
              f"{'device s':>9s} {'seeks':>8s} {'records':>8s}")
        for r in modes.values():
            print(f"{r['mode']:>17s} {r['batch']:>6d} "
                  f"{r['host_us_per_op']:>11.2f} "
                  f"{r['modelled_device_s']:>9.2f} "
                  f"{r['modelled_seeks']:>8d} {r['stats_records']:>8d}")
    if speedups:
        print("\nspeedups: " + ", ".join(
            f"{k}: {v}x" for k, v in speedups.items()))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
