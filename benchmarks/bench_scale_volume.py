#!/usr/bin/env python
"""Volume/store scaling bench: churn, segment store, and batched I/O.

Three scenarios, all host-side wall-clock measurements (the modelled
device time is reported alongside, it does not change between
implementations):

* ``fs_churn`` — sweeps volume sizes, drives the filesystem backend
  through a bulk load plus a delete/rewrite churn loop (the workload
  shape behind the paper's aging experiments) for both free-space
  engines.  The naive flat-list engine's per-op cost grows with the
  free map while the tiered engine stays flat, which is what unlocks
  multi-hundred-GB volumes and deep aging runs.
* ``segment_store`` — the device's sparse content store, blocked
  (shared :class:`~repro.struct.blockedlist.BlockedList` layout) vs
  the seed's flat list, under random segment writes then reads.  The
  flat list pays an O(n) memmove per write; the committed baseline
  shows the blocked store ≥5× faster at 10^5 segments, which is what
  makes content-checked aging runs practical beyond test scale.
* ``batched_writes`` — the same scattered write stream submitted one
  request per call vs scatter/gather batches per
  :meth:`BlockDevice.submit`, reordering off (modelled cost is
  asserted identical), plus the modelled seek count with the elevator
  on — the knob for request-scheduling studies.
* ``sharded_aging`` — an aged get/put workload built purely from
  :class:`StoreSpec`\\ s via the backend registry: a single-volume LFS
  baseline vs a 4-shard :class:`ShardedStore` (same aggregate
  capacity) vs the same sharded store with a C-LOOK
  :class:`DevicePolicy` on batched read sweeps.  Reports **modelled
  device time**: sharding shortens seeks (smaller per-shard volumes)
  and the elevator shortens them further on the scattered aged-read
  stream — the multi-volume + request-scheduling study the ROADMAP
  calls for.
* ``checkpoint_resume`` — the persistence subsystem's parity check,
  run as a bench so CI smokes it and the committed baseline records
  the checkpoint cost: an aging run is checkpointed at every sampled
  age, killed right after the mid-run checkpoint, and resumed; the
  resumed run record must equal the uninterrupted baseline **exactly**
  (every fragmentation/throughput/occupancy sample — the bench raises
  on any divergence).  Reported numbers: checkpoint size and
  save/resume host time for the tiered and naive engines and a
  3-shard composite.

Results go to ``BENCH_scale_volume.json`` (schema
``bench-scale-volume/4``, documented in ``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_volume.py
    PYTHONPATH=src python benchmarks/bench_scale_volume.py --quick
    PYTHONPATH=src python benchmarks/bench_scale_volume.py \
        --scenarios segment_store --segments 200000
    PYTHONPATH=src python benchmarks/bench_scale_volume.py \
        --volumes 268435456,1073741824 --index tiered
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import tempfile
import time
from pathlib import Path

from repro.backends.registry import build_store
from repro.backends.spec import StoreSpec
from repro.disk.device import (
    BlockDevice, IoRequest, _FlatSegmentStore, _SegmentStore,
)
from repro.disk.geometry import scaled_disk
from repro.disk.policy import DevicePolicy
from repro.alloc.extent import Extent
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.units import KB, MB

DEFAULT_VOLUMES = (128 * MB, 512 * MB, 2048 * MB)
QUICK_VOLUMES = (64 * MB,)
#: Small files (64 KB in 16 KB requests) maximise allocator pressure per
#: byte: every file is a fresh create/append/delete cycle.
FILE_BYTES = 64 * KB
REQUEST_BYTES = 16 * KB
OCCUPANCY = 0.5
CHURN_OPS = 400

DEFAULT_SEGMENTS = 100_000
QUICK_SEGMENTS = 20_000
SEGMENT_BYTES = 64
SEGMENT_READS = 20_000

DEFAULT_REQUESTS = 20_000
QUICK_REQUESTS = 4_000
DEFAULT_BATCH = 64

AGING_VOLUME = 512 * MB
QUICK_AGING_VOLUME = 128 * MB
AGING_OBJECT = 256 * KB
AGING_SHARDS = 4
AGING_READ_BATCH = 16
#: Overwrites per loaded object before the read sweep (storage age).
AGING_CHURN_AGE = 2

RESUME_VOLUME = 256 * MB
QUICK_RESUME_VOLUME = 64 * MB
RESUME_AGES = (0.0, 1.0, 2.0)

SCENARIOS = ("fs_churn", "segment_store", "batched_writes",
             "sharded_aging", "checkpoint_resume")


def run_volume(kind: str, volume: int, seed: int = 7) -> dict:
    device = BlockDevice(scaled_disk(volume))
    fs = SimFilesystem(device, FsConfig(index_kind=kind))
    rng = random.Random(seed)

    def write_file(name: str) -> None:
        fs.create(name)
        remaining = FILE_BYTES
        while remaining > 0:
            request = min(REQUEST_BYTES, remaining)
            fs.append(name, request)
            remaining -= request

    target = int(fs.data_capacity * OCCUPANCY)
    names: list[str] = []
    t0 = time.perf_counter()
    while fs.used_bytes < target:
        name = f"f{len(names)}"
        write_file(name)
        names.append(name)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for op in range(CHURN_OPS):
        victim = rng.randrange(len(names))
        fs.delete(names[victim])
        names[victim] = f"f{len(names) + op}"
        write_file(names[victim])
    churn_s = time.perf_counter() - t0

    fs.check_invariants()
    return {
        "scenario": "fs_churn",
        "index": kind,
        "volume_bytes": volume,
        "files": len(names),
        "build_seconds": round(build_s, 4),
        "churn_ops": CHURN_OPS,
        "churn_us_per_op": round(churn_s / CHURN_OPS * 1e6, 2),
        "free_runs": len(fs.free_index),
        "modelled_device_s": round(device.clock_s, 4),
    }


def run_segment_store(nsegments: int, seed: int = 11) -> list[dict]:
    """Random disjoint writes then random reads, blocked vs flat."""
    slots = list(range(nsegments))
    random.Random(seed).shuffle(slots)
    payload = b"\xa5" * SEGMENT_BYTES
    nreads = min(SEGMENT_READS, nsegments)
    rows = []
    for store_kind, store in (("blocked", _SegmentStore()),
                              ("flat", _FlatSegmentStore())):
        t0 = time.perf_counter()
        for slot in slots:
            store.write(slot * 2 * SEGMENT_BYTES, payload)
        write_s = time.perf_counter() - t0
        read_rng = random.Random(seed + 1)
        t0 = time.perf_counter()
        for _ in range(nreads):
            slot = read_rng.randrange(nsegments)
            store.read(slot * 2 * SEGMENT_BYTES, SEGMENT_BYTES)
        read_s = time.perf_counter() - t0
        assert len(store) == nsegments
        rows.append({
            "scenario": "segment_store",
            "store": store_kind,
            "segments": nsegments,
            "segment_bytes": SEGMENT_BYTES,
            "write_us_per_op": round(write_s / nsegments * 1e6, 3),
            "read_us_per_op": round(read_s / nreads * 1e6, 3),
            "write_seconds": round(write_s, 4),
            "read_seconds": round(read_s, 4),
        })
    return rows


def run_batched_writes(nrequests: int, batch: int,
                       seed: int = 13) -> list[dict]:
    """Per-request vs batched submission of one scattered write stream."""
    volume = 2048 * MB
    stride = volume // (nrequests + 1)
    rng = random.Random(seed)
    offsets = [i * stride for i in range(nrequests)]
    rng.shuffle(offsets)

    def requests() -> list[IoRequest]:
        return [IoRequest(True, [Extent(off, REQUEST_BYTES)])
                for off in offsets]

    rows = []
    per = BlockDevice(scaled_disk(volume))
    reqs = requests()
    t0 = time.perf_counter()
    for req in reqs:
        per.submit([req])
    per_s = time.perf_counter() - t0
    rows.append({
        "scenario": "batched_writes",
        "mode": "per_request",
        "requests": nrequests,
        "batch": 1,
        "host_us_per_op": round(per_s / nrequests * 1e6, 3),
        "modelled_device_s": round(per.clock_s, 4),
        "modelled_seeks": per.stats.seeks,
        "stats_records": per.stats.requests,
    })
    batched = BlockDevice(scaled_disk(volume))
    reqs = requests()
    t0 = time.perf_counter()
    for lo in range(0, nrequests, batch):
        batched.submit(reqs[lo: lo + batch])
    batched_s = time.perf_counter() - t0
    assert abs(batched.clock_s - per.clock_s) < 1e-9 * max(1.0, per.clock_s)
    rows.append({
        "scenario": "batched_writes",
        "mode": "batched",
        "requests": nrequests,
        "batch": batch,
        "host_us_per_op": round(batched_s / nrequests * 1e6, 3),
        "modelled_device_s": round(batched.clock_s, 4),
        "modelled_seeks": batched.stats.seeks,
        "stats_records": batched.stats.requests,
    })
    elevator = BlockDevice(scaled_disk(volume))
    reqs = requests()
    t0 = time.perf_counter()
    for lo in range(0, nrequests, batch):
        elevator.submit(reqs[lo: lo + batch], reorder=True)
    elevator_s = time.perf_counter() - t0
    rows.append({
        "scenario": "batched_writes",
        "mode": "batched_elevator",
        "requests": nrequests,
        "batch": batch,
        "host_us_per_op": round(elevator_s / nrequests * 1e6, 3),
        "modelled_device_s": round(elevator.clock_s, 4),
        "modelled_seeks": elevator.stats.seeks,
        "stats_records": elevator.stats.requests,
    })
    return rows


def run_sharded_aging(volume: int, seed: int = 17) -> list[dict]:
    """Aged read device time: single volume vs shards vs shards+C-LOOK.

    Every store is built from a :class:`StoreSpec` through the registry
    — the bench never names a backend class.  The workload is the aging
    shape: bulk load LFS to 50 % occupancy, overwrite-churn to storage
    age ``AGING_CHURN_AGE`` (scattering objects through the log), then
    a whole-population random read sweep through ``read_many``, whose
    batching/ordering the spec's :class:`DevicePolicy` governs.
    """
    specs = [
        ("single", StoreSpec("lfs", volume_bytes=volume)),
        ("sharded", StoreSpec("lfs", volume_bytes=volume,
                              shards=AGING_SHARDS)),
        ("sharded_clook", StoreSpec(
            "lfs", volume_bytes=volume, shards=AGING_SHARDS,
            policy=DevicePolicy(batch_size=AGING_READ_BATCH,
                                reorder="clook"),
        )),
    ]
    rows = []
    for label, spec in specs:
        store = build_store(spec)
        rng = random.Random(seed)
        target = int(spec.volume_bytes * OCCUPANCY)
        keys: list[str] = []
        loaded = 0
        t0 = time.perf_counter()
        while loaded + AGING_OBJECT <= target:
            key = f"o{len(keys)}"
            store.put(key, size=AGING_OBJECT)
            keys.append(key)
            loaded += AGING_OBJECT
        for _ in range(AGING_CHURN_AGE * len(keys)):
            store.overwrite(rng.choice(keys), size=AGING_OBJECT)
        build_s = time.perf_counter() - t0
        churn_device_s = sum(d.clock_s for d in store.devices())

        sweep = list(keys)
        rng.shuffle(sweep)
        seeks_before = sum(d.stats.seeks for d in store.devices())
        t0 = time.perf_counter()
        store.read_many(sweep)
        sweep_host_s = time.perf_counter() - t0
        sweep_device_s = sum(d.clock_s for d in store.devices()) \
            - churn_device_s
        rows.append({
            "scenario": "sharded_aging",
            "config": label,
            "shards": spec.shards,
            "reorder": spec.policy.reorder,
            "read_batch": spec.policy.batch_size,
            "volume_bytes": spec.volume_bytes,
            "objects": len(keys),
            "storage_age": AGING_CHURN_AGE,
            "build_seconds": round(build_s, 4),
            "sweep_reads": len(sweep),
            "sweep_host_seconds": round(sweep_host_s, 4),
            "sweep_device_s": round(sweep_device_s, 4),
            "sweep_seeks": sum(d.stats.seeks for d in store.devices())
            - seeks_before,
            "modelled_device_s": round(
                sum(d.clock_s for d in store.devices()), 4),
        })
    return rows


def run_checkpoint_resume(volume: int, seed: int = 23) -> list[dict]:
    """Kill an aging run after its mid-run checkpoint and resume it.

    The resumed run record must reproduce the uninterrupted baseline
    byte for byte (``RunResult.to_dict()`` equality); a divergence
    raises, so the CI smoke of this scenario is the regression gate.
    The reported numbers are the cost side: checkpoint directory size
    and host seconds spent saving and resuming.
    """
    from repro.core.experiment import ExperimentConfig, ExperimentRunner
    from repro.core.workload import ConstantSize

    configs = [
        ("tiered", StoreSpec("filesystem", volume_bytes=volume)),
        ("naive", StoreSpec("filesystem", volume_bytes=volume,
                            options={"index_kind": "naive"})),
        ("sharded", StoreSpec("filesystem", volume_bytes=volume,
                              shards=3)),
    ]

    class _Killed(Exception):
        pass

    rows = []
    for label, spec in configs:
        print(f"    checkpoint_resume: {label}", flush=True)
        cfg = ExperimentConfig(store=spec, sizes=ConstantSize(AGING_OBJECT),
                               occupancy=0.4, ages=RESUME_AGES,
                               reads_per_sample=16, seed=seed)
        baseline = ExperimentRunner(cfg).run()
        with tempfile.TemporaryDirectory() as directory:
            kill_age = RESUME_AGES[1]

            def killer(phase: str, value: float) -> None:
                if phase == "checkpoint" and value == kill_age:
                    raise _Killed

            t0 = time.perf_counter()
            try:
                ExperimentRunner(cfg, progress=killer,
                                 checkpoint_dir=directory).run()
                raise RuntimeError("kill point never fired")
            except _Killed:
                pass
            killed_s = time.perf_counter() - t0
            checkpoint_bytes = sum(
                f.stat().st_size
                for f in Path(directory).rglob("*") if f.is_file()
            )
            t0 = time.perf_counter()
            resumed = ExperimentRunner(cfg, checkpoint_dir=directory,
                                       resume=True).run()
            resume_s = time.perf_counter() - t0
        if resumed.to_dict() != baseline.to_dict():
            raise AssertionError(
                f"checkpoint_resume[{label}]: resumed run record "
                "diverged from the uninterrupted baseline"
            )
        rows.append({
            "scenario": "checkpoint_resume",
            "config": label,
            "volume_bytes": volume,
            "ages": list(RESUME_AGES),
            "objects": baseline.objects_loaded,
            "samples": len(baseline.samples),
            "match": True,
            "checkpoint_bytes": checkpoint_bytes,
            "killed_run_seconds": round(killed_s, 4),
            "resume_seconds": round(resume_s, 4),
        })
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small volume/segment counts (CI smoke)")
    parser.add_argument("--volumes", type=str, default=None,
                        help="comma-separated volume sizes in bytes")
    parser.add_argument("--index", type=str, default="tiered,naive",
                        help="comma-separated engines to measure")
    parser.add_argument("--scenarios", type=str, default=",".join(SCENARIOS),
                        help=f"comma-separated subset of {SCENARIOS}")
    parser.add_argument("--segments", type=int, default=None,
                        help="segment count for the segment_store scenario")
    parser.add_argument("--requests", type=int, default=None,
                        help="request count for the batched_writes scenario")
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH,
                        help="requests per submit() in batched_writes")
    parser.add_argument("--aging-volume", type=int, default=None,
                        help="volume size in bytes for sharded_aging")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent /
                        "BENCH_scale_volume.json")
    args = parser.parse_args(argv)

    if args.volumes:
        volumes = tuple(int(v) for v in args.volumes.split(","))
    else:
        volumes = QUICK_VOLUMES if args.quick else DEFAULT_VOLUMES
    kinds = tuple(args.index.split(","))
    scenarios = tuple(args.scenarios.split(","))
    for name in scenarios:
        if name not in SCENARIOS:
            parser.error(f"unknown scenario {name!r}; choose from {SCENARIOS}")
    nsegments = args.segments or (
        QUICK_SEGMENTS if args.quick else DEFAULT_SEGMENTS)
    nrequests = args.requests or (
        QUICK_REQUESTS if args.quick else DEFAULT_REQUESTS)

    rows = []
    if "fs_churn" in scenarios:
        for volume in volumes:
            for kind in kinds:
                print(f"... fs_churn {kind} @ {volume // MB} MB volume",
                      flush=True)
                rows.append(run_volume(kind, volume))
    if "segment_store" in scenarios:
        print(f"... segment_store @ {nsegments} segments", flush=True)
        rows.extend(run_segment_store(nsegments))
    if "batched_writes" in scenarios:
        print(f"... batched_writes @ {nrequests} requests, "
              f"batch {args.batch}", flush=True)
        rows.extend(run_batched_writes(nrequests, args.batch))
    if "sharded_aging" in scenarios:
        aging_volume = args.aging_volume or (
            QUICK_AGING_VOLUME if args.quick else AGING_VOLUME)
        print(f"... sharded_aging @ {aging_volume // MB} MB volume, "
              f"{AGING_SHARDS} shards", flush=True)
        rows.extend(run_sharded_aging(aging_volume))
    if "checkpoint_resume" in scenarios:
        resume_volume = QUICK_RESUME_VOLUME if args.quick else RESUME_VOLUME
        print(f"... checkpoint_resume @ {resume_volume // MB} MB volume",
              flush=True)
        rows.extend(run_checkpoint_resume(resume_volume))

    speedups: dict[str, float] = {}
    seg = {r["store"]: r for r in rows
           if r.get("scenario") == "segment_store"}
    if {"flat", "blocked"} <= seg.keys():
        for phase in ("write", "read"):
            blocked = seg["blocked"][f"{phase}_us_per_op"]
            if blocked > 0:
                speedups[f"segment_store_{phase}@{nsegments}"] = round(
                    seg["flat"][f"{phase}_us_per_op"] / blocked, 2)
    modes = {r["mode"]: r for r in rows
             if r.get("scenario") == "batched_writes"}
    if {"per_request", "batched"} <= modes.keys():
        batched_us = modes["batched"]["host_us_per_op"]
        if batched_us > 0:
            speedups[f"batched_host@{nrequests}"] = round(
                modes["per_request"]["host_us_per_op"] / batched_us, 2)
    aging = {r["config"]: r for r in rows
             if r.get("scenario") == "sharded_aging"}
    if {"single", "sharded_clook"} <= aging.keys():
        clook_s = aging["sharded_clook"]["sweep_device_s"]
        if clook_s > 0:
            speedups["sharded_clook_read_device_time"] = round(
                aging["single"]["sweep_device_s"] / clook_s, 2)

    report = {
        "schema": "bench-scale-volume/4",
        "generated_by": "benchmarks/bench_scale_volume.py",
        "python": platform.python_version(),
        "config": {
            "file_bytes": FILE_BYTES,
            "request_bytes": REQUEST_BYTES,
            "occupancy": OCCUPANCY,
            "churn_ops": CHURN_OPS,
            "segments": nsegments,
            "segment_bytes": SEGMENT_BYTES,
            "requests": nrequests,
            "batch": args.batch,
            "aging_object_bytes": AGING_OBJECT,
            "aging_shards": AGING_SHARDS,
            "aging_read_batch": AGING_READ_BATCH,
            "aging_churn_age": AGING_CHURN_AGE,
            "resume_ages": list(RESUME_AGES),
            "scenarios": list(scenarios),
        },
        "results": rows,
        "speedups": speedups,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    churn = [r for r in rows if r.get("scenario") == "fs_churn"]
    if churn:
        print(f"\n{'volume':>10s} {'index':>7s} {'files':>7s} "
              f"{'build s':>8s} {'churn us/op':>12s} {'free runs':>10s}")
        for r in churn:
            print(f"{r['volume_bytes'] // MB:>8d}MB {r['index']:>7s} "
                  f"{r['files']:>7d} {r['build_seconds']:>8.2f} "
                  f"{r['churn_us_per_op']:>12.1f} {r['free_runs']:>10d}")
    if seg:
        print(f"\n{'store':>8s} {'segments':>9s} {'write us/op':>12s} "
              f"{'read us/op':>11s}")
        for r in seg.values():
            print(f"{r['store']:>8s} {r['segments']:>9d} "
                  f"{r['write_us_per_op']:>12.2f} "
                  f"{r['read_us_per_op']:>11.2f}")
    if modes:
        print(f"\n{'mode':>17s} {'batch':>6s} {'host us/op':>11s} "
              f"{'device s':>9s} {'seeks':>8s} {'records':>8s}")
        for r in modes.values():
            print(f"{r['mode']:>17s} {r['batch']:>6d} "
                  f"{r['host_us_per_op']:>11.2f} "
                  f"{r['modelled_device_s']:>9.2f} "
                  f"{r['modelled_seeks']:>8d} {r['stats_records']:>8d}")
    aging_rows = [r for r in rows if r.get("scenario") == "sharded_aging"]
    if aging_rows:
        print(f"\n{'config':>15s} {'shards':>6s} {'reorder':>8s} "
              f"{'objects':>8s} {'sweep dev s':>12s} {'sweep seeks':>12s} "
              f"{'total dev s':>12s}")
        for r in aging_rows:
            print(f"{r['config']:>15s} {r['shards']:>6d} "
                  f"{r['reorder']:>8s} {r['objects']:>8d} "
                  f"{r['sweep_device_s']:>12.3f} {r['sweep_seeks']:>12d} "
                  f"{r['modelled_device_s']:>12.2f}")
    resume_rows = [r for r in rows
                   if r.get("scenario") == "checkpoint_resume"]
    if resume_rows:
        print(f"\n{'config':>8s} {'objects':>8s} {'ckpt KB':>8s} "
              f"{'resume s':>9s} {'match':>6s}")
        for r in resume_rows:
            print(f"{r['config']:>8s} {r['objects']:>8d} "
                  f"{r['checkpoint_bytes'] // 1024:>8d} "
                  f"{r['resume_seconds']:>9.3f} {str(r['match']):>6s}")
    if speedups:
        print("\nspeedups: " + ", ".join(
            f"{k}: {v}x" for k, v in speedups.items()))
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
