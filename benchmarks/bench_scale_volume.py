#!/usr/bin/env python
"""Volume-size scaling bench: filesystem churn cost vs volume size.

Sweeps volume sizes, drives the filesystem backend through a bulk load
plus a delete/rewrite churn loop (the workload shape behind the paper's
aging experiments), and reports host-side wall-clock per churn
operation together with the free-run count the volume settled at.  Run
for both engines this shows the trajectory the tentpole targets: the
naive flat-list engine's per-op cost grows with the free map while the
tiered engine stays flat, which is what unlocks multi-hundred-GB
volumes and deep aging runs.

Results go to ``BENCH_scale_volume.json`` (schema in
``benchmarks/README.md``).

Usage::

    PYTHONPATH=src python benchmarks/bench_scale_volume.py
    PYTHONPATH=src python benchmarks/bench_scale_volume.py --quick
    PYTHONPATH=src python benchmarks/bench_scale_volume.py \
        --volumes 268435456,1073741824 --index tiered
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.units import KB, MB

DEFAULT_VOLUMES = (128 * MB, 512 * MB, 2048 * MB)
QUICK_VOLUMES = (64 * MB,)
#: Small files (64 KB in 16 KB requests) maximise allocator pressure per
#: byte: every file is a fresh create/append/delete cycle.
FILE_BYTES = 64 * KB
REQUEST_BYTES = 16 * KB
OCCUPANCY = 0.5
CHURN_OPS = 400


def run_volume(kind: str, volume: int, seed: int = 7) -> dict:
    device = BlockDevice(scaled_disk(volume))
    fs = SimFilesystem(device, FsConfig(index_kind=kind))
    rng = random.Random(seed)

    def write_file(name: str) -> None:
        fs.create(name)
        remaining = FILE_BYTES
        while remaining > 0:
            request = min(REQUEST_BYTES, remaining)
            fs.append(name, request)
            remaining -= request

    target = int(fs.data_capacity * OCCUPANCY)
    names: list[str] = []
    t0 = time.perf_counter()
    while fs.used_bytes < target:
        name = f"f{len(names)}"
        write_file(name)
        names.append(name)
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for op in range(CHURN_OPS):
        victim = rng.randrange(len(names))
        fs.delete(names[victim])
        names[victim] = f"f{len(names) + op}"
        write_file(names[victim])
    churn_s = time.perf_counter() - t0

    fs.check_invariants()
    return {
        "index": kind,
        "volume_bytes": volume,
        "files": len(names),
        "build_seconds": round(build_s, 4),
        "churn_ops": CHURN_OPS,
        "churn_us_per_op": round(churn_s / CHURN_OPS * 1e6, 2),
        "free_runs": len(fs.free_index),
        "modelled_device_s": round(device.clock_s, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="single small volume (CI smoke)")
    parser.add_argument("--volumes", type=str, default=None,
                        help="comma-separated volume sizes in bytes")
    parser.add_argument("--index", type=str, default="tiered,naive",
                        help="comma-separated engines to measure")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent /
                        "BENCH_scale_volume.json")
    args = parser.parse_args(argv)

    if args.volumes:
        volumes = tuple(int(v) for v in args.volumes.split(","))
    else:
        volumes = QUICK_VOLUMES if args.quick else DEFAULT_VOLUMES
    kinds = tuple(args.index.split(","))

    rows = []
    for volume in volumes:
        for kind in kinds:
            print(f"... {kind} @ {volume // MB} MB volume", flush=True)
            rows.append(run_volume(kind, volume))

    report = {
        "schema": "bench-scale-volume/1",
        "generated_by": "benchmarks/bench_scale_volume.py",
        "python": platform.python_version(),
        "config": {
            "file_bytes": FILE_BYTES,
            "request_bytes": REQUEST_BYTES,
            "occupancy": OCCUPANCY,
            "churn_ops": CHURN_OPS,
        },
        "results": rows,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"\n{'volume':>10s} {'index':>7s} {'files':>7s} {'build s':>8s} "
          f"{'churn us/op':>12s} {'free runs':>10s}")
    for r in rows:
        print(f"{r['volume_bytes'] // MB:>8d}MB {r['index']:>7s} "
              f"{r['files']:>7d} {r['build_seconds']:>8.2f} "
              f"{r['churn_us_per_op']:>12.1f} {r['free_runs']:>10d}")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
