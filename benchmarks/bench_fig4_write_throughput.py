"""Figure 4 — 512 KB write throughput over time.

"Although SQL Server quickly fills a volume with data, its performance
suffers when existing objects are replaced."  During bulk load the
database writes much faster than the filesystem (the paper measured
17.7 vs 10.1 MB/s); after bulk load its write throughput degrades
quickly while the filesystem's stays roughly flat.
"""

from repro.analysis.compare import ShapeCheck, check_faster
from repro.analysis.tables import render_table
from repro.core.workload import ConstantSize
from repro.units import KB, MB

import paperfig


def compute():
    return {
        backend: paperfig.run_curve(
            backend, ConstantSize(512 * KB),
            volume=paperfig.THROUGHPUT_VOLUME,
            occupancy=0.9,
            ages=paperfig.SHORT_AGES,
            reads_per_sample=16,
            seed=11,
        )
        for backend in ("database", "filesystem")
    }


def render(results) -> str:
    rows = []
    labels = {0.0: "During bulk load (zero)", 2.0: "Two", 4.0: "Four"}
    for age, label in labels.items():
        db = results["database"].sample_at(age).write_mbps / MB
        fs = results["filesystem"].sample_at(age).write_mbps / MB
        rows.append([label, db, fs])
    return render_table(
        "Figure 4: 512K Write Throughput Over Time (MB/s)",
        ["Storage Age", "Database", "Filesystem"],
        rows,
        footer=("Paper: bulk load 17.7 (DB) vs 10.1 (FS) MB/s; the DB "
                "degrades quickly once objects are replaced."),
    )


def checks(results) -> list[ShapeCheck]:
    db = results["database"]
    fs = results["filesystem"]
    return [
        check_faster(
            "bulk load: database writes beat filesystem (paper 1.75x)",
            db.bulk_load_write_mbps, fs.bulk_load_write_mbps,
            min_ratio=1.3,
        ),
        check_faster(
            "database write throughput degrades sharply by age 4",
            db.bulk_load_write_mbps, db.sample_at(4.0).write_mbps,
            min_ratio=1.6,
        ),
        check_faster(
            "filesystem writes stay roughly flat",
            fs.sample_at(4.0).write_mbps, 0.7 * fs.bulk_load_write_mbps,
        ),
        check_faster(
            "by age 4 the filesystem out-writes the database",
            fs.sample_at(4.0).write_mbps, db.sample_at(4.0).write_mbps,
        ),
    ]


def test_fig4_write_throughput(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
