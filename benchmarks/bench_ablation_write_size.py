"""Ablation A2 — write request size vs long-term fragmentation.

Section 5.3/5.4: both systems converged to "one fragment per 64KB" —
the write request size — and "modifying the size of the write requests
that append to NTFS files and database BLOBs changes long-term
fragmentation behavior, supporting this theory" (allocation happens per
request, before the final size is known).

This ablation reruns the 256 KB steady state with 16 KB, 64 KB, and
256 KB requests: fragments/object should fall as the request grows,
approaching one fragment when a single request covers the whole object.
"""

from repro.analysis.compare import ShapeCheck, check_between, check_faster
from repro.analysis.tables import render_table
from repro.core.workload import ConstantSize
from repro.fs.filesystem import FsConfig
from repro.units import KB, MB

import paperfig

OBJECT = 256 * KB
REQUESTS = (16 * KB, 64 * KB, 256 * KB)

#: The paper's theory is that EVERY write request is an independent
#: placement decision ("NTFS allocates space as the file is being
#: appended to").  The filesystem runs therefore use a placement-review
#: interval of 1 — per-request decisions — so the request size, not the
#: review batching, sets the fragmentation floor.
PER_REQUEST_FS = FsConfig(reconsider_interval_requests=1)


def compute():
    results = {}
    for backend in ("database", "filesystem"):
        for request in REQUESTS:
            kwargs = {}
            if backend == "filesystem":
                kwargs["fs_config"] = PER_REQUEST_FS
            result = paperfig.run_curve(
                backend, ConstantSize(OBJECT),
                volume=512 * MB,
                occupancy=0.97,
                ages=(0.0, 4.0, 8.0, 10.0),
                reads_per_sample=8,
                write_request=request,
                **kwargs,
            )
            results[(backend, request)] = \
                result.sample_at(10.0).fragments_per_object
    return results


def render(results) -> str:
    rows = []
    for request in REQUESTS:
        rows.append([
            f"{request // KB}K",
            f"{OBJECT // request}",
            results[("database", request)],
            results[("filesystem", request)],
        ])
    return render_table(
        "Ablation A2: write request size vs fragments/object "
        "(256K objects, age 10, 97% full)",
        ["Write request", "Requests/object", "Database", "Filesystem"],
        rows,
        footer=("Paper: fragmentation tracks the write request size — "
                "one fragment per request in the steady state."),
    )


def checks(results) -> list[ShapeCheck]:
    out = []
    for backend in ("database", "filesystem"):
        small = results[(backend, 16 * KB)]
        medium = results[(backend, 64 * KB)]
        out.append(check_faster(
            f"{backend}: smaller requests fragment worse (16K > 64K)",
            small, medium, min_ratio=1.3,
        ))
    # A single whole-object request keeps a *file* near-contiguous; the
    # database still allocates in 64 KB extents internally, so its
    # floor is the extent count, not 1 (the paper's "one fragment per
    # 64KB" is an extent-granularity statement for SQL Server).
    fs_large = results[("filesystem", 256 * KB)]
    db_large = results[("database", 256 * KB)]
    out.append(check_faster(
        "filesystem: 64K requests fragment worse than whole-object",
        results[("filesystem", 64 * KB)], fs_large, min_ratio=1.2,
    ))
    out.append(check_between(
        "filesystem: whole-object requests stay near-contiguous",
        fs_large, 1.0, 2.5,
    ))
    out.append(check_between(
        "database: floor stays at extent granularity (~4 per 256K)",
        db_large, 1.0, 6.0,
    ))
    return out


def test_ablation_write_request_size(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
