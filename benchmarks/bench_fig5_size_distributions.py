"""Figure 5 — BLOB size distributions: constant vs uniform.

The paper's surprise: "objects of a constant size show no better
fragmentation performance than objects of sizes chosen uniformly at
random with the same average size".  Both panels (database, filesystem)
use 10 MB mean objects; the database fragments rapidly and the
filesystem slowly under *both* distributions.
"""

from repro.analysis.compare import ShapeCheck, check_between, check_faster
from repro.analysis.tables import render_series_table
from repro.core.workload import ConstantSize, UniformSize
from repro.units import MB

import paperfig

DISTRIBUTIONS = {
    "Constant": ConstantSize(10 * MB),
    "Uniform": UniformSize.around_mean(10 * MB, spread=0.8),
}


def compute():
    results = {}
    for backend in ("database", "filesystem"):
        for dist_label, dist in DISTRIBUTIONS.items():
            results[(backend, dist_label)] = paperfig.run_curve(
                backend, dist,
                volume=paperfig.DEFAULT_VOLUME,
                occupancy=0.5,
                ages=paperfig.FULL_AGES,
                reads_per_sample=16,
            )
    return results


def render(results) -> str:
    blocks = []
    for backend, title in (("database", "Database"),
                           ("filesystem", "Filesystem")):
        blocks.append(render_series_table(
            f"Figure 5: {title} Fragmentation: Blob Distributions "
            "(fragments/object)",
            "Storage Age",
            {
                label: paperfig.frag_series(results[(backend, label)])
                for label in DISTRIBUTIONS
            },
        ))
    footer = ("Paper: constant-size objects fragment about as much as "
              "uniform sizes with the same mean, for both systems.")
    return "\n\n".join(blocks) + "\n" + footer


def checks(results) -> list[ShapeCheck]:
    out = []
    for backend in ("database", "filesystem"):
        const = paperfig.frag_series(results[(backend, "Constant")])[-1][1]
        uniform = paperfig.frag_series(results[(backend, "Uniform")])[-1][1]
        out.append(check_between(
            f"{backend}: constant ~= uniform at age 10",
            const / uniform, 0.4, 2.5,
        ))
    db_final = paperfig.frag_series(results[("database", "Constant")])[-1][1]
    fs_final = paperfig.frag_series(
        results[("filesystem", "Constant")]
    )[-1][1]
    out.append(check_faster(
        "database fragments rapidly, filesystem slowly",
        db_final, fs_final, min_ratio=2.0,
    ))
    out.append(check_between(
        "filesystem still fragments (constant sizes are no cure)",
        fs_final, 1.15, 50.0,
    ))
    return out


def test_fig5_size_distributions(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
