"""Figure 2 — long-term fragmentation with 10 MB objects.

The paper's headline fragmentation result: over storage ages 0-10,
NTFS's fragments/object "begins to level off over time, while SQL
Server's fragmentation increases almost linearly over time and does not
seem to be approaching any asymptote".
"""

from repro.analysis.compare import (
    ShapeCheck,
    check_faster,
    check_keeps_growing,
    check_levels_off,
    check_monotonic_increase,
)
from repro.analysis.tables import render_series_table
from repro.core.workload import ConstantSize
from repro.units import MB

import paperfig


def compute():
    return {
        backend: paperfig.run_curve(
            backend, ConstantSize(10 * MB),
            volume=paperfig.DEFAULT_VOLUME,
            occupancy=0.5,
            ages=paperfig.FULL_AGES,
            reads_per_sample=16,
        )
        for backend in ("database", "filesystem")
    }


def render(results) -> str:
    return render_series_table(
        "Figure 2: Long Term Fragmentation With 10 MB Objects "
        "(fragments/object)",
        "Storage Age",
        {
            "Database": paperfig.frag_series(results["database"]),
            "Filesystem": paperfig.frag_series(results["filesystem"]),
        },
        footer=("Paper: database rises near-linearly (to ~35-40 on the "
                "400 GB testbed); filesystem levels off (~5).  Scaled "
                "volumes preserve the shapes, not the absolute levels."),
    )


def checks(results) -> list[ShapeCheck]:
    db = paperfig.frag_series(results["database"])
    fs = paperfig.frag_series(results["filesystem"])
    return [
        check_monotonic_increase("database fragmentation rises", db),
        check_keeps_growing("database approaches no asymptote", db),
        check_levels_off("filesystem levels off", fs,
                         max_late_growth=0.55),
        check_faster("database fragments far worse than filesystem",
                     db[-1][1], fs[-1][1], min_ratio=2.0),
    ]


def test_fig2_large_object_fragmentation(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
