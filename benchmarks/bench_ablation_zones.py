"""Ablation A7 — multi-zone placement (why allocation is 'banded').

Paper §3.4: modern drives transfer faster on outer cylinders; an
"optimal policy for placing popular files in faster zones" yielded
20-40% improvements in simulation, and NTFS's banded allocation targets
the fast band.  This ablation measures the effect directly on the disk
model: the same object set read from the outer band, the inner band,
and a uniform spread — plus the filesystem's own outer-band preference
observed from a real bulk load.
"""

from repro.alloc.extent import Extent
from repro.analysis.compare import ShapeCheck, check_between, check_faster
from repro.analysis.tables import render_table
from repro.core.workload import ConstantSize, WorkloadSpec, bulk_load
from repro.backends.file_backend import FileBackend
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.rng import substream
from repro.units import GB, MB

import paperfig

OBJECT = 4 * MB
NOBJECTS = 64
VOLUME = 4 * GB


def read_rate_at(band_start: int) -> float:
    """Sequentially-placed objects at a band, read in random order."""
    device = BlockDevice(scaled_disk(VOLUME))
    extents = [
        Extent(band_start + i * OBJECT, OBJECT) for i in range(NOBJECTS)
    ]
    rng = substream(3, f"band-{band_start}")
    order = list(range(NOBJECTS))
    rng.shuffle(order)
    win = device.stats.start_window("reads")
    for idx in order:
        device.read_extents([extents[idx]])
    device.stats.end_window(win)
    return win.read_bytes / win.total_time_s


def fs_band_usage() -> float:
    """Fraction of bulk-loaded bytes the filesystem puts in the outer
    band when only half the volume is needed."""
    store = FileBackend(BlockDevice(scaled_disk(VOLUME)))
    spec = WorkloadSpec(sizes=ConstantSize(OBJECT), target_occupancy=0.4)
    state = bulk_load(store, spec, substream(5, "w"))
    band_limit = store.fs.allocator.runcache.outer_band_limit
    in_band = 0
    total = 0
    for key in state.keys:
        for ext in store.object_extents(key):
            total += ext.length
            if ext.start < band_limit:
                in_band += ext.length
    return in_band / total if total else 0.0


def compute():
    outer = read_rate_at(0)
    middle = read_rate_at(VOLUME // 2)
    inner = read_rate_at(VOLUME - NOBJECTS * OBJECT - MB)
    return {
        "outer": outer,
        "middle": middle,
        "inner": inner,
        "fs_band_fraction": fs_band_usage(),
    }


def render(results) -> str:
    rows = [
        ["outer band", results["outer"] / MB],
        ["middle", results["middle"] / MB],
        ["inner band", results["inner"] / MB],
    ]
    table = render_table(
        "Ablation A7: random reads of 4 MB objects by zone (MB/s)",
        ["Placement", "Read MB/s"],
        rows,
        footer=(f"Outer/inner advantage: "
                f"{results['outer'] / results['inner']:.2f}x "
                "(paper cites 20-40% gains from zone-aware placement)."),
    )
    return table + (
        f"\nFilesystem bulk load placed "
        f"{results['fs_band_fraction']:.0%} of object bytes at "
        "outer-band offsets (banded allocation fills the volume from "
        "the fast edge)."
    )


def checks(results) -> list[ShapeCheck]:
    return [
        check_faster(
            "outer band reads beat inner band by >= 20% (paper's range)",
            results["outer"], results["inner"], min_ratio=1.2,
        ),
        check_faster("rates fall monotonically toward the spindle",
                     results["middle"], results["inner"]),
        check_between(
            "bulk load starts from the fast edge",
            results["fs_band_fraction"], 0.2, 1.0,
        ),
    ]


def test_ablation_zone_placement(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
