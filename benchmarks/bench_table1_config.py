"""Table 1 — configuration of the test system.

The paper's testbed (Tyan S2882, Opteron 244, MV8 SATA controller, four
Seagate 400 GB 7200 rpm drives, Windows 2003 / SQL Server 2005) is
replaced by the simulated analogue documented in DESIGN.md.  This bench
prints both columns side by side and sanity-checks the simulated disk's
headline characteristics.
"""

from repro.backends.costmodel import CostModel
from repro.disk.geometry import PAPER_DISK
from repro.analysis.tables import render_table
from repro.units import GB, MB

import paperfig


def build_table() -> str:
    disk = PAPER_DISK
    rows = [
        ["Host", "Tyan S2882, 1.8 GHz Opteron 244, 2 GB RAM",
         "analytic CPU cost model (see below)"],
        ["Controller", "SuperMicro MV8 SATA",
         "per-request overhead "
         f"{disk.per_request_overhead_s * 1e3:.1f} ms"],
        ["Drives", "4x Seagate ST3400832AS 400 GB 7200 rpm",
         f"BlockDevice: {disk.capacity // GB} GB, "
         f"{disk.rpm:.0f} rpm, {disk.avg_seek_s * 1e3:.1f} ms avg seek"],
        ["Media rate", "(zoned, unpublished)",
         f"{disk.zones[0].rate / MB:.0f} -> "
         f"{disk.zones[-1].rate / MB:.0f} MB/s over "
         f"{len(disk.zones)} zones"],
        ["OS / FS", "Windows Server 2003 R2 / NTFS",
         "repro.fs.SimFilesystem (run cache, journal, safe writes)"],
        ["DBMS", "SQL Server 2005 (bulk logged)",
         "repro.db.SimDatabase (GAM, LOB trees, ghost cleanup)"],
    ]
    table = render_table(
        "Table 1: test system (paper vs simulated analogue)",
        ["Component", "Paper", "This reproduction"],
        rows,
    )
    return table + "\n\nCPU cost model:\n" + CostModel().describe()


def test_table1_configuration(benchmark):
    text = paperfig.bench_once(benchmark, build_table)
    print()
    print(text)
    disk = PAPER_DISK
    assert disk.capacity == 400 * GB
    assert disk.rpm == 7200
    # Outer zones must be faster — NTFS's banded allocation targets them.
    assert disk.zones[0].rate > disk.zones[-1].rate


if __name__ == "__main__":
    print(build_table())
