#!/usr/bin/env python
"""Allocator microbenchmark: tiered vs naive free-space engine.

Times the operations every experiment funnels through
:class:`~repro.alloc.freelist.FreeExtentIndex` — building a fragmented
free map, mixed alloc/free churn through the repo's allocation entry
points, and the point queries — at 10^3..10^6 live extents, for both
the tiered production engine and the flat-list reference model
(``--index`` ablation twin).  Results go to a machine-readable
``BENCH_alloc.json`` (schema documented in ``benchmarks/README.md``),
the repo's first perf-trajectory baseline.

Operation families
------------------
* ``build``            — populate the index with n isolated free runs.
* ``mixed_policy``     — alternating ``allocate_fragmented`` (first-fit
  policy, includes its O(total_free) occupancy guard) and frees: the
  generic allocation path of :mod:`repro.alloc.policy`.
* ``aging_runcache``   — alternating :class:`NtfsRunCache` allocations
  and frees: the filesystem aging hot path behind Figures 1-4.
* ``query_*``          — first_fit / banded first_fit / best_fit /
  worst_fit / total_free reads against a static map.

Usage::

    PYTHONPATH=src python benchmarks/bench_alloc_micro.py
    PYTHONPATH=src python benchmarks/bench_alloc_micro.py --quick
    PYTHONPATH=src python benchmarks/bench_alloc_micro.py \
        --scales 1000,100000,1000000 --out BENCH_alloc.json
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import time
from pathlib import Path

from repro.alloc.extent import Extent
from repro.alloc.freelist import INDEX_KINDS, make_free_index
from repro.alloc.policy import FirstFit, allocate_fragmented
from repro.alloc.runcache import NtfsRunCache

#: Byte slot reserved per seeded run; runs are 1..48 bytes long, so
#: consecutive seeds never touch and the build phase never coalesces.
SLOT = 64
DEFAULT_SCALES = (1_000, 10_000, 100_000)
QUICK_SCALES = (1_000, 10_000)
#: The naive engine pays O(n) per op; cap measured mutation ops per
#: scale so the largest naive runs stay in seconds, not minutes.
MUTATION_OPS = {1_000: 2_000, 10_000: 1_000}
MUTATION_OPS_DEFAULT = 300
QUERY_OPS = 200


def seeded_run(i: int) -> Extent:
    """The i-th build-phase run: deterministic, spread across buckets."""
    return Extent(i * SLOT, 1 + (i * 7919) % 48)


def build_index(kind: str, n: int):
    index = make_free_index((n + 1) * SLOT, kind=kind, initially_free=False)
    for i in range(n):
        index.add(seeded_run(i))
    return index


def timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def bench_one_kind(kind: str, n: int) -> list[dict]:
    """All operation families for one engine at one scale."""
    ops = MUTATION_OPS.get(n, MUTATION_OPS_DEFAULT)
    rows: list[dict] = []

    def row(op: str, count: int, seconds: float) -> None:
        rows.append({
            "index": kind,
            "live_extents": n,
            "op": op,
            "ops": count,
            "seconds": round(seconds, 6),
            "us_per_op": round(seconds / count * 1e6, 3),
        })

    holder: list = []
    row("build", n, timed(lambda: holder.append(build_index(kind, n))))
    index = holder[0]

    # Mixed alloc/free through the generic policy path.
    rng = random.Random(1234)
    policy = FirstFit()
    allocated: list[list[Extent]] = []

    def mixed_policy() -> None:
        for _ in range(ops):
            size = rng.randint(1, 32)
            allocated.append(allocate_fragmented(index, size, policy))
            if allocated and rng.random() < 0.5:
                for piece in allocated.pop(rng.randrange(len(allocated))):
                    index.add(piece)

    row("mixed_policy", ops, timed(mixed_policy))
    for pieces in allocated:
        for piece in pieces:
            index.add(piece)

    # Mixed alloc/free through the NTFS run cache (the aging workload).
    rng = random.Random(5678)
    runcache = NtfsRunCache(index)
    chunks: list[list[Extent]] = []

    def aging_runcache() -> None:
        for _ in range(ops):
            size = rng.randint(1, 32)
            chunks.append(runcache.allocate(size))
            if chunks and rng.random() < 0.5:
                for piece in chunks.pop(rng.randrange(len(chunks))):
                    index.add(piece)

    row("aging_runcache", ops, timed(aging_runcache))
    for pieces in chunks:
        for piece in pieces:
            index.add(piece)

    # Point queries against the (restored) static map.
    rng = random.Random(42)
    capacity = index.capacity
    sizes = [rng.randint(1, 48) for _ in range(QUERY_OPS)]
    bands = [rng.randrange(capacity) for _ in range(QUERY_OPS)]

    row("query_first_fit", QUERY_OPS,
        timed(lambda: [index.first_fit(s) for s in sizes]))
    row("query_banded_first_fit", QUERY_OPS,
        timed(lambda: [index.first_fit(s, min_start=b)
                       for s, b in zip(sizes, bands)]))
    row("query_best_fit", QUERY_OPS,
        timed(lambda: [index.best_fit(s) for s in sizes]))
    row("query_worst_fit", QUERY_OPS,
        timed(lambda: [index.worst_fit(s) for s in sizes]))
    row("query_total_free", QUERY_OPS,
        timed(lambda: [index.total_free for _ in range(QUERY_OPS)]))

    index.check_invariants()
    return rows


def compute_speedups(rows: list[dict]) -> dict[str, float]:
    """naive-vs-tiered per (op, scale), keyed ``op@scale``."""
    us = {(r["index"], r["op"], r["live_extents"]): r["us_per_op"]
          for r in rows}
    speedups: dict[str, float] = {}
    for (kind, op, n), tiered_us in sorted(us.items()):
        if kind != "tiered":
            continue
        naive_us = us.get(("naive", op, n))
        if naive_us is not None and tiered_us > 0:
            speedups[f"{op}@{n}"] = round(naive_us / tiered_us, 2)
    return speedups


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scales only (CI smoke)")
    parser.add_argument("--scales", type=str, default=None,
                        help="comma-separated live-extent counts")
    parser.add_argument("--kinds", type=str, default=",".join(INDEX_KINDS),
                        help="comma-separated engines to measure")
    parser.add_argument("--naive-max", type=int, default=100_000,
                        help="skip the naive engine above this many live "
                             "extents (its O(n) ops make 10^6 impractical)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).parent / "BENCH_alloc.json")
    args = parser.parse_args(argv)

    if args.scales:
        scales = tuple(int(s) for s in args.scales.split(","))
    else:
        scales = QUICK_SCALES if args.quick else DEFAULT_SCALES
    kinds = tuple(args.kinds.split(","))

    rows: list[dict] = []
    for n in scales:
        for kind in kinds:
            if kind == "naive" and n > args.naive_max:
                print(f"... naive @ {n:,} skipped (--naive-max "
                      f"{args.naive_max:,})", flush=True)
                continue
            print(f"... {kind} @ {n:,} live extents", flush=True)
            rows.extend(bench_one_kind(kind, n))

    speedups = compute_speedups(rows)
    report = {
        "schema": "bench-alloc/1",
        "generated_by": "benchmarks/bench_alloc_micro.py",
        "python": platform.python_version(),
        "config": {
            "scales": list(scales),
            "kinds": list(kinds),
            "quick": args.quick,
            "query_ops": QUERY_OPS,
        },
        "results": rows,
        "speedups_naive_over_tiered": speedups,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"\n{'op':24s} {'n':>9s} {'tiered us':>10s} {'naive us':>10s} "
          f"{'speedup':>8s}")
    us = {(r["index"], r["op"], r["live_extents"]): r["us_per_op"]
          for r in rows}
    for key, ratio in speedups.items():
        op, n = key.rsplit("@", 1)
        tiered_us = us.get(("tiered", op, int(n)), float("nan"))
        naive_us = us.get(("naive", op, int(n)), float("nan"))
        print(f"{op:24s} {int(n):>9,d} {tiered_us:>10.1f} {naive_us:>10.1f} "
              f"{ratio:>7.1f}x")
    print(f"\nwrote {args.out}")

    mixed = {k: v for k, v in speedups.items()
             if k.startswith(("mixed_policy", "aging_runcache"))
             and int(k.rsplit("@", 1)[1]) >= 100_000}
    if mixed and min(mixed.values()) < 10.0:
        print("WARNING: mixed alloc/free speedup below the 10x target "
              f"at 1e5+ extents: {mixed}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
