"""Ablation A4 — deferred free-space reuse windows.

Two deferral mechanisms shape reuse in the paper's systems:

* NTFS: "the transactional log entry must be committed before freed
  space can be reallocated" — the journal's group-commit interval sets
  the window.
* SQL Server: ghost records — deleted pages return to the allocation
  maps only when the background cleaner processes them.

This ablation varies both windows and reports aged fragmentation.  For
the database, *fine-grained trickle cleanup* is the interleaving driver
(DESIGN.md §5): immediate frees let each replacement reuse whole holes,
while trickled frees splice objects across many old holes.
"""

from repro.analysis.compare import ShapeCheck, check_between, check_faster
from repro.analysis.tables import render_table
from repro.core.workload import ConstantSize
from repro.db.database import DbConfig
from repro.fs.filesystem import FsConfig
from repro.units import MB

import paperfig

OBJECT = 4 * MB
AGES = (0.0, 4.0, 8.0)


def compute():
    results = {}
    for label, interval in (("commit each op", 1),
                            ("commit every 8", 8),
                            ("commit every 64", 64)):
        result = paperfig.run_curve(
            "filesystem", ConstantSize(OBJECT),
            volume=512 * MB, occupancy=0.9, ages=AGES,
            reads_per_sample=8,
            fs_config=FsConfig(commit_interval_ops=interval),
        )
        results[("filesystem", label)] = \
            result.sample_at(8.0).fragments_per_object
    for label, cfg in (
        ("immediate frees", DbConfig(ghost_cleanup_interval_ops=0)),
        ("trickle (default)", DbConfig()),
        ("long window", DbConfig(ghost_cleanup_interval_ops=64,
                                 ghost_max_pages_per_sweep=64,
                                 ghost_min_age_ops=1024)),
    ):
        result = paperfig.run_curve(
            "database", ConstantSize(OBJECT),
            volume=512 * MB, occupancy=0.9, ages=AGES,
            reads_per_sample=8,
            db_config=cfg,
        )
        results[("database", label)] = \
            result.sample_at(8.0).fragments_per_object
    return results


def render(results) -> str:
    rows = [[system, label, frags]
            for (system, label), frags in results.items()]
    return render_table(
        "Ablation A4: deferred-free window vs fragments/object "
        "(4 MB objects, age 8, 90% full)",
        ["System", "Free-space reuse window", "Frags/object"],
        rows,
        footer=("Deferred reuse drives fragmentation in BOTH systems: "
                "trickled ghost cleanup splices database objects across "
                "old holes, and long journal windows starve the "
                "filesystem's free pool at high occupancy."),
    )


def checks(results) -> list[ShapeCheck]:
    return [
        check_faster(
            "db: deferred (trickled) frees fragment worse than immediate",
            results[("database", "trickle (default)")],
            results[("database", "immediate frees")],
            min_ratio=1.15,
        ),
        check_between(
            "db: immediate frees eliminate fragmentation (exact-fit "
            "hole reuse)",
            results[("database", "immediate frees")], 1.0, 1.5,
        ),
        check_faster(
            "fs: longer commit windows also raise fragmentation",
            results[("filesystem", "commit every 64")],
            results[("filesystem", "commit each op")],
            min_ratio=1.2,
        ),
    ]


def test_ablation_deferred_free(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
