"""Extension A6 — interleaved append requests to multiple objects.

The paper's conclusions flag this as unmeasured future work: "Also not
considered were interleaved append requests to multiple objects, which
are likely to increase fragmentation."  This bench measures it: grow N
objects concurrently, one 64 KB request at a time round-robin, on a
clean volume — the pattern of a web server receiving N uploads at once.

It also measures the mitigation the paper points to (§5.4): delayed
allocation "implicitly increases the size of file append requests" by
buffering, so concurrent streams stop competing per-request.
"""

from repro.analysis.compare import ShapeCheck, check_between, check_faster
from repro.analysis.tables import render_table
from repro.core.interleaved import interleaved_db_load, interleaved_fs_load
from repro.db.database import SimDatabase
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.fs.filesystem import FsConfig, SimFilesystem
from repro.units import GB, MB

import paperfig

OBJECT = 4 * MB
TOTAL = 100
STREAMS = (1, 2, 4, 8)


def compute():
    results = {}
    for streams in STREAMS:
        fs = SimFilesystem(BlockDevice(scaled_disk(1 * GB)))
        results[("filesystem", streams)] = interleaved_fs_load(
            fs, nstreams=streams, object_size=OBJECT, total_objects=TOTAL
        ).fragments_per_object
        delayed = SimFilesystem(
            BlockDevice(scaled_disk(1 * GB)),
            FsConfig(delayed_allocation=True),
        )
        results[("fs+delayed", streams)] = interleaved_fs_load(
            delayed, nstreams=streams, object_size=OBJECT,
            total_objects=TOTAL,
        ).fragments_per_object
        db = SimDatabase(BlockDevice(scaled_disk(1 * GB)))
        results[("database", streams)] = interleaved_db_load(
            db, nstreams=streams, object_size=OBJECT, total_objects=TOTAL
        ).fragments_per_object
    return results


def render(results) -> str:
    rows = []
    for streams in STREAMS:
        rows.append([
            streams,
            results[("filesystem", streams)],
            results[("database", streams)],
            results[("fs+delayed", streams)],
        ])
    return render_table(
        "Extension A6: concurrent append streams vs fragments/object "
        f"({OBJECT // MB} MB objects, clean volume)",
        ["Streams", "Filesystem", "Database", "FS + delayed alloc"],
        rows,
        footer=("Paper §6: interleaved appends are 'likely to increase "
                "fragmentation' — confirmed: per-request allocation "
                "degrades to one fragment per request; buffering "
                "(delayed allocation) restores contiguity."),
    )


def checks(results) -> list[ShapeCheck]:
    max_frags = OBJECT // (64 * 1024)
    return [
        check_between("serial appends stay contiguous (both systems)",
                      results[("filesystem", 1)]
                      * results[("database", 1)], 1.0, 1.2),
        check_faster(
            "two interleaved streams explode filesystem fragmentation",
            results[("filesystem", 2)], results[("filesystem", 1)],
            min_ratio=8.0,
        ),
        check_faster(
            "two interleaved streams explode database fragmentation",
            results[("database", 2)], results[("database", 1)],
            min_ratio=8.0,
        ),
        check_between(
            "interleaving approaches one fragment per write request",
            results[("filesystem", 8)], max_frags * 0.5, max_frags,
        ),
        check_between(
            "delayed allocation neutralizes the interleaving",
            results[("fs+delayed", 8)], 1.0, 1.5,
        ),
    ]


def test_extension_interleaved_appends(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
