"""Figure 3 — long-term fragmentation with 256 KB objects.

"For small objects, the systems have similar fragmentation behavior":
run to a steady state, both converge to roughly **four fragments per
file, or one fragment per 64 KB** — the test's write request size.  The
paper takes this as evidence that the size of file creation and append
operations drives fragmentation.

The steady state is reached on a nearly full volume (97% here): with a
large free pool the filesystem keeps finding contiguous holes and stays
near one fragment; the convergence the paper describes is the
exhausted-pool regime (compare Figure 6's free-pool effect).
"""

from repro.analysis.compare import ShapeCheck, check_between
from repro.analysis.tables import render_series_table
from repro.core.workload import ConstantSize
from repro.units import KB, MB

import paperfig


def compute():
    return {
        backend: paperfig.run_curve(
            backend, ConstantSize(256 * KB),
            volume=512 * MB,
            occupancy=0.97,
            ages=paperfig.FULL_AGES,
            reads_per_sample=16,
        )
        for backend in ("database", "filesystem")
    }


def render(results) -> str:
    return render_series_table(
        "Figure 3: Long Term Fragmentation With 256K Objects "
        "(fragments/object)",
        "Storage Age",
        {
            "Database": paperfig.frag_series(results["database"]),
            "Filesystem": paperfig.frag_series(results["filesystem"]),
        },
        footer=("Paper: both systems converge to ~4 fragments/object = "
                "one fragment per 64KB write request."),
    )


def checks(results) -> list[ShapeCheck]:
    db_final = paperfig.frag_series(results["database"])[-1][1]
    fs_final = paperfig.frag_series(results["filesystem"])[-1][1]
    return [
        check_between("database converges near 4 frags (1 per 64KB)",
                      db_final, 2.5, 6.5),
        check_between("filesystem converges near 4 frags (1 per 64KB)",
                      fs_final, 2.0, 6.0),
        check_between("the two systems converge to similar levels",
                      db_final / fs_final, 0.5, 2.0),
    ]


def test_fig3_small_object_fragmentation(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
