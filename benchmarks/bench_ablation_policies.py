"""Ablation A1 — textbook allocation policies on the paper's workload.

The paper's theory section (3.2) discusses first fit's near-optimal
worst case and why theoretically optimal policies can behave poorly in
practice.  This bench churns a raw free-extent index with each policy
(plus the DTSS buddy system) under the safe-write pattern
(allocate-new-then-free-old) and reports external fragmentation — the
number of pieces per allocation — and, for buddy, the internal waste it
trades for its zero external fragmentation.
"""

from repro.alloc.buddy import BuddyAllocator
from repro.alloc.extent import Extent
from repro.alloc.freelist import FreeExtentIndex
from repro.alloc.policy import allocate_fragmented, make_policy, policy_names
from repro.analysis.compare import ShapeCheck, check_between
from repro.analysis.tables import render_table
from repro.errors import AllocationError
from repro.rng import substream
from repro.units import KB, MB

import paperfig

VOLUME = 256 * MB
OBJECT = 1 * MB
OCCUPANCY = 0.9
CHURN_OPS = 2000


def churn_policy(policy_name: str, seed: int = 5):
    """Safe-write churn against one policy; returns (mean pieces,
    max pieces, failed ops)."""
    index = FreeExtentIndex(VOLUME)
    policy = make_policy(policy_name)
    rng = substream(seed, policy_name)
    live: list[list[Extent]] = []
    target = int(VOLUME * OCCUPANCY)
    while sum(sum(e.length for e in obj) for obj in live) + OBJECT <= target:
        live.append(allocate_fragmented(index, OBJECT, policy))
    failures = 0
    for _ in range(CHURN_OPS):
        victim = rng.randrange(len(live))
        try:
            replacement = allocate_fragmented(index, OBJECT, policy)
        except AllocationError:
            failures += 1
            continue
        for ext in live[victim]:
            index.add(ext)
        live[victim] = replacement
    pieces = [len(obj) for obj in live]
    return sum(pieces) / len(pieces), max(pieces), failures


def churn_buddy(seed: int = 5):
    """Same churn against the buddy allocator (always 1 piece, but
    internal waste; uses a 1.25 MB odd size to expose the rounding)."""
    odd_object = OBJECT + 256 * KB
    buddy = BuddyAllocator(VOLUME, min_block=4 * KB)
    rng = substream(seed, "buddy")
    live: list[Extent] = []
    target = int(VOLUME * OCCUPANCY)
    while sum(e.length for e in live) + buddy.block_size(
            (odd_object // (4 * KB)).bit_length()) <= target:
        try:
            live.append(buddy.alloc(odd_object))
        except AllocationError:
            break
    for _ in range(CHURN_OPS):
        victim = rng.randrange(len(live))
        buddy.free(live[victim])
        live[victim] = buddy.alloc(odd_object)
    waste = buddy.internal_waste(odd_object) / odd_object
    return 1.0, 1, waste


def compute():
    rows = {}
    for name in policy_names():
        rows[name] = churn_policy(name)
    rows["buddy"] = churn_buddy()
    return rows


def render(results) -> str:
    table_rows = []
    for name, values in results.items():
        if name == "buddy":
            mean_pieces, max_pieces, waste = values
            table_rows.append([name, mean_pieces, max_pieces,
                               f"{waste:.0%} internal waste"])
        else:
            mean_pieces, max_pieces, failures = values
            table_rows.append([name, mean_pieces, max_pieces,
                               f"{failures} failed ops"])
    return render_table(
        "Ablation A1: allocation policy vs external fragmentation "
        f"({OBJECT // MB} MB objects, {OCCUPANCY:.0%} full)",
        ["Policy", "Mean pieces/object", "Max", "Notes"],
        table_rows,
        footer=("Constant-size objects with free-before-allocate churn "
                "stay contiguous under every fit policy (the paper's "
                "§5.4 intuition); buddy adds internal waste instead."),
    )


def checks(results) -> list[ShapeCheck]:
    out = []
    for name in policy_names():
        mean_pieces, _, failures = results[name]
        out.append(check_between(
            f"{name}: constant-size churn stays near-contiguous",
            mean_pieces, 1.0, 1.6,
        ))
        out.append(check_between(
            f"{name}: no failed allocations", failures, 0, 0,
        ))
    _, _, waste = results["buddy"]
    out.append(check_between(
        "buddy pays internal fragmentation for predictability",
        waste, 0.05, 1.0,
    ))
    return out


def test_ablation_allocation_policies(benchmark):
    results = paperfig.bench_once(benchmark, compute)
    print()
    print(render(results))
    paperfig.report_checks(checks(results))


if __name__ == "__main__":
    res = compute()
    print(render(res))
    for check in checks(res):
        print(check)
