"""Legacy setup shim.

The execution environment is offline with setuptools 65 and no `wheel`
package, so PEP 517 editable installs fail with `invalid command
'bdist_wheel'`.  This shim lets `pip install -e . --no-use-pep517
--no-build-isolation` (and plain `pip install -e .`, which pip falls
back to) work everywhere; all metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
