"""Personal video recorder: large transient objects.

The paper's introduction: "applications such as personal video
recorders and media subscription servers continuously allocate and
delete large, transient objects."  This example models a PVR that
records shows (large objects), keeps a rolling window, and deletes the
oldest as the disk fills — a pure allocate/delete workload rather than
safe-write churn.

It compares the filesystem backend against the GFS-style chunk store
(the related-work design built for exactly this pattern) and shows the
trade: external fragmentation vs internal padding.

Run:  python examples/video_recorder.py
"""

from collections import deque

from repro import (
    BlockDevice,
    FileBackend,
    GB,
    GfsChunkBackend,
    MB,
    UniformSize,
    fragment_report,
    scaled_disk,
)
from repro.core.storage_age import StorageAgeTracker
from repro.rng import substream

VOLUME = 4 * GB
#: Standard-definition half-hour to ninety-minute recordings.  GFS
#: constrains records to a quarter of the chunk size, so the chunked
#: store below uses 256 MB chunks (max record 64 MB).
SHOW_SIZES = UniformSize(20 * MB, 60 * MB)
RECORDINGS = 200


def run_pvr(store, label: str) -> None:
    rng = substream(99, label)
    tracker = StorageAgeTracker()
    window: deque[tuple[str, int]] = deque()
    for episode in range(RECORDINGS):
        size = SHOW_SIZES.draw(rng)
        # Expire oldest recordings until the new one fits comfortably.
        while store.free_bytes() < size + 128 * MB and window:
            old_key, old_size = window.popleft()
            store.delete(old_key)
            tracker.on_delete(old_size)
        key = f"{label}-ep{episode:04d}"
        store.put(key, size=size)
        tracker.on_put(size)
        window.append((key, size))
    report = fragment_report(store)
    stats = store.store_stats()
    print(f"{label:12s} kept {stats.objects:3d} shows "
          f"({stats.live_bytes / GB:.2f} GB), storage age "
          f"{tracker.storage_age:.1f}, "
          f"{report.mean:.2f} fragments/show (max {report.max})")
    if isinstance(store, GfsChunkBackend):
        print(f"{'':12s} internal fragmentation "
              f"{store.internal_fragmentation():.1%}, "
              f"{store.gc_runs} chunk collections")


def main() -> None:
    print(f"PVR simulation: {RECORDINGS} recordings of "
          f"{SHOW_SIZES} on a {VOLUME // GB} GB disk\n")
    run_pvr(FileBackend(BlockDevice(scaled_disk(VOLUME))), "filesystem")
    run_pvr(
        GfsChunkBackend(BlockDevice(scaled_disk(VOLUME)),
                        chunk_size=256 * MB),
        "gfs-chunks",
    )
    print("\nThe FIFO deletion pattern is kind to allocators — freed "
          "shows leave large, coalescing holes —\nso even the plain "
          "filesystem stays nearly contiguous; the chunk store trades "
          "a little capacity\n(padding) for a guarantee.")


if __name__ == "__main__":
    main()
