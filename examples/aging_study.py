"""Aging study with defragmentation: is the maintenance worth it?

The paper's conclusion warns that "defragmentation may require
additional application logic and imposes read/write performance impacts
that can outweigh its benefits".  This example measures exactly that:
age a filesystem store, run the NTFS-style defragmenter, and compare
the read-throughput recovery against the I/O the pass itself cost.  It
then does the database equivalent — the table rebuild Microsoft
recommended to the authors.

Run:  python examples/aging_study.py
"""

from repro import (
    BlockDevice,
    BlobBackend,
    Defragmenter,
    ConstantSize,
    FileBackend,
    KB,
    MB,
    WorkloadSpec,
    bulk_load,
    churn_to_age,
    fragment_report,
    scaled_disk,
)
from repro.core.defrag import rebuild_database
from repro.core.throughput import measure_read_throughput
from repro.rng import substream

VOLUME = 512 * MB
OBJECT = 512 * KB
TARGET_AGE = 4.0


def aged_store(backend_cls):
    store = backend_cls(BlockDevice(scaled_disk(VOLUME)))
    spec = WorkloadSpec(sizes=ConstantSize(OBJECT), target_occupancy=0.9)
    state = bulk_load(store, spec, substream(31, "w"))
    churn_to_age(store, state, TARGET_AGE)
    return store, state


def study(name: str, store, state, defrag_fn) -> None:
    before_frag = fragment_report(store)
    before_read = measure_read_throughput(store, state, 64,
                                          substream(31, "r"))
    io_before = sum(d.stats.total_bytes for d in store.devices())
    stats = defrag_fn(store)
    io_cost = sum(d.stats.total_bytes for d in store.devices()) - io_before
    after_frag = fragment_report(store)
    after_read = measure_read_throughput(store, state, 64,
                                         substream(32, "r"))
    print(f"== {name} (storage age {state.tracker.storage_age:.1f}) ==")
    print(f"  fragments/object : {before_frag.mean:5.2f} -> "
          f"{after_frag.mean:5.2f}  "
          f"({stats.improvement:.0%} of fragments removed)")
    print(f"  read throughput  : {before_read.mbps / MB:5.2f} -> "
          f"{after_read.mbps / MB:5.2f} MB/s")
    print(f"  maintenance cost : {stats.bytes_moved / MB:.0f} MB of "
          f"objects rewritten, {io_cost / MB:.0f} MB of device I/O")
    gain = after_read.mbps - before_read.mbps
    verdict = "paid off" if gain > 0 else "did not pay off"
    print(f"  verdict          : the pass {verdict} for read-heavy "
          "workloads; amortize it against future reads.\n")


def main() -> None:
    print(f"Aging study: {OBJECT // KB} KB objects churned to storage "
          f"age {TARGET_AGE:g} on {VOLUME // MB} MB volumes (90% full)\n")
    fs_store, fs_state = aged_store(FileBackend)
    study("filesystem defragmenter", fs_store, fs_state,
          lambda s: Defragmenter(s).run())
    db_store, db_state = aged_store(BlobBackend)
    study("database table rebuild", db_store, db_state, rebuild_database)


if __name__ == "__main__":
    main()
