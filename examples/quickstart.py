"""Quickstart: a large-object repository in ~40 lines.

Creates a simulated 512 MB volume, stores objects on the filesystem
backend, replaces one with a safe write, and prints the repository's
built-in instrumentation: storage age and fragments/object.

Run:  python examples/quickstart.py
"""

from repro import (
    BlockDevice,
    FileBackend,
    LargeObjectRepository,
    MB,
    scaled_disk,
)


def main() -> None:
    # A simulated 512 MB volume with paper-like disk mechanics
    # (7200 rpm, ~8.5 ms average seek, zoned transfer rates).
    device = BlockDevice(scaled_disk(512 * MB))

    # The paper's filesystem configuration: one file per object,
    # metadata rows in a (simulated) database, safe-write updates.
    repo = LargeObjectRepository(FileBackend(device))

    # Store a few photo-sized objects.
    for i in range(20):
        repo.put(f"photo-{i:03d}", size=2 * MB)
    print("after bulk load:   ", repo.describe())

    # Users re-upload edited versions: each replace is a safe write
    # (write temp file, force, atomic rename) — the old bytes become
    # "dead" and storage age advances.
    for _ in range(3):
        for i in range(20):
            repo.replace(f"photo-{i:03d}", size=2 * MB)
    print("after three edits: ", repo.describe())

    # Reads are timed against the disk model.
    data_len = repo.meta("photo-007").size
    repo.get("photo-007")
    stats = device.stats
    print(f"device so far:      {stats.total_bytes / MB:.0f} MB moved, "
          f"{stats.seeks} seeks, {stats.busy_time_s:.2f} s modelled time")

    # Fragments/object is the paper's fragmentation metric; 1.0 means
    # every object is physically contiguous.
    report = repo.fragment_report()
    print(f"fragment histogram: {report.histogram(bins=[1, 2, 4, 8])}")
    assert data_len == 2 * MB


if __name__ == "__main__":
    main()
