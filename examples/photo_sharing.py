"""Photo sharing service: where should the images live?

The paper's motivating question — file or BLOB? — answered for a
photo-sharing workload: 512 KB images, frequently re-uploaded (safe
writes), read-heavy.  This example ages both backends side by side and
prints the break-even analysis, including how the answer *changes* as
the store ages — the paper's central result.

Run:  python examples/photo_sharing.py
"""

from repro import (
    ConstantSize,
    ExperimentConfig,
    KB,
    MB,
    run_experiment,
)
from repro.analysis.compare import crossover_age
from repro.analysis.tables import render_series_table

PHOTO_SIZE = 512 * KB
VOLUME = 512 * MB
AGES = (0.0, 1.0, 2.0, 3.0, 4.0)


def age_backend(backend: str):
    config = ExperimentConfig(
        backend=backend,
        sizes=ConstantSize(PHOTO_SIZE),
        volume_bytes=VOLUME,
        occupancy=0.9,            # a well-utilized photo volume
        ages=AGES,
        reads_per_sample=48,
        seed=23,
    )
    return run_experiment(config)


def main() -> None:
    print(f"Photo service simulation: {PHOTO_SIZE // KB} KB images, "
          f"{VOLUME // MB} MB volume at 90% occupancy\n")
    runs = {name: age_backend(name) for name in ("database", "filesystem")}

    read_series = {
        name: [(s.age, s.read_mbps / MB) for s in run.samples]
        for name, run in runs.items()
    }
    print(render_series_table(
        "Read throughput as the store ages (MB/s)",
        "storage age (re-uploads per photo)",
        {"BLOBs": read_series["database"],
         "Files": read_series["filesystem"]},
    ))
    print()
    frag_series = {
        name: [(s.age, s.fragments_per_object) for s in run.samples]
        for name, run in runs.items()
    }
    print(render_series_table(
        "Fragments per photo",
        "storage age",
        {"BLOBs": frag_series["database"],
         "Files": frag_series["filesystem"]},
    ))

    cross = crossover_age(read_series["database"],
                          read_series["filesystem"])
    print()
    print("Recommendation:")
    db0 = read_series["database"][0][1]
    fs0 = read_series["filesystem"][0][1]
    print(f"  - On a fresh volume, BLOBs serve {PHOTO_SIZE // KB} KB "
          f"photos {db0 / fs0:.2f}x faster than files.")
    if cross is None:
        print("  - And they stay ahead across the simulated ages.")
    else:
        print(f"  - But by storage age {cross:g} (every photo re-uploaded "
              f"{cross:g} times), fragmentation erases the advantage — "
              "plan for files, or schedule BLOB-table rebuilds.")


if __name__ == "__main__":
    main()
