#!/usr/bin/env python
"""Fail on broken intra-repo links and stale lint-rule references.

Scans ``README.md``, ``docs/*.md``, ``benchmarks/README.md``,
``ROADMAP.md``, and ``CHANGES.md`` for inline markdown links/images
whose target is a relative path, resolves each against the linking
file's directory, and exits non-zero listing every target that does
not exist.  External links (``http(s):``, ``mailto:``) and pure
in-page anchors (``#...``) are ignored; a ``path#anchor`` target is
checked for the path only.

Also cross-checks the reprolint rule catalogue: every ``RPL###`` code
mentioned in the docs must exist in the rule registry, and every
registered rule must appear in the ``docs/architecture.md`` catalogue
— so the "Enforced invariants" section cannot rot.

Stdlib-only so the CI lint job needs no installs::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_GLOBS = ("README.md", "ROADMAP.md", "CHANGES.md", "docs/*.md",
             "benchmarks/*.md")
#: Inline links and images: [text](target) / ![alt](target).  Ignores
#: fenced code by stripping those blocks first.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files: list[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(ROOT.glob(pattern)))
    return files


def broken_links(path: Path) -> list[str]:
    text = FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    bad: list[str] = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if ROOT not in resolved.parents and resolved != ROOT:
            bad.append(f"{target} (escapes the repo)")
        elif not resolved.exists():
            bad.append(target)
    return bad


RPL_RE = re.compile(r"\bRPL\d{3}\b")
#: The rule catalogue every registered code must be documented in.
CATALOGUE_DOC = "docs/architecture.md"


def registered_rule_codes() -> set[str]:
    """Codes known to the reprolint registry (engine + meta rules)."""
    sys.path.insert(0, str(ROOT))
    try:
        from tools.reprolint import all_rules
    finally:
        sys.path.pop(0)
    return set(all_rules())


def rule_code_problems() -> list[str]:
    """Docs referencing unknown codes, and undocumented known codes."""
    known = registered_rule_codes()
    problems: list[str] = []
    catalogued: set[str] = set()
    for path in doc_files():
        rel = path.relative_to(ROOT).as_posix()
        mentioned = set(RPL_RE.findall(path.read_text(encoding="utf-8")))
        if rel == CATALOGUE_DOC:
            catalogued = mentioned
        for code in sorted(mentioned - known):
            problems.append(f"{rel}: references unknown rule {code}")
    for code in sorted(known - catalogued):
        problems.append(
            f"{CATALOGUE_DOC}: registered rule {code} missing from the "
            "catalogue")
    return problems


def main() -> int:
    failures = 0
    checked = 0
    for path in doc_files():
        checked += 1
        for target in broken_links(path):
            failures += 1
            print(f"{path.relative_to(ROOT)}: broken link -> {target}")
    for problem in rule_code_problems():
        failures += 1
        print(problem)
    if failures:
        print(f"\n{failures} problem(s) across {checked} file(s)")
        return 1
    print(f"ok: {checked} file(s), links and rule catalogue in sync")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
