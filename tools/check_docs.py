#!/usr/bin/env python
"""Fail on broken intra-repo links in the markdown docs.

Scans ``README.md``, ``docs/*.md``, ``benchmarks/README.md``,
``ROADMAP.md``, and ``CHANGES.md`` for inline markdown links/images
whose target is a relative path, resolves each against the linking
file's directory, and exits non-zero listing every target that does
not exist.  External links (``http(s):``, ``mailto:``) and pure
in-page anchors (``#...``) are ignored; a ``path#anchor`` target is
checked for the path only.

Stdlib-only so the CI docs job needs no installs::

    python tools/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOC_GLOBS = ("README.md", "ROADMAP.md", "CHANGES.md", "docs/*.md",
             "benchmarks/*.md")
#: Inline links and images: [text](target) / ![alt](target).  Ignores
#: fenced code by stripping those blocks first.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> list[Path]:
    files: list[Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(ROOT.glob(pattern)))
    return files


def broken_links(path: Path) -> list[str]:
    text = FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    bad: list[str] = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if ROOT not in resolved.parents and resolved != ROOT:
            bad.append(f"{target} (escapes the repo)")
        elif not resolved.exists():
            bad.append(target)
    return bad


def main() -> int:
    failures = 0
    checked = 0
    for path in doc_files():
        checked += 1
        for target in broken_links(path):
            failures += 1
            print(f"{path.relative_to(ROOT)}: broken link -> {target}")
    if failures:
        print(f"\n{failures} broken link(s) across {checked} file(s)")
        return 1
    print(f"ok: {checked} file(s), no broken intra-repo links")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
