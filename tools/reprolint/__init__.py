"""reprolint: project-specific static analysis for the repro simulator.

Every PR since the persistence work has hand-defended the same three
contracts — bit-exact determinism, checkpoint schema discipline, and
spec/registry consistency — in review.  This package checks them
mechanically.  It is **stdlib-only and never imports ``repro``**: every
rule works on the AST of the source tree, so the linter runs in a bare
CI container and cannot be confused by import-time side effects.

Rule families (catalogue in ``docs/architecture.md`` § "Enforced
invariants"):

* **RPL0xx** — suppression hygiene (malformed pragma, missing reason,
  unknown code, unused suppression).  Not themselves suppressible.
* **RPL1xx** — determinism: wall-clock/entropy sources, host timers in
  simulation code, RNG construction outside :mod:`repro.rng`, unseeded
  randomness in benches/tests, unordered ``set`` iteration, float/int
  accumulation over ``dict.values()`` in accounting modules.
* **RPL2xx** — schema discipline: a checked-in manifest of every
  pickled/snapshot-framed class's field names and defaults
  (``tools/reprolint/schema_manifest.json``), regenerated only via the
  ``manifest`` subcommand, fails the build when pickled state changes
  shape without a ``CHECKPOINT_SCHEMA``/``SNAPSHOT_VERSION`` bump.
* **RPL3xx** — registry/spec consistency: ``@register_backend`` names
  documented, ``StoreSpec`` fields covered by ``parse``/``to_dict``/
  ``_COMPOSITE_RESETS``, ``DeviceError`` subclasses declared in the
  one contract module.
* **RPL4xx** — performance hygiene: ``slots=True`` on hot-path
  dataclasses, no mutable default arguments.

Violations are suppressed **only** with a reason::

    something_unusual()  # reprolint: ok RPL105 (order irrelevant: feeds a set union)

A file-wide waiver uses ``# reprolint: file ok RPL104 (reason)`` on its
own line.  A suppression without a ``(reason)`` is itself an error, as
is one that suppresses nothing.

Command line::

    python -m tools.reprolint src benchmarks tests   # lint (exit 1 on findings)
    python -m tools.reprolint manifest               # print the schema manifest
    python -m tools.reprolint manifest --write       # regenerate it (guarded)

Library use: :func:`tools.reprolint.engine.run_lint` and
:func:`tools.reprolint.engine.lint_source` (used by the fixture tests).
"""

from tools.reprolint.engine import (
    Finding,
    all_rules,
    lint_source,
    run_lint,
)

__all__ = ["Finding", "all_rules", "lint_source", "run_lint"]
