"""Rule framework: findings, suppressions, scoping, and the lint driver.

A **file rule** visits one module's AST and yields findings; a
**project rule** runs once against the repository root (cross-file
contracts: the schema manifest, registry/docs consistency).  Rules
register themselves with the :func:`rule` decorator and carry:

* ``code`` — ``RPL###``; the suppression and catalogue key.
* ``name`` — short kebab-case label.
* ``hint`` — the one-line fix direction appended to every finding.
* ``include``/``exclude`` — fnmatch globs over repo-relative posix
  paths; a file rule only sees files inside its scope.  Scopes are
  policy, so they live in :mod:`tools.reprolint.config` and override
  the rule's declared defaults.

Suppressions are comments parsed from the token stream (never from
string literals)::

    expr  # reprolint: ok RPL105 (reason text)
    # reprolint: file ok RPL104, RPL105 (reason text)

The reason is mandatory, the code must exist, and a suppression that
matches no finding is itself reported (RPL004) — dead waivers rot.
Meta findings (RPL0xx) cannot be suppressed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Callable, Iterable, Iterator

#: Suppression pragma grammar.  ``file`` makes it file-wide.
_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*(?P<body>.*)$")
_OK_RE = re.compile(
    r"^(?P<scope>file\s+)?ok\s+(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*)"
    r"\s*(?:\((?P<reason>[^)]*)\))?\s*$"
)

#: Codes of the meta rules; never suppressible.
META_CODES = ("RPL001", "RPL002", "RPL003", "RPL004")


@dataclass(frozen=True)
class Finding:
    """One reported violation."""

    path: str
    line: int
    code: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.code} {self.message}"
        if self.hint:
            text += f" [hint: {self.hint}]"
        return text


@dataclass
class Suppression:
    """One parsed ``reprolint: ok`` pragma."""

    line: int
    codes: tuple[str, ...]
    reason: str
    file_wide: bool
    used: set[str] = field(default_factory=set)


class FileContext:
    """Everything a file rule sees: path, source, AST, import aliases."""

    def __init__(self, relpath: str, text: str, tree: ast.AST) -> None:
        self.path = relpath
        self.text = text
        self.tree = tree
        #: Local name -> dotted module path, from this file's imports
        #: (``from random import Random`` maps ``Random`` ->
        #: ``random.Random``).  Names never imported do not resolve, so
        #: a method named ``random`` on a local object cannot misfire.
        self.aliases = _import_aliases(tree)

    def dotted(self, node: ast.AST) -> str | None:
        """Resolve ``a.b.c`` to a dotted import path, or None."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


def _import_aliases(tree: ast.AST) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.asname:
                    aliases[name.asname] = name.name
                else:
                    root = name.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = \
                    f"{node.module}.{name.name}"
    return aliases


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RuleInfo:
    """One registered rule."""

    code: str
    name: str
    description: str
    hint: str
    #: ``check(ctx) -> iterable[Finding]`` for file rules,
    #: ``check(root) -> iterable[Finding]`` for project rules.
    check: Callable[..., Iterable[Finding]]
    project: bool = False
    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()


_RULES: dict[str, RuleInfo] = {}


def rule(code: str, name: str, *, hint: str, project: bool = False,
         include: tuple[str, ...] = ("*",),
         exclude: tuple[str, ...] = ()):
    """Register a rule function under ``code`` (its docstring documents it)."""
    def deco(fn: Callable[..., Iterable[Finding]]):
        if code in _RULES:
            raise ValueError(f"rule {code} registered twice")
        _RULES[code] = RuleInfo(
            code=code, name=name,
            description=(fn.__doc__ or "").strip().splitlines()[0],
            hint=hint, check=fn, project=project,
            include=include, exclude=exclude,
        )
        return fn
    return deco


def _ensure_loaded() -> None:
    """Import the rule modules so their decorators have run."""
    import tools.reprolint.rules_consistency  # noqa: F401
    import tools.reprolint.rules_determinism  # noqa: F401
    import tools.reprolint.rules_hygiene      # noqa: F401
    import tools.reprolint.rules_schema       # noqa: F401


def all_rules() -> dict[str, RuleInfo]:
    """Every registered rule, including the meta codes, keyed by code."""
    _ensure_loaded()
    catalogue = dict(_RULES)
    for code, (name, desc) in _META_RULES.items():
        catalogue.setdefault(code, RuleInfo(
            code=code, name=name, description=desc,
            hint="fix the pragma rather than the code", check=lambda: (),
        ))
    return dict(sorted(catalogue.items()))


#: The meta rules are implemented by the engine itself (they concern
#: pragmas, not code), but they appear in the catalogue like any other.
_META_RULES = {
    "RPL001": ("bad-pragma",
               "a `# reprolint:` comment does not parse"),
    "RPL002": ("suppression-needs-reason",
               "a suppression carries no (reason)"),
    "RPL003": ("suppression-unknown-code",
               "a suppression names a rule code that does not exist"),
    "RPL004": ("unused-suppression",
               "a suppression matched no finding on its line"),
}


def _in_scope(relpath: str, info: RuleInfo,
              scopes: dict[str, dict] | None) -> bool:
    include, exclude = info.include, info.exclude
    if scopes and info.code in scopes:
        include = tuple(scopes[info.code].get("include", include))
        exclude = tuple(scopes[info.code].get("exclude", exclude))
    if not any(fnmatch(relpath, pat) for pat in include):
        return False
    return not any(fnmatch(relpath, pat) for pat in exclude)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def _parse_suppressions(relpath: str, text: str,
                        known_codes: set[str],
                        ) -> tuple[list[Suppression], list[Finding]]:
    suppressions: list[Suppression] = []
    meta: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return [], []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        body = match.group("body").strip()
        parsed = _OK_RE.match(body)
        if parsed is None:
            meta.append(Finding(
                relpath, line, "RPL001",
                f"unparseable reprolint pragma {body!r}",
                "write `# reprolint: ok RPL### (reason)`",
            ))
            continue
        codes = tuple(c.strip()
                      for c in parsed.group("codes").split(","))
        reason = (parsed.group("reason") or "").strip()
        if not reason:
            meta.append(Finding(
                relpath, line, "RPL002",
                f"suppression of {', '.join(codes)} carries no reason",
                "append `(why this is safe)` to the pragma",
            ))
            continue
        bad = [c for c in codes
               if c not in known_codes or c in META_CODES]
        if bad:
            meta.append(Finding(
                relpath, line, "RPL003",
                f"suppression names unknown or unsuppressible "
                f"code(s) {', '.join(bad)}",
                "check the rule catalogue in docs/architecture.md",
            ))
            continue
        suppressions.append(Suppression(
            line=line, codes=codes, reason=reason,
            file_wide=bool(parsed.group("scope")),
        ))
    return suppressions, meta


def _apply_suppressions(findings: list[Finding],
                        suppressions: list[Suppression],
                        ) -> list[Finding]:
    kept: list[Finding] = []
    for finding in findings:
        suppressed = False
        for sup in suppressions:
            if finding.code not in sup.codes:
                continue
            if sup.file_wide or sup.line == finding.line:
                sup.used.add(finding.code)
                suppressed = True
        if not suppressed:
            kept.append(finding)
    return kept


def _unused_suppressions(relpath: str,
                         suppressions: list[Suppression]) -> list[Finding]:
    out = []
    for sup in suppressions:
        dead = [c for c in sup.codes if c not in sup.used]
        if dead:
            out.append(Finding(
                relpath, sup.line, "RPL004",
                f"suppression of {', '.join(dead)} matched no finding",
                "delete the stale pragma",
            ))
    return out


# ----------------------------------------------------------------------
# Driving
# ----------------------------------------------------------------------
def lint_source(text: str, relpath: str, *,
                scopes: dict[str, dict] | None = None,
                codes: tuple[str, ...] | None = None) -> list[Finding]:
    """Lint one in-memory module with the file rules (fixture tests).

    ``codes`` restricts to specific rules; ``scopes`` overrides the
    per-rule path scoping (defaults to each rule's declaration, *not*
    the repo config — pass ``tools.reprolint.config.RULE_SCOPES`` for
    production behaviour).
    """
    _ensure_loaded()
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return [Finding(relpath, exc.lineno or 1, "RPL001",
                        f"syntax error: {exc.msg}", "fix the file")]
    ctx = FileContext(relpath, text, tree)
    findings: list[Finding] = []
    for info in _RULES.values():
        if info.project:
            continue
        if codes is not None and info.code not in codes:
            continue
        if not _in_scope(relpath, info, scopes):
            continue
        findings.extend(info.check(ctx))
    known = set(all_rules())
    suppressions, meta = _parse_suppressions(relpath, text, known)
    findings = _apply_suppressions(findings, suppressions)
    findings.extend(meta)
    findings.extend(_unused_suppressions(relpath, suppressions))
    return sorted(findings, key=lambda f: (f.path, f.line, f.code))


def _iter_py_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    yield sub


def run_lint(paths: Iterable[str | Path], *, root: str | Path,
             scopes: dict[str, dict] | None = None,
             project_rules: bool = True) -> list[Finding]:
    """Lint the given files/trees; returns every surviving finding.

    File rules run over each ``*.py`` beneath ``paths``; project rules
    (the schema manifest, registry consistency) run once against
    ``root`` when ``project_rules`` is true, and their findings pass
    through the same per-line suppression filter as everything else.
    """
    _ensure_loaded()
    root = Path(root).resolve()
    known = set(all_rules())
    findings: list[Finding] = []
    tables: dict[str, list[Suppression]] = {}
    per_file: dict[str, list[Finding]] = {}
    for file in _iter_py_files(Path(p) if Path(p).is_absolute()
                               else root / p for p in paths):
        resolved = file.resolve()
        try:
            relpath = resolved.relative_to(root).as_posix()
        except ValueError:
            raise ValueError(
                f"{file} lies outside the lint root {root}; "
                "pass --root or only paths beneath it") from None
        text = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            findings.append(Finding(relpath, exc.lineno or 1, "RPL001",
                                    f"syntax error: {exc.msg}",
                                    "fix the file"))
            continue
        ctx = FileContext(relpath, text, tree)
        raw: list[Finding] = []
        for info in _RULES.values():
            if info.project or not _in_scope(relpath, info, scopes):
                continue
            raw.extend(info.check(ctx))
        suppressions, meta = _parse_suppressions(relpath, text, known)
        per_file[relpath] = _apply_suppressions(raw, suppressions)
        findings.extend(meta)
        tables[relpath] = suppressions
    if project_rules:
        project_findings: list[Finding] = []
        for info in _RULES.values():
            if info.project:
                project_findings.extend(info.check(root))
        # Project findings anchor to real lines, so the same suppression
        # tables apply; a finding in a file outside the scanned paths
        # gets its table parsed on demand (pragma hygiene and unused
        # checks stay with the scan, since file rules never ran there).
        by_path: dict[str, list[Finding]] = {}
        for finding in project_findings:
            by_path.setdefault(finding.path, []).append(finding)
        for relpath, group in by_path.items():
            sups = tables.get(relpath)
            if sups is None:
                sups = _file_suppressions(root, relpath, known)
            per_file.setdefault(relpath, []).extend(
                _apply_suppressions(group, sups))
    for relpath, kept in per_file.items():
        findings.extend(kept)
    for relpath, suppressions in tables.items():
        findings.extend(_unused_suppressions(relpath, suppressions))
    return sorted(findings, key=lambda f: (f.path, f.line, f.code))


def _file_suppressions(root: Path, relpath: str,
                       known: set[str]) -> list[Suppression]:
    """Suppression table of a file that was not part of the scan."""
    path = root / relpath
    if not path.is_file():
        return []
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return []
    suppressions, _ = _parse_suppressions(relpath, text, known)
    return suppressions
