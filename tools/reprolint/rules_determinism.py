"""RPL1xx: determinism rules.

The simulator's headline contract is bit-exactness: resume ≡
uninterrupted run, closed arrivals ≡ ``round_makespan``, same seed ≡
same bytes.  These rules ban the ambient-nondeterminism entry points
(wall clock, OS entropy, the global ``random`` module, unordered
iteration) from the code paths where order and entropy are part of
the contract.

All name matching goes through the file's import-alias table
(:meth:`FileContext.dotted`): ``self._rng.random()`` never fires
because ``self._rng`` is not an imported name.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Finding, rule

#: Ambient wall-clock / entropy sources: never acceptable anywhere in
#: the repo — simulated time comes from the cost model, entropy from
#: seeded RNGs.
_BANNED_EVERYWHERE = {
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom",
    "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
}

#: Host timers: fine in benchmarks (they measure the host), banned in
#: the simulator proper (RULE_SCOPES limits this rule to ``src/*``).
_HOST_TIMERS = {
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.sleep",
}

#: ``random`` attributes that do *not* touch the shared global RNG.
_GLOBAL_RNG_SAFE = {
    "random.Random", "random.SystemRandom", "random.seed",
    "random.getstate", "random.setstate",
}


def _resolved_loads(ctx: FileContext) -> Iterator[tuple[ast.AST, str]]:
    """Yield ``(node, dotted_name)`` for every resolvable value read."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Attribute, ast.Name)) and \
                isinstance(node.ctx, ast.Load):
            name = ctx.dotted(node)
            if name is not None:
                yield node, name


@rule("RPL101", "wall-clock-entropy",
      hint="simulated time lives in the cost model; entropy comes from "
           "repro.rng seeds")
def check_wall_clock(ctx: FileContext) -> Iterator[Finding]:
    """Ban wall-clock and OS-entropy sources repo-wide."""
    for node, name in _resolved_loads(ctx):
        if name in _BANNED_EVERYWHERE or name.startswith("secrets."):
            yield Finding(ctx.path, node.lineno, "RPL101",
                          f"nondeterministic source `{name}`")


@rule("RPL102", "host-timer", include=("src/*",),
      hint="simulation code must charge simulated time, not read the "
           "host clock")
def check_host_timer(ctx: FileContext) -> Iterator[Finding]:
    """Ban host timers inside the simulator (benchmarks may time the host)."""
    for node, name in _resolved_loads(ctx):
        if name in _HOST_TIMERS:
            yield Finding(ctx.path, node.lineno, "RPL102",
                          f"host timer `{name}` in simulation code")


@rule("RPL103", "rng-construction",
      include=("src/*",), exclude=("src/repro/rng.py",),
      hint="construct RNGs via repro.rng.make_rng / substream so every "
           "stream is seeded and labelled")
def check_rng_construction(ctx: FileContext) -> Iterator[Finding]:
    """Only repro/rng.py may touch the ``random`` module inside src/."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.dotted(node.func)
        if name is not None and name.startswith("random."):
            yield Finding(ctx.path, node.lineno, "RPL103",
                          f"direct `{name}(...)` call outside repro.rng")


@rule("RPL104", "unseeded-randomness",
      include=("benchmarks/*", "tests/*"),
      hint="seed explicitly: `random.Random(seed)`; never the shared "
           "module-level RNG")
def check_unseeded(ctx: FileContext) -> Iterator[Finding]:
    """Benchmarks/tests must not lean on the global or unseeded RNG."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.dotted(node.func)
        if name is None or not name.startswith("random."):
            continue
        if name == "random.Random" and not node.args and not node.keywords:
            yield Finding(ctx.path, node.lineno, "RPL104",
                          "`random.Random()` without a seed")
        elif name == "random.seed" and not node.args:
            yield Finding(ctx.path, node.lineno, "RPL104",
                          "`random.seed()` without a seed reseeds from "
                          "OS entropy")
        elif name not in _GLOBAL_RNG_SAFE:
            yield Finding(ctx.path, node.lineno, "RPL104",
                          f"`{name}(...)` uses the shared module-level "
                          "RNG")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@rule("RPL105", "set-iteration",
      hint="iterate `sorted(...)` of the set, or keep a list for order")
def check_set_iteration(ctx: FileContext) -> Iterator[Finding]:
    """Flag direct iteration over set displays/constructors."""
    for node in ast.walk(ctx.tree):
        iters: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it):
                yield Finding(ctx.path, it.lineno, "RPL105",
                              "iteration over a set is unordered")


def _is_values_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "values"
            and not node.args and not node.keywords)


def _values_iter(node: ast.expr) -> bool:
    """True when an iterable expression is ``<x>.values()`` (or a
    genexp/comprehension drawing from one)."""
    if _is_values_call(node):
        return True
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        return any(_is_values_call(gen.iter) for gen in node.generators)
    return False


@rule("RPL106", "values-accumulation",
      include=("src/repro/alloc/*", "src/repro/backends/*"),
      hint="iterate `sorted(d)` keys (or another explicit order) so the "
           "reduction order is part of the contract")
def check_values_accumulation(ctx: FileContext) -> Iterator[Finding]:
    """Flag reductions over ``dict.values()`` in accounting modules.

    Insertion order is deterministic *today*, but it is an accident of
    mutation history; the bit-exactness contract wants reductions in an
    order the reader can state.  ``sorted(...)`` wrappers are exempt
    because they impose one.
    """
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "sum" and node.args:
            if _values_iter(node.args[0]):
                yield Finding(ctx.path, node.lineno, "RPL106",
                              f"`{node.func.id}(...)` over `.values()` "
                              "has no stated order")
        elif isinstance(node, ast.Call) and \
                ctx.dotted(node.func) == "math.fsum" and node.args:
            if _values_iter(node.args[0]):
                yield Finding(ctx.path, node.lineno, "RPL106",
                              "`math.fsum(...)` over `.values()` has no "
                              "stated order")
        elif isinstance(node, (ast.For, ast.AsyncFor)) and \
                _is_values_call(node.iter):
            if any(isinstance(sub, ast.AugAssign)
                   for stmt in node.body for sub in ast.walk(stmt)):
                yield Finding(ctx.path, node.iter.lineno, "RPL106",
                              "accumulation loop over `.values()` has "
                              "no stated order")
