"""RPL4xx: performance/robustness hygiene.

RPL401 (mutable default arguments) is a correctness trap everywhere.
RPL402 keeps ``slots=True`` on the hot-path dataclasses — the
structures and per-IO/per-window objects the simulator allocates by
the million — where instance dicts cost real memory and attribute
typos silently create new state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import FileContext, Finding, rule

_MUTABLE_CALLS = ("list", "dict", "set", "bytearray")


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS)


@rule("RPL401", "mutable-default-arg",
      hint="default to None and create the container in the body, or "
           "use dataclasses.field(default_factory=...)")
def check_mutable_defaults(ctx: FileContext) -> Iterator[Finding]:
    """One shared instance backs every call: flag `def f(x=[])`."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + \
            [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                yield Finding(ctx.path, default.lineno, "RPL401",
                              f"mutable default argument in "
                              f"`{node.name}(...)`")


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return deco
    return None


def _has_slots_true(deco: ast.expr) -> bool:
    if not isinstance(deco, ast.Call):
        return False
    for kw in deco.keywords:
        if kw.arg == "slots" and \
                isinstance(kw.value, ast.Constant) and \
                kw.value.value is True:
            return True
    return False


def _defines_dunder_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and \
                    stmt.target.id == "__slots__":
                return True
    return False


def _base_names(node: ast.ClassDef) -> set[str]:
    names = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


@rule("RPL402", "hot-path-slots",
      include=("src/repro/struct/*", "src/repro/alloc/*",
               "src/repro/disk/*"),
      hint="add slots=True to @dataclass (or __slots__ on a plain "
           "struct class)")
def check_slots(ctx: FileContext) -> Iterator[Finding]:
    """Hot-path classes must not carry per-instance dicts.

    Dataclasses in the hot directories need ``slots=True``; plain
    classes in ``src/repro/struct/`` (the pure data structures) need an
    explicit ``__slots__``.  Exceptions, Protocols, and enums are
    exempt — they are not allocated per IO.
    """
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = _base_names(node)
        if bases & {"Exception", "Protocol", "Enum", "IntEnum"} or \
                any(b.endswith("Error") for b in bases):
            continue
        deco = _dataclass_decorator(node)
        if deco is not None:
            if not _has_slots_true(deco):
                yield Finding(ctx.path, node.lineno, "RPL402",
                              f"dataclass `{node.name}` on a hot path "
                              "lacks slots=True")
        elif ctx.path.startswith("src/repro/struct/") and \
                not _defines_dunder_slots(node):
            yield Finding(ctx.path, node.lineno, "RPL402",
                          f"structure class `{node.name}` lacks "
                          "__slots__")
