"""Project policy: rule scopes, version guards, and manifest coverage.

The engine and rule modules are generic; this file is where the
*project* decides which paths each rule patrols and which classes form
the pickled/snapshot-framed state surface.  New modules that pickle
state must be added to :data:`MANIFEST_COVERAGE` (RPL202 reminds you
when a dataclass appears in a covered module without being listed).
"""

from __future__ import annotations

#: Repo-relative path of the checked-in schema manifest.
MANIFEST_PATH = "tools/reprolint/schema_manifest.json"

#: Format tag inside the manifest file itself (``/2``: class entries
#: grew ``slots``/``frozen``/``hooks`` — the pickle-wire-format
#: modifiers — alongside ``fields``).
MANIFEST_FORMAT = "reprolint-schema-manifest/2"

#: Per-rule path scoping (fnmatch over repo-relative posix paths; ``*``
#: crosses ``/``).  Rules not listed here use their declared defaults.
#: Rationale for each scope lives in docs/architecture.md.
RULE_SCOPES: dict[str, dict[str, list[str]]] = {
    # Host timers are fine in benchmarks (they time the *host*); inside
    # the simulator, simulated time is the only clock.
    "RPL102": {"include": ["src/*"]},
    # RNG construction is the business of repro/rng.py alone.
    "RPL103": {"include": ["src/*"], "exclude": ["src/repro/rng.py"]},
    # src/ may not construct RNGs at all (RPL103), so the unseeded-use
    # rule patrols the driver code.
    "RPL104": {"include": ["benchmarks/*", "tests/*"]},
    # Accumulation order is part of the bit-exactness contract only in
    # the accounting/cost paths.
    "RPL106": {"include": ["src/repro/alloc/*", "src/repro/backends/*"]},
    # Hot-path allocation: structures and per-IO objects.
    "RPL402": {"include": [
        "src/repro/struct/*", "src/repro/alloc/*", "src/repro/disk/*",
    ]},
}

#: Version guard tokens: name -> module that must define it at top
#: level.  The manifest records each token's value; RPL201 compares.
VERSION_TOKENS: dict[str, str] = {
    "CHECKPOINT_SCHEMA": "src/repro/core/experiment.py",
    "SNAPSHOT_VERSION": "src/repro/persist/snapshot.py",
    "CHECKPOINT_VERSION": "src/repro/persist/checkpoint.py",
}

#: The pickled-state surface.  ``state.pkl`` pickles the whole store,
#: workload state, and result (see ``ExperimentRunner._save_checkpoint``),
#: so every class listed under a CHECKPOINT_SCHEMA module can end up on
#: disk; JournalState is framed by the RJLS codec (SNAPSHOT_VERSION) and
#: Checkpoint by the manifest format (CHECKPOINT_VERSION).
#:
#: ``track``: shape changes require a guard bump.  ``transient``:
#: dataclasses in the module that never reach a checkpoint (reports,
#: per-IO scratch) — listed so RPL202 knows they are deliberate.
MANIFEST_COVERAGE: dict[str, dict] = {
    "src/repro/core/results.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["AgeSample", "RunResult"],
    },
    "src/repro/core/workload.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["ConstantSize", "UniformSize", "WorkloadSpec",
                  "WorkloadState"],
    },
    "src/repro/core/storage_age.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["StorageAgeTracker"],
    },
    "src/repro/disk/iostats.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["WindowStats", "IoStats"],
    },
    "src/repro/disk/schedule.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["SchedulerWindow", "ShardScheduler"],
    },
    "src/repro/disk/events.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["ArrivalSpec", "LatencyHistogram", "EventRequest",
                  "EventWindow", "EventScheduler"],
    },
    "src/repro/disk/faults.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["FaultClause", "FaultProfile", "CrashClock",
                  "DeviceFaults"],
    },
    "src/repro/disk/policy.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["DevicePolicy"],
    },
    "src/repro/disk/geometry.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["Zone", "DiskGeometry"],
    },
    "src/repro/disk/device.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["BlockDevice"],
        "transient": ["IoRequest"],
    },
    "src/repro/backends/spec.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["StoreSpec"],
    },
    "src/repro/scenario/spec.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["TenantProfile", "ScenarioSpec"],
        "transient": ["_Preset"],
    },
    "src/repro/scenario/engine.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["TenantState", "ScenarioState"],
    },
    "src/repro/backends/costmodel.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["CostModel"],
    },
    "src/repro/backends/base.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["MeasurementWindows"],
        "transient": ["ObjectMeta", "StoreStats"],
    },
    "src/repro/backends/gfs_backend.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["_Record", "_Chunk", "GfsChunkBackend"],
    },
    "src/repro/backends/lfs_backend.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["_Segment", "_ObjectLoc", "LfsBackend"],
    },
    "src/repro/backends/sharded.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["ShardedStore"],
        "transient": ["RebalanceReport", "RebuildReport"],
    },
    "src/repro/fs/filetable.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["FileRecord", "FileTable"],
    },
    "src/repro/fs/journal.py": {
        "guard": "SNAPSHOT_VERSION",
        "track": ["JournalState"],
        "transient": ["RecoveryReport"],
    },
    "src/repro/fs/filesystem.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["FsConfig"],
    },
    "src/repro/alloc/extent.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["Extent"],
    },
    "src/repro/db/blobstore.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["_BlobRecord"],
    },
    "src/repro/db/bufferpool.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["_Frame"],
    },
    "src/repro/db/wal.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["GhostRecord"],
        "transient": ["WalRecoveryReport"],
    },
    "src/repro/db/database.py": {
        "guard": "CHECKPOINT_SCHEMA",
        "track": ["DbConfig"],
    },
    "src/repro/persist/checkpoint.py": {
        "guard": "CHECKPOINT_VERSION",
        "track": ["Checkpoint"],
    },
}
