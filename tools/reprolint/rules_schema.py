"""RPL2xx: pickled-state schema discipline.

``run-checkpoint/N`` (``CHECKPOINT_SCHEMA``) promises that a resumed
run sees exactly the state an uninterrupted run would have; the RFXS/
RJLS codecs make the same promise via ``SNAPSHOT_VERSION``.  Those
promises break silently when someone adds or renames a field on a
pickled class without bumping the guard — old checkpoints unpickle
into objects with missing attributes and the failure surfaces rounds
later.

The defence is a checked-in manifest
(``tools/reprolint/schema_manifest.json``) recording, for every class
on the pickled-state surface (:data:`~tools.reprolint.config.
MANIFEST_COVERAGE`), its field names and declared defaults — plus the
pickle-wire-format modifiers that change layout without touching a
field (``slots=True``/``frozen=True`` on the ``@dataclass`` decorator,
custom ``__getstate__``/``__setstate__``/``__reduce__`` hooks) — and
the guard-token values current when it was generated.  RPL201 rebuilds the
shapes from the AST and compares:

* shapes changed while the guard value is unchanged → **the** error
  this family exists for: bump the guard, then regenerate;
* shapes or guards changed together → stale manifest: regenerate via
  ``python -m tools.reprolint manifest --write`` (a deliberate act
  that lands in the diff for review).

RPL202 catches surface growth: a dataclass added to a covered module
must be listed as tracked or explicitly transient.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterator

from tools.reprolint import config
from tools.reprolint.engine import Finding, rule

# ----------------------------------------------------------------------
# Shape extraction
# ----------------------------------------------------------------------
def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None)
        if name == "dataclass":
            return True
    return False


def _dataclass_options(node: ast.ClassDef) -> dict[str, bool]:
    """``slots``/``frozen`` flags from the ``@dataclass(...)`` call.

    Both change the pickle wire format — ``slots=True`` moves state
    from ``__dict__`` to slot tuples and ``frozen=True`` swaps the
    restore path to ``object.__setattr__`` — so they are part of the
    recorded shape even though no field changes.
    """
    opts = {"slots": False, "frozen": False}
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        target = deco.func
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None)
        if name != "dataclass":
            continue
        for kw in deco.keywords:
            if kw.arg in opts and isinstance(kw.value, ast.Constant):
                opts[kw.arg] = bool(kw.value.value)
    return opts


#: Dunders that replace or reshape the default pickle protocol.
_PICKLE_HOOKS = ("__getstate__", "__setstate__", "__reduce__",
                 "__reduce_ex__", "__getnewargs__", "__getnewargs_ex__")


def _pickle_hooks(node: ast.ClassDef) -> list[str]:
    defined = {stmt.name for stmt in node.body
               if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))}
    return sorted(name for name in _PICKLE_HOOKS if name in defined)


def _dataclass_fields(node: ast.ClassDef) -> list[list]:
    fields: list[list] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            if ast.unparse(stmt.annotation).startswith("ClassVar"):
                continue
            default = ast.unparse(stmt.value) if stmt.value else None
            fields.append([stmt.target.id, default])
    return fields


def _slots_fields(node: ast.ClassDef) -> list[list] | None:
    for stmt in node.body:
        value = None
        if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__"
                for t in stmt.targets):
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name) and \
                stmt.target.id == "__slots__":
            value = stmt.value
        if isinstance(value, (ast.Tuple, ast.List)):
            return [[elt.value, None] for elt in value.elts
                    if isinstance(elt, ast.Constant)]
    return None


def _init_fields(node: ast.ClassDef) -> list[list]:
    """`self.x = ...` targets of __init__/__post_init__, in order."""
    fields: list[list] = []
    seen: set[str] = set()
    for stmt in node.body:
        if not (isinstance(stmt, ast.FunctionDef)
                and stmt.name in ("__init__", "__post_init__")):
            continue
        for sub in ast.walk(stmt):
            targets: list[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                targets = [sub.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == "self" and \
                        target.attr not in seen:
                    seen.add(target.attr)
                    fields.append([target.attr, None])
    return fields


def _class_shape(node: ast.ClassDef) -> dict:
    """The pickle-relevant shape of one class, plus how it was derived.

    Beyond field names and defaults this records everything that can
    change the pickle wire format without touching a field: the
    ``slots``/``frozen`` decorator options and any custom pickle
    hooks (``__getstate__``/``__setstate__``/``__reduce__``…), so such
    changes also require a guard bump.
    """
    hooks = _pickle_hooks(node)
    if _is_dataclass(node):
        opts = _dataclass_options(node)
        return {"source": "dataclass", "fields": _dataclass_fields(node),
                "slots": opts["slots"], "frozen": opts["frozen"],
                "hooks": hooks}
    slots = _slots_fields(node)
    if slots is not None:
        return {"source": "slots", "fields": slots, "hooks": hooks}
    return {"source": "init", "fields": _init_fields(node), "hooks": hooks}


def _module_classes(root: Path, rel: str) -> dict[str, ast.ClassDef]:
    path = root / rel
    if not path.is_file():
        return {}
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:
        return {}
    return {node.name: node for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)}


def read_version_tokens(root: Path) -> dict[str, object]:
    """Current guard values (``CHECKPOINT_SCHEMA`` etc.) from the AST."""
    values: dict[str, object] = {}
    for token, rel in config.VERSION_TOKENS.items():
        path = root / rel
        if not path.is_file():
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in tree.body:
            if isinstance(node, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == token
                    for t in node.targets) and \
                    isinstance(node.value, ast.Constant):
                values[token] = node.value.value
    return values


def build_manifest(root: Path) -> dict:
    """The manifest document for the tree as it stands."""
    classes: dict[str, dict] = {}
    for rel, spec in sorted(config.MANIFEST_COVERAGE.items()):
        defined = _module_classes(root, rel)
        for name in spec.get("track", []):
            key = f"{rel}::{name}"
            if name not in defined:
                classes[key] = {"guard": spec["guard"], "missing": True}
                continue
            shape = _class_shape(defined[name])
            classes[key] = {"guard": spec["guard"], **shape}
    return {
        "manifest_schema": config.MANIFEST_FORMAT,
        "versions": read_version_tokens(root),
        "classes": classes,
    }


def load_manifest(root: Path) -> dict | None:
    path = root / config.MANIFEST_PATH
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        return None


def manifest_diff(stored: dict, current: dict) -> list[tuple[str, str]]:
    """``(class key, what changed)`` pairs, empty when in sync."""
    out: list[tuple[str, str]] = []
    stored_classes = stored.get("classes", {})
    current_classes = current.get("classes", {})
    for key in sorted(set(stored_classes) - set(current_classes)):
        out.append((key, "tracked class vanished"))
    for key in sorted(set(current_classes) - set(stored_classes)):
        out.append((key, "newly tracked class"))
    for key in sorted(set(stored_classes) & set(current_classes)):
        if stored_classes[key] != current_classes[key]:
            summary = _shape_summary(stored_classes[key],
                                     current_classes[key])
            out.append((key, f"shape changed ({summary})"))
    return out


def _shape_summary(was_cls, now_cls) -> str:
    was_cls, now_cls = was_cls or {}, now_cls or {}
    was, now = was_cls.get("fields"), now_cls.get("fields")
    if was is None or now is None:
        return "field extraction changed"
    was_names = {f[0] for f in was}
    now_names = {f[0] for f in now}
    bits = []
    if now_names - was_names:
        bits.append("added " + ", ".join(sorted(now_names - was_names)))
    if was_names - now_names:
        bits.append("removed " + ", ".join(sorted(was_names - now_names)))
    for flag in ("slots", "frozen"):
        if was_cls.get(flag) != now_cls.get(flag):
            bits.append(f"{flag}={was_cls.get(flag)} -> "
                        f"{now_cls.get(flag)}")
    if was_cls.get("hooks") != now_cls.get("hooks"):
        bits.append(f"pickle hooks {was_cls.get('hooks')} -> "
                    f"{now_cls.get('hooks')}")
    if not bits:
        bits.append("defaults changed")
    return "; ".join(bits)


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
_REGEN = "regenerate via `python -m tools.reprolint manifest --write`"


def _class_line(root: Path, key: str) -> tuple[str, int]:
    rel, _, name = key.partition("::")
    node = _module_classes(root, rel).get(name)
    return rel, node.lineno if node is not None else 1


@rule("RPL201", "schema-manifest-drift", project=True,
      hint="bump the guard version when pickled state changes shape, "
           "then regenerate the manifest")
def check_manifest(root: Path) -> Iterator[Finding]:
    """The checked-in schema manifest must match the tree."""
    stored = load_manifest(root)
    current = build_manifest(root)
    if stored is None:
        yield Finding(config.MANIFEST_PATH, 1, "RPL201",
                      "schema manifest missing or unreadable", _REGEN)
        return
    if stored.get("manifest_schema") != config.MANIFEST_FORMAT:
        yield Finding(config.MANIFEST_PATH, 1, "RPL201",
                      "schema manifest has an unknown format tag",
                      _REGEN)
        return
    stored_versions = stored.get("versions", {})
    current_versions = current["versions"]
    for key in sorted(set(stored.get("classes", {})) |
                      set(current["classes"])):
        stored_cls = stored.get("classes", {}).get(key)
        current_cls = current["classes"].get(key)
        if stored_cls == current_cls:
            continue
        guard = (current_cls or stored_cls or {}).get("guard")
        rel, line = _class_line(root, key)
        bumped = stored_versions.get(guard) != current_versions.get(guard)
        if current_cls is not None and \
                current_cls.get("missing"):
            yield Finding(rel, 1, "RPL201",
                          f"tracked class `{key}` not found; fix "
                          "MANIFEST_COVERAGE or the module", _REGEN)
        elif bumped:
            yield Finding(rel, line, "RPL201",
                          f"manifest stale for `{key}` ({guard} was "
                          "bumped)", _REGEN)
        else:
            diff = _shape_summary(stored_cls, current_cls)
            yield Finding(
                rel, line, "RPL201",
                f"pickled state of `{key}` changed ({diff}) without "
                f"bumping {guard}",
                f"bump {guard}, then {_REGEN}")
    for token in sorted(set(stored_versions) | set(current_versions)):
        if stored_versions.get(token) != current_versions.get(token):
            rel = config.VERSION_TOKENS.get(token, config.MANIFEST_PATH)
            yield Finding(rel, 1, "RPL201",
                          f"manifest records {token}="
                          f"{stored_versions.get(token)!r} but the tree "
                          f"has {current_versions.get(token)!r}", _REGEN)


@rule("RPL202", "unlisted-pickled-class", project=True,
      hint="list the class as tracked (shape-guarded) or transient "
           "(never checkpointed) in MANIFEST_COVERAGE")
def check_unlisted(root: Path) -> Iterator[Finding]:
    """Dataclasses in covered modules must be tracked or transient."""
    for rel, spec in sorted(config.MANIFEST_COVERAGE.items()):
        listed = set(spec.get("track", [])) | \
            set(spec.get("transient", []))
        for name, node in sorted(_module_classes(root, rel).items()):
            if name in listed or not _is_dataclass(node):
                continue
            yield Finding(rel, node.lineno, "RPL202",
                          f"dataclass `{name}` in a manifest-covered "
                          "module is neither tracked nor transient")
