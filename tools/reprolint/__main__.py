"""Command line for reprolint.

::

    python -m tools.reprolint src benchmarks tests      # lint
    python -m tools.reprolint --list-rules              # catalogue
    python -m tools.reprolint manifest                  # print manifest
    python -m tools.reprolint manifest --write          # regenerate

Exit status: 0 clean, 1 findings, 2 usage/manifest-guard errors.

``manifest --write`` is the *deliberate* regeneration path: it refuses
to write when a tracked class changed shape while its guard version
did not — that is exactly the situation RPL201 exists to fail — unless
``--allow-unbumped`` acknowledges it (e.g. fixing a typo in a default
that never shipped in a checkpoint).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.reprolint import config
from tools.reprolint.engine import all_rules, run_lint
from tools.reprolint.rules_schema import (
    build_manifest,
    load_manifest,
    manifest_diff,
)


def _repo_root() -> Path:
    # tools/reprolint/__main__.py -> repo root is two levels up.
    return Path(__file__).resolve().parent.parent.parent


def _cmd_lint(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Lint the tree against the repro invariant rules.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-project-rules", action="store_true",
                        help="skip cross-file rules (RPL2xx/RPL3xx)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: autodetected)")
    args = parser.parse_args(argv)
    if args.list_rules:
        for info in all_rules().values():
            kind = "project" if info.project else "file"
            print(f"{info.code}  {info.name:26s} [{kind}] "
                  f"{info.description}")
        return 0
    root = Path(args.root).resolve() if args.root else _repo_root()
    paths = args.paths or ["src"]
    try:
        findings = run_lint(paths, root=root, scopes=config.RULE_SCOPES,
                            project_rules=not args.no_project_rules)
    except ValueError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"reprolint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_manifest(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint manifest",
        description="Print or regenerate the pickled-state schema "
                    "manifest.")
    parser.add_argument("--write", action="store_true",
                        help=f"rewrite {config.MANIFEST_PATH}")
    parser.add_argument("--allow-unbumped", action="store_true",
                        help="write even when shapes changed without a "
                             "guard version bump")
    parser.add_argument("--root", default=None)
    args = parser.parse_args(argv)
    root = Path(args.root).resolve() if args.root else _repo_root()
    current = build_manifest(root)
    if not args.write:
        json.dump(current, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    stored = load_manifest(root)
    # A manifest in an older format diffs against every class whatever
    # the pickled state did; the format migration itself is the
    # deliberate act, so the unbumped-guard refusal only applies when
    # the stored manifest speaks the current format.
    if stored is not None and \
            stored.get("manifest_schema") == config.MANIFEST_FORMAT and \
            not args.allow_unbumped:
        unbumped = [
            token for token, value in
            stored.get("versions", {}).items()
            if current["versions"].get(token) == value
        ]
        blocking = [
            (key, what) for key, what in manifest_diff(stored, current)
            if stored.get("classes", {}).get(key, {}).get("guard")
            in unbumped
            and current.get("classes", {}).get(key, {}).get("guard")
            in unbumped
        ]
        if blocking:
            print("refusing to rewrite the manifest: pickled state "
                  "changed shape without a guard version bump:",
                  file=sys.stderr)
            for key, what in blocking:
                print(f"  {key}: {what}", file=sys.stderr)
            print("bump the guard (CHECKPOINT_SCHEMA / "
                  "SNAPSHOT_VERSION / CHECKPOINT_VERSION) first, or "
                  "pass --allow-unbumped.", file=sys.stderr)
            return 2
    path = root / config.MANIFEST_PATH
    path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"wrote {path.relative_to(root)} "
          f"({len(current['classes'])} classes)")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "manifest":
        return _cmd_manifest(argv[1:])
    return _cmd_lint(argv)


if __name__ == "__main__":
    sys.exit(main())
