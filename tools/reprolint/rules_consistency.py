"""RPL3xx: registry / spec / error-contract consistency.

These are *project* rules: they parse several files and cross-check
them, so they run once per lint against the repo root.  PR 7's review
caught a drifted composite-reset default by hand; RPL302/RPL303 make
that class of drift mechanical.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator

from tools.reprolint.engine import Finding, rule

_SPEC = "src/repro/backends/spec.py"
_ERRORS = "src/repro/errors.py"
_BACKENDS_DIR = "src/repro/backends"
_DOCS = ("README.md", "docs/architecture.md")


def _parse(root: Path, rel: str) -> ast.Module | None:
    path = root / rel
    if not path.is_file():
        return None
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError:
        return None


def _storespec_fields(tree: ast.Module) -> dict[str, int]:
    """StoreSpec's dataclass field names -> declaration line."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "StoreSpec":
            fields: dict[str, int] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and \
                        isinstance(stmt.target, ast.Name):
                    ann = ast.unparse(stmt.annotation)
                    if not ann.startswith("ClassVar"):
                        fields[stmt.target.id] = stmt.lineno
            return fields
    return {}


@rule("RPL301", "backend-undocumented", project=True,
      hint="add the backend name to README.md and "
           "docs/architecture.md when registering it")
def check_backends_documented(root: Path) -> Iterator[Finding]:
    """Every `@register_backend` name must appear in README and docs."""
    doc_text = {rel: (root / rel).read_text(encoding="utf-8")
                if (root / rel).is_file() else ""
                for rel in _DOCS}
    backends_dir = root / _BACKENDS_DIR
    if not backends_dir.is_dir():
        return
    for path in sorted(backends_dir.glob("*.py")):
        rel = path.relative_to(root).as_posix()
        tree = _parse(root, rel)
        if tree is None:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for deco in node.decorator_list:
                if not (isinstance(deco, ast.Call)
                        and isinstance(deco.func, ast.Name)
                        and deco.func.id == "register_backend"
                        and deco.args
                        and isinstance(deco.args[0], ast.Constant)
                        and isinstance(deco.args[0].value, str)):
                    continue
                name = deco.args[0].value
                pattern = re.compile(rf"\b{re.escape(name)}\b")
                missing = [d for d, text in doc_text.items()
                           if not pattern.search(text)]
                if missing:
                    yield Finding(
                        rel, deco.lineno, "RPL301",
                        f"backend `{name}` is registered but not "
                        f"mentioned in {', '.join(missing)}")


def _parse_assigned_keys(tree: ast.Module) -> tuple[set[str], int]:
    """Keys `StoreSpec.parse` can set: the `fields` literal + every
    `fields["..."]` subscript store + `fields.setdefault` source."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "parse":
            keys: set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name) and \
                                target.id == "fields" and \
                                isinstance(sub.value, ast.Dict):
                            keys.update(
                                k.value for k in sub.value.keys
                                if isinstance(k, ast.Constant))
                        elif isinstance(target, ast.Subscript) and \
                                isinstance(target.value, ast.Name) and \
                                target.value.id == "fields" and \
                                isinstance(target.slice, ast.Constant):
                            keys.add(target.slice.value)
            # `fields.setdefault(key, value)` over **defaults makes every
            # remaining field reachable from parse's keyword defaults.
            wildcard = any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "setdefault"
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == "fields"
                for sub in ast.walk(node))
            return keys, node.lineno if not wildcard else -node.lineno
    return set(), 0


@rule("RPL302", "spec-parse-coverage", project=True,
      hint="a new StoreSpec field needs a to_dict entry and a parse "
           "clause (and usually a docs line)")
def check_spec_coverage(root: Path) -> Iterator[Finding]:
    """`StoreSpec.to_dict`/`parse` must cover exactly the declared fields."""
    tree = _parse(root, _SPEC)
    if tree is None:
        return
    fields = _storespec_fields(tree)
    if not fields:
        yield Finding(_SPEC, 1, "RPL302", "StoreSpec not found")
        return
    # to_dict: the returned dict literal's keys.
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "to_dict":
            returned: set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Return) and \
                        isinstance(sub.value, ast.Dict):
                    returned = {k.value for k in sub.value.keys
                                if isinstance(k, ast.Constant)}
            for name in sorted(set(fields) - returned):
                yield Finding(_SPEC, fields[name], "RPL302",
                              f"field `{name}` missing from "
                              "StoreSpec.to_dict")
            for name in sorted(returned - set(fields)):
                yield Finding(_SPEC, node.lineno, "RPL302",
                              f"StoreSpec.to_dict emits `{name}` which "
                              "is not a field")
    parse_keys, parse_line = _parse_assigned_keys(tree)
    wildcard = parse_line < 0
    for name in sorted(parse_keys - set(fields)):
        yield Finding(_SPEC, abs(parse_line), "RPL302",
                      f"StoreSpec.parse assigns unknown field `{name}`")
    if not wildcard:
        for name in sorted(set(fields) - parse_keys):
            yield Finding(_SPEC, fields[name], "RPL302",
                          f"field `{name}` not settable from "
                          "StoreSpec.parse")


@rule("RPL303", "composite-reset-fields", project=True,
      hint="_COMPOSITE_RESETS must name real StoreSpec fields (it "
           "resolves their defaults from the dataclass)")
def check_composite_resets(root: Path) -> Iterator[Finding]:
    """String constants in `_COMPOSITE_RESETS` must be StoreSpec fields."""
    tree = _parse(root, _SPEC)
    if tree is None:
        return
    fields = set(_storespec_fields(tree))
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "_COMPOSITE_RESETS"
                for t in node.targets):
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Constant) and \
                        isinstance(sub.value, str) and \
                        sub.value not in fields:
                    yield Finding(
                        _SPEC, sub.lineno, "RPL303",
                        f"_COMPOSITE_RESETS names `{sub.value}`, not a "
                        "StoreSpec field")


def _device_error_closure(tree: ast.Module) -> dict[str, ast.ClassDef]:
    """Classes in errors.py descending from DeviceError (inclusive)."""
    classes = {node.name: node for node in ast.walk(tree)
               if isinstance(node, ast.ClassDef)}
    closure: dict[str, ast.ClassDef] = {}
    changed = True
    while changed:
        changed = False
        for name, node in classes.items():
            if name in closure:
                continue
            bases = {b.id for b in node.bases
                     if isinstance(b, ast.Name)}
            if name == "DeviceError" or bases & set(closure):
                closure[name] = node
                changed = True
    return closure


@rule("RPL304", "device-error-contract", project=True,
      hint="declare device-fault exception types in repro/errors.py "
           "with a docstring stating when they are raised")
def check_device_errors(root: Path) -> Iterator[Finding]:
    """DeviceError subclasses live in errors.py and document their contract."""
    tree = _parse(root, _ERRORS)
    if tree is None:
        return
    closure = _device_error_closure(tree)
    for name, node in sorted(closure.items()):
        if ast.get_docstring(node) is None:
            yield Finding(_ERRORS, node.lineno, "RPL304",
                          f"device error `{name}` has no docstring "
                          "stating its contract")
    src = root / "src"
    if not src.is_dir():
        return
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel == _ERRORS or "__pycache__" in path.parts:
            continue
        tree = _parse(root, rel)
        if tree is None:
            continue
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = {b.id for b in node.bases
                     if isinstance(b, ast.Name)}
            if bases & set(closure):
                yield Finding(rel, node.lineno, "RPL304",
                              f"`{node.name}` subclasses a device "
                              "error outside repro/errors.py")
