"""Repo tooling: static checks that keep the simulator's contracts honest.

``tools.reprolint`` is the project linter (see its package docstring);
``tools/check_docs.py`` is the markdown link + rule-catalogue checker.
Everything in here is stdlib-only and independent of ``repro`` — the
checks parse source, they never import the simulator.
"""
