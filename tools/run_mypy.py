#!/usr/bin/env python3
"""Run mypy with the repo config, skipping cleanly when absent.

The dev container does not ship mypy and the project installs nothing
at lint time, so this wrapper exits 0 with a notice when the import
fails; CI installs mypy and gets the real check.  Exit status is
mypy's own otherwise.
"""

from __future__ import annotations

import subprocess
import sys


def main() -> int:
    try:
        import mypy  # noqa: F401
    except ModuleNotFoundError:
        print("run_mypy: mypy is not installed; skipping "
              "(CI runs the real check)")
        return 0
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
    )
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
