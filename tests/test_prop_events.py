"""Property suite tying the event model to the PR 5 makespan model.

The contract the tentpole rests on:

* **Reduction** — with closed-round arrivals (and therefore no
  cross-round queueing), the event scheduler's wall time equals the
  dispatch-round makespan **to the float** for every lane vector and
  parallelism cap; ``parallelism=1`` equals the serial sum exactly.
* **Conservation** — the queue model never creates or destroys work:
  for any generated workload interleaving, a ``queue=event`` store
  and its ``queue=round`` twin see byte-identical per-device IoStats
  (the event layer re-times requests, it does not issue different
  I/O); after a drain, ``submitted == completed ==`` the histogram's
  sample count, and summed lane time matches the devices' clocks.
* **Monotone percentiles** — p50 ≤ p95 ≤ p99 ≤ max sojourn for any
  recorded sample set.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.registry import build_store
from repro.backends.spec import StoreSpec
from repro.disk.events import EventScheduler, LatencyHistogram
from repro.disk.schedule import ShardScheduler, round_makespan
from repro.units import KB, MB

lane_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
              allow_infinity=False),
    min_size=0, max_size=16,
)

REL_EPS = 1e-9


# ----------------------------------------------------------------------
# Reduction: closed-mode event wall == round makespan, exactly
# ----------------------------------------------------------------------
@given(rounds=st.lists(lane_vectors, min_size=0, max_size=8),
       parallelism=st.integers(0, 20),
       overhead=st.floats(min_value=0.0, max_value=0.5))
@settings(max_examples=200, deadline=None)
def test_closed_event_model_reduces_to_makespan_exactly(rounds,
                                                        parallelism,
                                                        overhead):
    event = EventScheduler(16, parallelism=parallelism,
                           dispatch_overhead_s=overhead)
    base = ShardScheduler(parallelism=parallelism,
                          dispatch_overhead_s=overhead)
    for lanes in rounds:
        event_wall = event.record_round(lanes,
                                        indices=range(len(lanes)))
        base_wall = base.record_round(lanes)
        # Per-round and cumulative equality, both to the float.
        assert event_wall == base_wall
        assert event.wall_time_s == base.wall_time_s
        assert event.lane_time_s == base.lane_time_s
    assert event.rounds == base.rounds
    # Unbounded depth + closed rounds: nothing queues across rounds,
    # so every submitted request completed inside its round.
    assert event.submitted == event.completed == event.latency.count


@given(lanes=lane_vectors)
@settings(max_examples=120, deadline=None)
def test_closed_parallelism_one_is_the_serial_sum(lanes):
    event = EventScheduler(16, parallelism=1)
    event.record_round(lanes, indices=range(len(lanes)))
    busy = sorted((t for t in lanes if t > 0.0), reverse=True)
    assert event.wall_time_s == sum(busy)
    assert event.wall_time_s == round_makespan(lanes, 1)


@given(lanes=lane_vectors, parallelism=st.integers(0, 20))
@settings(max_examples=150, deadline=None)
def test_closed_sojourns_stay_inside_the_round(lanes, parallelism):
    """Every sojourn covers its service time and none exceeds the
    round's wall time: queueing delays requests, it never shrinks or
    escapes the round."""
    event = EventScheduler(16, parallelism=parallelism)
    event.record_round(lanes, indices=range(len(lanes)))
    busy = [t for t in lanes if t > 0.0]
    if not busy:
        assert event.latency.count == 0
        return
    assert event.latency.count == len(busy)
    assert event.latency.min_s >= min(busy) - REL_EPS * max(1.0, min(busy))
    assert event.latency.max_s <= event.wall_time_s \
        + REL_EPS * max(1.0, event.wall_time_s)


# ----------------------------------------------------------------------
# Monotone percentiles
# ----------------------------------------------------------------------
@given(samples=st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=300))
@settings(max_examples=150, deadline=None)
def test_percentiles_are_monotone_and_bounded(samples):
    hist = LatencyHistogram()
    for value in samples:
        hist.record(value)
    p50 = hist.percentile(50)
    p95 = hist.percentile(95)
    p99 = hist.percentile(99)
    assert p50 <= p95 <= p99 <= hist.max_s
    assert hist.min_s <= p50
    assert hist.max_s == max(samples)
    assert hist.count == len(samples)


# ----------------------------------------------------------------------
# Conservation under arbitrary interleavings (event vs round twins)
# ----------------------------------------------------------------------
SHARDS = 4

#: An op is (kind, key-index, size-units); generated sequences mix
#: puts, re-reads, overwrites, deletes, and fan-out sweeps in any
#: order, so conservation is checked under arbitrary interleavings.
ops = st.lists(
    st.tuples(st.sampled_from(["put", "get", "overwrite", "delete",
                               "sweep"]),
              st.integers(0, 11),
              st.integers(1, 24)),
    min_size=1, max_size=40,
)


def apply_ops(store, sequence):
    live = set()
    for kind, idx, units in sequence:
        key = f"obj-{idx}"
        size = units * 16 * KB
        if kind == "put":
            if key not in live:
                store.put(key, size=size)
                live.add(key)
        elif key not in live:
            continue
        elif kind == "get":
            store.get(key)
        elif kind == "overwrite":
            store.overwrite(key, size=size)
        elif kind == "delete":
            store.delete(key)
            live.discard(key)
        elif kind == "sweep":
            store.read_many(sorted(live))


def device_totals(store):
    return [(dev.stats.read_bytes, dev.stats.write_bytes,
             dev.stats.requests, dev.stats.seeks, dev.clock_s)
            for dev in store.devices()]


@given(sequence=ops,
       arrival=st.sampled_from(["closed", "poisson:rate=2000",
                                "poisson:rate=50:clients=8"]),
       depth=st.sampled_from([0, 2, 64]))
@settings(max_examples=30, deadline=None)
def test_event_queue_conserves_device_iostats(sequence, arrival, depth):
    def build(queue, **extra):
        text = f"lfs:shards={SHARDS},overlap=true,queue={queue}"
        return build_store(StoreSpec.parse(
            text, volume_bytes=96 * MB, **extra))

    event_store = build("event", arrival=arrival, queue_depth=depth)
    round_store = build("round")
    apply_ops(event_store, sequence)
    apply_ops(round_store, sequence)
    event_store.scheduler.drain()

    # The event layer re-times requests; it must not change what I/O
    # the devices served.  Bytes, requests, seeks, and device clocks
    # are identical to the round twin's, device by device.
    assert device_totals(event_store) == device_totals(round_store)
    # Identical lane accounting too: summed lane seconds are the same
    # device time, whichever queue model re-times it.
    assert event_store.scheduler.lane_time_s == \
        round_store.scheduler.lane_time_s
    assert event_store.scheduler.rounds == round_store.scheduler.rounds

    sched = event_store.scheduler
    # No request is lost, duplicated, or double-counted.
    assert sched.submitted == sched.completed == sched.latency.count
    assert sched.queued == 0 and sched.in_flight == 0
    if arrival == "closed":
        # Zero queueing: the reduction holds through a real store too.
        assert sched.wall_time_s == round_store.scheduler.wall_time_s
    # Logical state is identical as well.
    assert event_store.keys() == round_store.keys()
    assert event_store.store_stats() == round_store.store_stats()


@given(sequence=ops, parallelism=st.integers(1, SHARDS))
@settings(max_examples=20, deadline=None)
def test_poisson_worker_cap_floors_the_wall_time(sequence, parallelism):
    """With a global worker cap below the shard count, at most
    ``parallelism`` requests can be in service at any instant of the
    timeline, so wall time is at least the devices' summed clocks
    divided by the cap — a capped run can't secretly overlap more
    lanes than it has workers."""
    store = build_store(StoreSpec.parse(
        f"lfs:shards={SHARDS},overlap=true,queue=event,"
        f"parallelism={parallelism},arrival=poisson:rate=1000",
        volume_bytes=96 * MB))
    apply_ops(store, sequence)
    sched = store.scheduler
    sched.drain()
    total_clock = sum(dev.clock_s for dev in store.devices())
    assert sched.wall_time_s >= total_clock / parallelism \
        - REL_EPS * max(1.0, total_clock)
    assert sched.submitted == sched.completed == sched.latency.count


@given(sequence=ops)
@settings(max_examples=20, deadline=None)
def test_event_wall_time_respects_the_makespan_envelope(sequence):
    """Open-loop wall time can exceed the makespan (queueing) but
    never beats the critical path: with one request in service per
    shard, total wall covers at least the busiest device's clock."""
    store = build_store(StoreSpec.parse(
        f"lfs:shards={SHARDS},overlap=true,queue=event,"
        "arrival=poisson:rate=1000", volume_bytes=96 * MB))
    apply_ops(store, sequence)
    store.scheduler.drain()
    busiest = max(dev.clock_s for dev in store.devices())
    assert store.scheduler.wall_time_s >= busiest - REL_EPS
    # And lane time equals the devices' summed clocks exactly (the
    # scheduler measured the same deltas the devices recorded).
    total_clock = sum(dev.clock_s for dev in store.devices())
    assert math.isclose(store.scheduler.lane_time_s, total_clock,
                        rel_tol=1e-9, abs_tol=1e-12)


# ----------------------------------------------------------------------
# Stalls: background throttling must not bend the timeline contract
# ----------------------------------------------------------------------
@given(plan=st.lists(
    st.one_of(
        st.tuples(st.just("round"),
                  st.floats(min_value=1e-4, max_value=0.5)),
        st.tuples(st.just("stall"),
                  st.floats(min_value=1e-3, max_value=5.0)),
    ),
    min_size=1, max_size=24))
@settings(max_examples=60, deadline=None)
def test_stalls_interleave_without_breaking_the_books(plan):
    """Random stalls interleaved with poisson rounds (the shape a
    throttled rebalance or charged checkpoint produces): conservation
    holds — every submission completes exactly once — wall time covers
    the sum of stalls, and after every stall the arrival cursor sits at
    or past the charged frontier (no arrival backdates into a window
    the submitting driver slept through)."""
    sched = EventScheduler(2, arrival="poisson:rate=500:seed=9", depth=8)
    stalled = 0.0
    for kind, value in plan:
        if kind == "round":
            sched.record_round([value, value / 2], indices=(0, 1))
        else:
            sched.record_stall(value)
            stalled += value
            assert sched._arrival_cursor >= sched._charged - REL_EPS
    sched.drain()
    assert sched.submitted == sched.completed == sched.latency.count
    assert sched.queued == 0 and sched.in_flight == 0
    assert sched.wall_time_s >= stalled - REL_EPS * max(1.0, stalled)
    # Two lanes: wall still covers the busiest lane's share.
    assert sched.wall_time_s >= sched.lane_time_s / 2 \
        - REL_EPS * max(1.0, sched.lane_time_s)
