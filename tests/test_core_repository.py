"""Tests for the LargeObjectRepository facade."""

import pytest

from repro.core.repository import LargeObjectRepository
from repro.errors import ConfigError, ObjectNotFoundError
from repro.units import KB, MB


@pytest.fixture
def repo(file_store):
    return LargeObjectRepository(file_store)


class TestBasicApi:
    def test_put_get(self, repo):
        repo.put("photo", size=256 * KB)
        assert repo.exists("photo")
        assert repo.meta("photo").size == 256 * KB
        repo.get("photo")

    def test_put_duplicate_rejected(self, repo):
        repo.put("a", size=1 * KB)
        with pytest.raises(ConfigError):
            repo.put("a", size=1 * KB)

    def test_replace_missing_rejected(self, repo):
        with pytest.raises(ObjectNotFoundError):
            repo.replace("ghost", size=1 * KB)

    def test_delete(self, repo):
        repo.put("a", size=1 * KB)
        repo.delete("a")
        assert not repo.exists("a")

    def test_keys(self, repo):
        repo.put("a", size=1 * KB)
        repo.put("b", size=1 * KB)
        assert sorted(repo.keys()) == ["a", "b"]

    def test_exactly_one_of_size_data(self, repo):
        with pytest.raises(ConfigError):
            repo.put("a")
        with pytest.raises(ConfigError):
            repo.put("a", size=4, data=b"1234")


class TestStorageAgeIntegration:
    def test_age_advances_with_replaces(self, repo):
        for i in range(4):
            repo.put(f"k{i}", size=1 * MB)
        assert repo.storage_age == 0.0
        for i in range(4):
            repo.replace(f"k{i}", size=1 * MB)
        assert repo.storage_age == pytest.approx(1.0)

    def test_delete_counts_dead_bytes(self, repo):
        repo.put("a", size=1 * MB)
        repo.put("b", size=1 * MB)
        repo.delete("a")
        assert repo.storage_age == pytest.approx(1.0)


class TestInstrumentation:
    def test_fragment_report(self, repo):
        for i in range(4):
            repo.put(f"k{i}", size=256 * KB)
        report = repo.fragment_report()
        assert report.objects == 4
        assert report.mean == 1.0

    def test_describe_mentions_key_facts(self, repo):
        repo.put("a", size=1 * MB)
        text = repo.describe()
        assert "1 objects" in text
        assert "storage age" in text
        assert "fragments/object" in text

    def test_store_stats_passthrough(self, repo):
        repo.put("a", size=1 * MB)
        assert repo.store_stats().live_bytes == 1 * MB


class TestTaggedContent:
    def test_tagged_mode_writes_markers(self, content_file_store):
        repo = LargeObjectRepository(content_file_store, tag_content=True)
        repo.put("a", size=64 * KB)
        data = repo.get("a")
        assert data.startswith(b"FRAG")

    def test_object_ids_stable_across_replace(self, content_file_store):
        repo = LargeObjectRepository(content_file_store, tag_content=True)
        repo.put("a", size=64 * KB)
        first = repo.object_id("a")
        repo.replace("a", size=64 * KB)
        assert repo.object_id("a") == first

    def test_object_id_requires_tagging(self, repo):
        repo.put("a", size=1 * KB)
        with pytest.raises(ObjectNotFoundError):
            repo.object_id("a")

    def test_explicit_data_bypasses_tagging(self, content_file_store):
        repo = LargeObjectRepository(content_file_store, tag_content=True)
        repo.put("a", data=b"user bytes")
        assert repo.get("a") == b"user bytes"


class TestDeleteRecreateMarkers:
    def test_recreate_outranks_stale_markers(self, content_file_store):
        """A deleted key's stale on-disk markers must not count as
        fragments of the recreated object (regression: delete() used to
        reset the version counter, so the recreated copy's markers tied
        the stale ones instead of outranking them)."""
        from repro.core.fragmentation import MarkerScanner, fragment_counts

        repo = LargeObjectRepository(content_file_store, tag_content=True)
        repo.put("a", size=8 * KB)
        repo.delete("a")
        repo.put("a", size=4 * KB)  # carves the front of the freed run
        device = content_file_store.fs.device
        marker_counts = MarkerScanner(device).fragment_counts(
            live_ids={repo.object_id("a")}
        )
        extent_counts = {
            repo.object_id(key): count
            for key, count in fragment_counts(repo.store).items()
        }
        assert marker_counts == extent_counts == {repo.object_id("a"): 1}
