"""Tests for file records and the MFT-like file table."""

import pytest

from repro.alloc.extent import Extent
from repro.errors import (
    CorruptionError,
    FileExistsFsError,
    FileNotFoundFsError,
)
from repro.fs.filetable import FileRecord, FileTable


class TestFileRecord:
    def test_add_extent_merges_contiguous(self):
        record = FileRecord(1, "a")
        record.add_extent(Extent(0, 100))
        record.add_extent(Extent(100, 50))
        assert record.extents == [Extent(0, 150)]

    def test_add_extent_keeps_discontiguous(self):
        record = FileRecord(1, "a")
        record.add_extent(Extent(0, 100))
        record.add_extent(Extent(200, 50))
        assert len(record.extents) == 2

    def test_fragment_count(self):
        record = FileRecord(1, "a")
        record.add_extent(Extent(0, 100))
        record.add_extent(Extent(200, 50))
        record.add_extent(Extent(250, 50))  # merges with previous
        assert record.fragment_count() == 2

    def test_fragment_count_empty(self):
        assert FileRecord(1, "a").fragment_count() == 0

    def test_allocated_bytes(self):
        record = FileRecord(1, "a")
        record.add_extent(Extent(0, 100))
        assert record.allocated_bytes == 100

    def test_invariants_reject_overlap(self):
        record = FileRecord(1, "a", extents=[Extent(0, 100), Extent(50, 10)])
        with pytest.raises(CorruptionError):
            record.check_invariants()

    def test_invariants_reject_size_over_allocation(self):
        record = FileRecord(1, "a", size=200, extents=[Extent(0, 100)])
        with pytest.raises(CorruptionError):
            record.check_invariants()


class TestFileTable:
    def test_create_lookup(self):
        table = FileTable()
        record = table.create("x")
        assert table.lookup("x") is record
        assert table.exists("x")
        assert len(table) == 1

    def test_duplicate_create_rejected(self):
        table = FileTable()
        table.create("x")
        with pytest.raises(FileExistsFsError):
            table.create("x")

    def test_lookup_missing(self):
        with pytest.raises(FileNotFoundFsError):
            FileTable().lookup("ghost")

    def test_remove(self):
        table = FileTable()
        table.create("x")
        table.remove("x")
        assert not table.exists("x")

    def test_file_ids_unique_and_increasing(self):
        table = FileTable()
        ids = [table.create(f"f{i}").file_id for i in range(10)]
        assert len(set(ids)) == 10
        assert ids == sorted(ids)

    def test_replace_over_existing(self):
        table = FileTable()
        old = table.create("target")
        old.add_extent(Extent(0, 100))
        tmp = table.create("target.tmp")
        displaced = table.replace("target.tmp", "target")
        assert displaced is old
        assert table.lookup("target") is tmp
        assert not table.exists("target.tmp")

    def test_replace_without_existing(self):
        table = FileTable()
        table.create("src")
        assert table.replace("src", "dst") is None
        assert table.exists("dst")

    def test_names(self):
        table = FileTable()
        table.create("a")
        table.create("b")
        assert sorted(table.names()) == ["a", "b"]

    def test_mft_slot_assignment(self):
        table = FileTable()
        record = table.create("a")
        offset = table.mft_slot_offset(record, mft_base=0,
                                       record_size=1024,
                                       mft_size=1024 * 16)
        assert offset % 1024 == 0
        assert 0 <= offset < 1024 * 16

    def test_mft_slots_recycle(self):
        table = FileTable()
        records = [table.create(f"f{i}") for i in range(40)]
        offsets = {
            table.mft_slot_offset(r, mft_base=0, record_size=1024,
                                  mft_size=16 * 1024)
            for r in records
        }
        assert len(offsets) <= 16
