"""Tests for fragmentation reports and the marker-based analyzer."""

import pytest

from repro.core.fragmentation import (
    DEFAULT_MARKER_INTERVAL,
    FragmentReport,
    MARKER_BYTES,
    MarkerScanner,
    fragment_counts,
    fragment_report,
    make_marker_content,
)
from repro.disk.device import BlockDevice
from repro.disk.geometry import scaled_disk
from repro.errors import ConfigError
from repro.units import KB, MB


class TestFragmentReport:
    def test_empty(self):
        report = FragmentReport()
        assert report.mean == 0.0
        assert report.median == 0.0
        assert report.max == 0
        assert report.contiguous_fraction == 0.0

    def test_statistics(self):
        report = FragmentReport(counts={"a": 1, "b": 3, "c": 8})
        assert report.mean == pytest.approx(4.0)
        assert report.median == 3.0
        assert report.max == 8
        assert report.objects == 3
        assert report.total_fragments == 12
        assert report.contiguous_fraction == pytest.approx(1 / 3)

    def test_histogram(self):
        report = FragmentReport(
            counts={"a": 1, "b": 2, "c": 5, "d": 100}
        )
        hist = report.histogram(bins=[1, 4, 16])
        assert hist == {"<=1": 1, "<=4": 1, "<=16": 1, ">16": 1}


class TestExtentMapAnalysis:
    def test_counts_against_store(self, content_file_store):
        content_file_store.put("a", size=256 * KB)
        counts = fragment_counts(content_file_store)
        assert counts == {"a": 1}

    def test_report_wraps_counts(self, file_store):
        for i in range(4):
            file_store.put(f"k{i}", size=128 * KB)
        report = fragment_report(file_store)
        assert report.objects == 4
        assert report.mean == 1.0  # clean bulk load is contiguous


class TestMarkerContent:
    def test_layout(self):
        content = make_marker_content(7, 4 * KB, version=3, interval=1 * KB)
        assert len(content) == 4 * KB
        # Markers at 0K, 1K, 2K, 3K.
        for seq in range(4):
            tag = content[seq * KB: seq * KB + MARKER_BYTES]
            assert tag.startswith(b"FRAG")

    def test_size_not_multiple_of_interval(self):
        content = make_marker_content(1, 2500)
        assert len(content) == 2500

    def test_tiny_object_still_tagged(self):
        content = make_marker_content(1, MARKER_BYTES)
        assert content.startswith(b"FRAG")

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_marker_content(1, 0)
        with pytest.raises(ConfigError):
            make_marker_content(1, 1024, interval=4)


class TestMarkerScanner:
    def make_device(self):
        return BlockDevice(scaled_disk(8 * MB), store_data=True)

    def test_requires_content_device(self):
        device = BlockDevice(scaled_disk(8 * MB))
        with pytest.raises(ConfigError):
            MarkerScanner(device)

    def test_contiguous_object_one_fragment(self):
        device = self.make_device()
        device.poke(64 * KB, make_marker_content(1, 128 * KB))
        scanner = MarkerScanner(device)
        assert scanner.fragment_counts() == {1: 1}

    def test_split_object_counted(self):
        device = self.make_device()
        content = make_marker_content(1, 128 * KB)
        device.poke(0, content[: 64 * KB])
        device.poke(1 * MB, content[64 * KB:])
        scanner = MarkerScanner(device)
        assert scanner.fragment_counts() == {1: 2}

    def test_out_of_order_placement_counts_boundaries(self):
        device = self.make_device()
        content = make_marker_content(1, 128 * KB)
        device.poke(1 * MB, content[: 64 * KB])
        device.poke(0, content[64 * KB:])  # second half *before* first
        scanner = MarkerScanner(device)
        assert scanner.fragment_counts() == {1: 2}

    def test_multiple_objects(self):
        device = self.make_device()
        device.poke(0, make_marker_content(1, 64 * KB))
        device.poke(1 * MB, make_marker_content(2, 64 * KB))
        counts = MarkerScanner(device).fragment_counts()
        assert counts == {1: 1, 2: 1}

    def test_stale_versions_ignored(self):
        device = self.make_device()
        # Old (fragmented) copy of version 1 lingers in free space.
        old = make_marker_content(1, 128 * KB, version=1)
        device.poke(0, old[: 64 * KB])
        device.poke(2 * MB, old[64 * KB:])
        # Live version 2 is contiguous elsewhere.
        device.poke(4 * MB, make_marker_content(1, 128 * KB, version=2))
        scanner = MarkerScanner(device)
        assert scanner.fragment_counts() == {1: 1}

    def test_live_ids_filter(self):
        device = self.make_device()
        device.poke(0, make_marker_content(1, 64 * KB))
        device.poke(1 * MB, make_marker_content(2, 64 * KB))
        scanner = MarkerScanner(device)
        assert scanner.fragment_counts(live_ids={2}) == {2: 1}

    def test_report_form(self):
        device = self.make_device()
        device.poke(0, make_marker_content(9, 64 * KB))
        report = MarkerScanner(device).report()
        assert report.counts == {"9": 1}


class TestCrossValidation:
    """The paper validated its marker tool against the NTFS
    defragmentation utility; we validate ours against the extent maps."""

    def test_marker_and_extent_analysis_agree_filesystem(
            self, content_file_store):
        from repro.core.repository import LargeObjectRepository

        repo = LargeObjectRepository(content_file_store, tag_content=True)
        for i in range(6):
            repo.put(f"obj{i}", size=192 * KB)
        for i in range(6):
            repo.replace(f"obj{i}", size=192 * KB)
        extent_counts = fragment_counts(content_file_store)
        scanner = MarkerScanner(content_file_store.device)
        live = {repo.object_id(k) for k in repo.keys()}
        marker_counts = scanner.fragment_counts(live_ids=live)
        translated = {
            repo.object_id(key): count
            for key, count in extent_counts.items()
        }
        assert marker_counts == translated

    def test_marker_and_extent_analysis_agree_database(
            self, content_blob_store):
        from repro.core.repository import LargeObjectRepository

        repo = LargeObjectRepository(content_blob_store, tag_content=True)
        for i in range(6):
            repo.put(f"obj{i}", size=192 * KB)
        for i in range(6):
            repo.replace(f"obj{i}", size=192 * KB)
        extent_counts = fragment_counts(content_blob_store)
        scanner = MarkerScanner(content_blob_store.device)
        live = {repo.object_id(k) for k in repo.keys()}
        marker_counts = scanner.fragment_counts(live_ids=live)
        translated = {
            repo.object_id(key): count
            for key, count in extent_counts.items()
        }
        assert marker_counts == translated
